//! A DRAM-backed randomness beacon — QUAC-TRNG-style generation (§VII)
//! on the FracDRAM platform.
//!
//! Draws true random bits from metastable four-row activations, checks
//! them against a battery of NIST SP 800-22 tests, and prints beacon
//! values with the measured throughput.
//!
//! ```text
//! cargo run --release -p fracdram --example random_beacon
//! ```

use fracdram::Trng;
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, SubarrayAddr};
use fracdram_softmc::MemoryController;
use fracdram_stats::nist;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 1024,
    };
    // Group C: cannot even open three rows, yet serves as a TRNG.
    let module = Module::new(ModuleConfig::single_chip(GroupId::C, 0xB47, geometry));
    let mut mc = MemoryController::new(module);
    let mut trng = Trng::bind(&mut mc, SubarrayAddr::new(0, 0))?;
    println!(
        "TRNG bound: one sample = {} ({} ns) for {} raw bits",
        trng.sample_cycles(),
        trng.sample_cycles().value() as f64 * 2.5,
        geometry.columns
    );

    let (bits, report) = trng.random_bits(&mut mc, 32_000)?;
    println!(
        "drew {} extracted bits from {} samples in {} ({:.1} Mbit/s of command time)",
        report.bits, report.samples, report.cycles, report.mbit_per_s
    );

    // Health checks before publishing anything.
    let stream = bits.slice(0, 32_000);
    for result in [
        nist::frequency(&stream),
        nist::runs(&stream),
        nist::block_frequency(&stream, 128),
        nist::approximate_entropy(&stream, 8),
        nist::cumulative_sums(&stream),
        nist::serial(&stream, 10),
    ] {
        println!("  {result}");
        assert!(result.passed(), "health check failed");
    }

    // Publish a few beacon words.
    println!("\nbeacon output:");
    for i in 0..4 {
        let mut word = 0u64;
        for b in 0..64 {
            word = (word << 1) | u64::from(stream.get(i * 64 + b).unwrap());
        }
        println!("  {i}: {word:016x}");
    }
    Ok(())
}
