//! Retention-time characterization with fractional values (§VI-C).
//!
//! Fractional values turn retention profiling into voltage metrology:
//! storing different levels in the same cell and measuring the time to
//! failure traces the leakage curve — without an oscilloscope, using
//! only DRAM commands. This reproduces the paper's suggested use of
//! Frac for "assisting the characterization of DRAM retention time".
//!
//! ```text
//! cargo run --release -p fracdram --example retention_profiler
//! ```

use fracdram::retention::{measure_row, BucketCounts, RetentionBucket};
use fracdram_model::{Environment, Geometry, GroupId, Module, ModuleConfig, RowAddr};
use fracdram_softmc::MemoryController;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = Module::new(ModuleConfig::single_chip(
        GroupId::B,
        0xBEE,
        Geometry::tiny(),
    ));
    let mut mc = MemoryController::new(module);
    let row = RowAddr::new(0, 9);

    println!("retention profile of {row} at 20 C, by stored voltage level:\n");
    println!(
        "{:<28} {:>5} {:>9} {:>9} {:>9} {:>8} {:>7}",
        "stored level", "0", "0-10m", "10-30m", "30-60m", "1-12h", ">12h"
    );
    for (label, frac_ops) in [
        ("full Vdd (no Frac)", 0usize),
        ("1 Frac  (~1.02 V)", 1),
        ("2 Frac  (~0.85 V)", 2),
        ("3 Frac  (~0.79 V)", 3),
        ("5 Frac  (~0.76 V)", 5),
    ] {
        let buckets = measure_row(&mut mc, row, frac_ops)?;
        let pdf = BucketCounts::from_buckets(&buckets).pdf();
        print!("{label:<28}");
        for p in pdf {
            print!(" {:>8.1}%", p * 100.0);
        }
        println!();
    }

    // Temperature dependence: the same row leaks faster when hot.
    println!("\nsame row at elevated temperature (2 Frac ops):");
    for temp in [20.0, 45.0, 70.0] {
        mc.module_mut()
            .set_environment(Environment::nominal().with_temperature(temp));
        let buckets = measure_row(&mut mc, row, 2)?;
        let long = buckets
            .iter()
            .filter(|&&b| b == RetentionBucket::Over12Hours)
            .count();
        println!(
            "  {temp:>4.0} C: {:>5.1}% of cells still hold for > 12 h",
            long as f64 / buckets.len() as f64 * 100.0
        );
    }
    Ok(())
}
