//! Quickstart: the shortest tour through FracDRAM.
//!
//! Simulates a group-B DDR3 module, stores a fractional value with the
//! Frac command sequence, proves it exists with the MAJ3 verification
//! method, and fingerprints the device with the Frac-PUF.
//!
//! ```text
//! cargo run --release -p fracdram --example quickstart
//! ```

use fracdram::verify::{verify_fractional, FracPlacement, OutcomeShares, VerifySetup};
use fracdram::{Challenge, FracDram, Triplet};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, RowAddr, SubarrayAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated SK Hynix DDR3-1333 module (Table I group B) behind a
    // SoftMC-style memory controller.
    let module = Module::new(ModuleConfig::single_chip(
        GroupId::B,
        0xD1E5EED,
        Geometry::tiny(),
    ));
    let mut dram = FracDram::new(module);
    println!("module: group {} ({})", dram.group(), dram.geometry());

    // 1. DRAM still works as memory.
    let row = RowAddr::new(0, 5);
    let pattern: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
    dram.write_row(row, &pattern)?;
    assert_eq!(dram.read_row(row)?, pattern);
    println!("1. normal write/read round-trip: ok");

    // 2. Store a fractional value: ACTIVATE-PRECHARGE back-to-back,
    //    three times (21 memory cycles = 52.5 ns).
    dram.store_fractional(row, true, 3)?;
    println!(
        "2. fractional value stored in {} (refresh now blocked: {})",
        row,
        dram.refresh().is_err()
    );
    dram.read_row(row)?; // destructive readout clears the state

    // 3. Prove fractional storage with the two-majority method (§IV-B2):
    //    X1 = 1 with a one in the probe row AND X2 = 0 with a zero is
    //    impossible for rail values.
    let triplet = Triplet::first(&dram.geometry(), SubarrayAddr::new(0, 0));
    let setup = VerifySetup {
        placement: FracPlacement::R1R2,
        init_ones: true,
        frac_ops: 3,
    };
    let pairs = verify_fractional(dram.controller_mut(), &triplet, &setup)?;
    let shares = OutcomeShares::from_pairs(&pairs);
    println!(
        "3. MAJ3 verification: {:.1}% of columns show the (X1,X2) = (1,0) fractional signature",
        shares.fractional_share() * 100.0
    );

    // 4. Fingerprint the device: ten Frac operations push a row to
    //    Vdd/2; the sense amplifiers' offsets resolve a unique pattern.
    let challenge = Challenge::new(1, 9);
    let response_a = dram.puf_response(challenge)?;
    let response_b = dram.puf_response(challenge)?;
    let intra = fracdram_stats::hamming::normalized_distance(&response_a, &response_b);
    println!(
        "4. Frac-PUF: {}-bit response, Hamming weight {:.2}, intra-HD {:.3}",
        response_a.len(),
        response_a.hamming_weight(),
        intra
    );

    Ok(())
}
