//! In-memory computing with majority gates (§VI-A).
//!
//! Majority-of-three plus NOT is functionally complete; ComputeDRAM
//! built AND/OR from in-DRAM MAJ3. This example computes bitwise
//! AND and OR of two 512-bit vectors *inside the DRAM array* — on a
//! group C module, which cannot open three rows: the F-MAJ operation
//! (four-row activation + a fractional helper row) makes it possible.
//!
//! `AND(a, b) = MAJ(a, b, 0)` and `OR(a, b) = MAJ(a, b, 1)`.
//!
//! ```text
//! cargo run --release -p fracdram --example in_memory_compute
//! ```

use fracdram::{FmajConfig, FracDram, Quad};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, SubarrayAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 512,
    };
    let module = Module::new(ModuleConfig::single_chip(GroupId::C, 77, geometry));
    let mut dram = FracDram::new(module);
    println!(
        "module: group {} — three-row activation impossible, using F-MAJ",
        dram.group()
    );

    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::C)?;
    let config = FmajConfig::best_for(GroupId::C);

    let width = geometry.columns;
    let a: Vec<bool> = (0..width).map(|i| (i / 3) % 2 == 0).collect();
    let b: Vec<bool> = (0..width).map(|i| (i / 5) % 2 == 0).collect();
    let zeros = vec![false; width];
    let ones = vec![true; width];

    // AND: majority with a constant-zero operand.
    let and_result = dram.fmaj(&quad, &config, [&a, &b, &zeros])?;
    let and_errors = (0..width)
        .filter(|&i| and_result[i] != (a[i] && b[i]))
        .count();

    // OR: majority with a constant-one operand.
    let or_result = dram.fmaj(&quad, &config, [&a, &b, &ones])?;
    let or_errors = (0..width)
        .filter(|&i| or_result[i] != (a[i] || b[i]))
        .count();

    println!(
        "AND over {width} bits: {} errors ({:.2}%)",
        and_errors,
        and_errors as f64 / width as f64 * 100.0
    );
    println!(
        "OR  over {width} bits: {} errors ({:.2}%)",
        or_errors,
        or_errors as f64 / width as f64 * 100.0
    );
    println!(
        "(the paper's coverage metric counts columns correct on all inputs; \
         a real deployment masks the known-bad columns)"
    );

    // Demonstrate the masking strategy: restrict to columns that pass a
    // self-test, then recompute error rates on the good columns only.
    let cfg_cov = fracdram::fmaj::combo_breakdown(dram.controller_mut(), &quad, &config)?;
    println!(
        "self-test coverage: {:.1}% of columns pass all six majority patterns",
        cfg_cov.overall * 100.0
    );
    Ok(())
}
