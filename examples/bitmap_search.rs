//! Bitmap-index search inside DRAM — the data-movement use case that
//! motivates processing-with-memory (§I).
//!
//! A tiny analytics engine stores one bitmap per attribute (one bit per
//! record) in DRAM rows and answers conjunctive/disjunctive queries
//! with the reserved-row compute engine: the AND/OR happens in the
//! array via charge sharing, so only the final bitmap crosses the bus.
//!
//! ```text
//! cargo run --release -p fracdram --example bitmap_search
//! ```

use fracdram::ComputeEngine;
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, RowAddr, SubarrayAddr};
use fracdram_softmc::MemoryController;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 1024, // 1024 records per bitmap row
    };
    // Group C hardware — no native MAJ3; the engine transparently uses
    // F-MAJ with a fractional helper row.
    let module = Module::new(ModuleConfig::single_chip(GroupId::C, 0xDB, geometry));
    let mut mc = MemoryController::new(module);
    let engine = ComputeEngine::bind(&mc, SubarrayAddr::new(0, 0), false)?;
    println!(
        "engine bound ({:?}), reserved rows {:?}",
        engine.kind(),
        engine.reserved_rows()
    );

    // Attribute bitmaps over 1024 synthetic "orders".
    let n = geometry.columns;
    let premium: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let recent: Vec<bool> = (0..n).map(|i| i % 5 < 2).collect();
    let eu_region: Vec<bool> = (0..n).map(|i| (i / 7) % 2 == 0).collect();

    let rows = [
        RowAddr::new(0, 16),
        RowAddr::new(0, 17),
        RowAddr::new(0, 18),
    ];
    let scratch = RowAddr::new(0, 20);
    let tmp = RowAddr::new(0, 21);
    let dst = RowAddr::new(0, 22);
    mc.write_row(rows[0], &premium)?;
    mc.write_row(rows[1], &recent)?;
    mc.write_row(rows[2], &eu_region)?;

    // Query 1: premium AND recent.
    let receipt = engine.and(&mut mc, rows[0], rows[1], scratch, tmp)?;
    let q1 = mc.read_row(tmp)?;
    let expected1: Vec<bool> = (0..n).map(|i| premium[i] && recent[i]).collect();
    let acc1 = q1.iter().zip(&expected1).filter(|(a, b)| a == b).count();
    println!(
        "premium AND recent:      {} hits ({} in-array, {}/{} columns exact)",
        q1.iter().filter(|&&b| b).count(),
        receipt.cycles,
        acc1,
        n
    );

    // Query 2: (premium AND recent) OR eu_region — chained in-memory.
    mc.write_row(tmp, &expected1)?; // error-free intermediate for the demo
    let receipt = engine.or(&mut mc, tmp, rows[2], scratch, dst)?;
    let q2 = mc.read_row(dst)?;
    let expected2: Vec<bool> = (0..n)
        .map(|i| (premium[i] && recent[i]) || eu_region[i])
        .collect();
    let acc2 = q2.iter().zip(&expected2).filter(|(a, b)| a == b).count();
    println!(
        "(...) OR eu_region:      {} hits ({} in-array, {}/{} columns exact)",
        q2.iter().filter(|&&b| b).count(),
        receipt.cycles,
        acc2,
        n
    );

    // Data-movement accounting: the in-array op moves zero operand bits
    // over the bus; a CPU-side evaluation reads every operand row.
    let bus_reads_avoided = 2 * n; // two operand bitmaps per op
    println!("\nper query: {bus_reads_avoided} operand bits never cross the memory bus;");
    println!("a few per-mille of columns err (Fig. 9 coverage) — production use masks");
    println!("the known-bad columns found by a one-time self-test, as the paper notes.");
    Ok(())
}
