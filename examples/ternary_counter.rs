//! Ternary (base-3) storage in unmodified DRAM — §VI-C made concrete.
//!
//! Stores base-3 numbers in DRAM cells at three states per cell using
//! the Half-m primitive, after self-calibrating which columns can hold
//! a distinguishable Half value. Demonstrates the full cycle the paper
//! sketches as future work: write trits, destructively read them back
//! via the two-majority method, and account for the capacity overhead.
//!
//! ```text
//! cargo run --release -p fracdram --example ternary_counter
//! ```

use fracdram::{TernaryStore, Trit};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig};
use fracdram_softmc::MemoryController;

/// Encodes `value` as little-endian trits.
fn to_trits(mut value: u64, len: usize) -> Vec<Trit> {
    (0..len)
        .map(|_| {
            let t = Trit::ALL[(value % 3) as usize];
            value /= 3;
            t
        })
        .collect()
}

/// Decodes little-endian trits.
fn from_trits(trits: &[Trit]) -> u64 {
    trits
        .iter()
        .rev()
        .fold(0u64, |acc, t| acc * 3 + t.value() as u64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 512,
    };
    let module = Module::new(ModuleConfig::single_chip(GroupId::B, 0x7E7, geometry));
    let mut mc = MemoryController::new(module);

    // Self-calibrate: find the columns whose Half value is reliably
    // distinguishable (a minority — Fig. 8's ~16%).
    let store = TernaryStore::calibrate(&mut mc, 0, 6)?;
    println!(
        "calibrated ternary store: {} usable trit columns out of {} ({}%)",
        store.capacity(),
        geometry.columns,
        store.capacity() * 100 / geometry.columns
    );

    // Store and recover a few base-3 numbers. Use the first 20 trits.
    // The readout is destructive and has a small residual error rate, so
    // each value is stored and read three times with a per-trit majority
    // vote — the natural mitigation for a medium with per-trial noise.
    let digits = 20.min(store.capacity());
    for value in [0u64, 42, 3u64.pow(12) - 1, 1_000_000] {
        let mut trits = to_trits(value, digits);
        trits.resize(store.capacity(), Trit::Zero);
        let mut votes = vec![[0u8; 3]; store.capacity()];
        for _ in 0..3 {
            store.write(&mut mc, &trits)?;
            let read = store.read(&mut mc)?; // destructive!
            for (v, t) in votes.iter_mut().zip(&read) {
                v[t.value() as usize] += 1;
            }
        }
        let read: Vec<Trit> = votes
            .iter()
            .map(|v| Trit::ALL[(0..3).max_by_key(|&i| v[i]).unwrap()])
            .collect();
        let recovered = from_trits(&read[..digits]);
        println!(
            "stored {value:>8} -> recovered {recovered:>8}  ({} of {} trits exact)",
            read[..digits]
                .iter()
                .zip(&trits[..digits])
                .filter(|(a, b)| a == b)
                .count(),
            digits
        );
        assert_eq!(recovered, value, "majority-of-3 readout failed");
    }

    println!(
        "\ncost model: each trit row needs two Half-m quads (8 DRAM rows) and the \
         readout destroys it — the density/complexity trade-off §VI-C predicts."
    );
    Ok(())
}
