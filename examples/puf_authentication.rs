//! Device authentication with the Frac-PUF (§VI-B).
//!
//! A verifier enrolls a fleet of DRAM modules by recording
//! challenge-response pairs, then authenticates devices later — even
//! under different supply voltage and temperature — and rejects a clone
//! that tries to replay another device's identity.
//!
//! ```text
//! cargo run --release -p fracdram --example puf_authentication
//! ```

use fracdram::puf::{authenticate, challenge_set, evaluate};
use fracdram_model::{Environment, Geometry, GroupId, Module, ModuleConfig, Volts};
use fracdram_softmc::MemoryController;
use fracdram_stats::bits::BitVec;

const THRESHOLD: f64 = 0.15; // between max intra-HD and min inter-HD

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = Geometry {
        banks: 4,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 1024,
    };
    // A small fleet: three modules from two vendors.
    let fleet: Vec<(&str, GroupId, u64)> = vec![
        ("device-0 (SK Hynix)", GroupId::B, 1001),
        ("device-1 (SK Hynix)", GroupId::B, 1002),
        ("device-2 (Samsung)", GroupId::F, 1003),
    ];
    let mut devices: Vec<MemoryController> = fleet
        .iter()
        .map(|&(_, group, seed)| {
            MemoryController::new(Module::new(ModuleConfig::single_chip(
                group, seed, geometry,
            )))
        })
        .collect();

    // --- enrollment: record 5 challenge-response pairs per device -----
    let challenges = challenge_set(&geometry, 5, 0xC0FFEE);
    let mut database: Vec<Vec<BitVec>> = Vec::new();
    for d in devices.iter_mut() {
        database.push(
            challenges
                .iter()
                .map(|&c| evaluate(d, c))
                .collect::<Result<_, _>>()?,
        );
    }
    println!(
        "enrolled {} devices x {} challenges ({}-bit responses)\n",
        fleet.len(),
        challenges.len(),
        geometry.columns
    );

    // --- authentication in the field (hot device, sagging supply) -----
    let field = Environment::nominal()
        .with_temperature(45.0)
        .with_vdd(Volts(1.45));
    for (i, d) in devices.iter_mut().enumerate() {
        d.module_mut().set_environment(field);
        let c = challenges[i % challenges.len()];
        let fresh = evaluate(d, c)?;
        let claimed = &database[i][i % challenges.len()];
        let hd = fracdram_stats::hamming::normalized_distance(claimed, &fresh);
        let ok = authenticate(claimed, &fresh, THRESHOLD);
        println!(
            "{}: HD to own enrollment = {hd:.3} -> {}",
            fleet[i].0,
            if ok { "AUTHENTICATED" } else { "rejected" }
        );
        assert!(ok);
    }

    // --- a clone replaying device-0's identity from device-1 ----------
    let c = challenges[0];
    let clone_response = evaluate(&mut devices[1], c)?;
    let hd = fracdram_stats::hamming::normalized_distance(&database[0][0], &clone_response);
    let ok = authenticate(&database[0][0], &clone_response, THRESHOLD);
    println!(
        "\nclone attack (device-1 claiming device-0): HD = {hd:.3} -> {}",
        if ok { "ACCEPTED (bad!)" } else { "REJECTED" }
    );
    assert!(!ok);

    println!(
        "\neach evaluation costs {:.2} us of DRAM command time",
        fracdram::puf::EvalCost::for_row(geometry.columns, false).total_micros()
    );
    Ok(())
}
