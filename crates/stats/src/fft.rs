//! Discrete Fourier transform.
//!
//! The NIST spectral test needs the DFT of a ±1 sequence of *arbitrary*
//! length (1 000 000 is not a power of two). We implement an iterative
//! radix-2 Cooley–Tukey FFT and build Bluestein's chirp-z algorithm on
//! top of it for arbitrary lengths.

use std::f64::consts::PI;

/// A complex number (we avoid an external dependency for two fields).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    #[allow(clippy::should_implement_trait)]
    /// Complex multiplication.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Complex) -> Self {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    /// Complex addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Complex) -> Self {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    /// Complex subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Complex) -> Self {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// In-place iterative radix-2 FFT (forward when `inverse` is false).
/// The inverse transform is unnormalized (divide by `n` yourself).
///
/// # Panics
///
/// Panics when the length is not a power of two.
pub fn fft_pow2(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft_pow2 needs a power-of-two length");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half].mul(w);
                chunk[i] = u.add(v);
                chunk[i + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Forward DFT of arbitrary length via Bluestein's algorithm (falls back
/// to the radix-2 FFT directly when the length is a power of two).
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_pow2(&mut data, false);
        return data;
    }
    // Bluestein: x_k -> chirp premultiply, convolve with conjugate chirp.
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::default(); m];
    let mut b = vec![Complex::default(); m];
    // Chirp: w_k = e^{-iπ k² / n}. Compute k² mod 2n to stay accurate for
    // large k.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let kk = (k as u128 * k as u128) % (2 * n as u128);
            Complex::cis(-PI * kk as f64 / n as f64)
        })
        .collect();
    for k in 0..n {
        a[k] = input[k].mul(chirp[k]);
        b[k] = chirp[k].conj();
    }
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    fft_pow2(&mut a, false);
    fft_pow2(&mut b, false);
    for i in 0..m {
        a[i] = a[i].mul(b[i]);
    }
    fft_pow2(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n)
        .map(|k| Complex::new(a[k].re * scale, a[k].im * scale).mul(chirp[k]))
        .collect()
}

/// Moduli of the DFT of a real-valued sequence.
pub fn dft_magnitudes(input: &[f64]) -> Vec<f64> {
    let complex: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
    dft(&complex).into_iter().map(|c| c.abs()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (j, &x) in input.iter().enumerate() {
                    let w = Complex::cis(-2.0 * PI * (k * j) as f64 / n as f64);
                    acc = acc.add(x.mul(w));
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                Complex::new(
                    ((i * 37 + 11) % 17) as f64 / 17.0 - 0.5,
                    ((i * 53 + 3) % 13) as f64 / 13.0 - 0.5,
                )
            })
            .collect()
    }

    #[test]
    fn pow2_fft_matches_naive() {
        for n in [1usize, 2, 4, 8, 64] {
            let sig = test_signal(n);
            assert_close(&dft(&sig), &naive_dft(&sig), 1e-9);
        }
    }

    #[test]
    fn bluestein_matches_naive_for_awkward_lengths() {
        for n in [3usize, 5, 7, 12, 100, 129] {
            let sig = test_signal(n);
            assert_close(&dft(&sig), &naive_dft(&sig), 1e-8);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let n = 16;
        let sig = test_signal(n);
        let mut data = sig.clone();
        fft_pow2(&mut data, false);
        fft_pow2(&mut data, true);
        for (x, y) in data.iter().zip(&sig) {
            assert!((x.re / n as f64 - y.re).abs() < 1e-12);
            assert!((x.im / n as f64 - y.im).abs() < 1e-12);
        }
    }

    #[test]
    fn dc_component_is_sum() {
        let mags = dft_magnitudes(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        assert!((mags[0] - 5.0).abs() < 1e-9);
        for &m in &mags[1..] {
            assert!(m < 1e-9);
        }
    }

    #[test]
    fn parseval_holds() {
        let sig = test_signal(100);
        let spec = dft(&sig);
        let time_energy: f64 = sig.iter().map(|c| c.abs() * c.abs()).sum();
        let freq_energy: f64 =
            spec.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / sig.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn empty_input() {
        assert!(dft(&[]).is_empty());
    }
}
