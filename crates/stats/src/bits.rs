//! Packed bit vectors.
//!
//! PUF responses are 65 536-bit rows and the NIST suite consumes
//! million-bit streams; [`BitVec`] stores them packed (64 bits per word)
//! with the operations the analysis needs: Hamming weight/distance,
//! slicing into blocks, and iteration.

use std::fmt;
use std::ops::Index;

/// A growable, packed vector of bits.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        BitVec::default()
    }

    /// Creates a bit vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit vector with reserved capacity.
    pub fn with_capacity(bits: usize) -> Self {
        BitVec {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Builds from a slice of bools, packing one 64-bit word per chunk
    /// (branch-free, vectorizable) instead of a per-bit [`BitVec::push`].
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut words = Vec::with_capacity(bools.len().div_ceil(64));
        for chunk in bools.chunks(64) {
            let mut w = 0u64;
            for (off, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << off;
            }
            words.push(w);
        }
        BitVec {
            words,
            len: bools.len(),
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let off = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Appends all bits of another vector.
    pub fn extend_from(&mut self, other: &BitVec) {
        for bit in other.iter() {
            self.push(bit);
        }
    }

    /// Returns the bit at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        Some((self.words[index / 64] >> (index % 64)) & 1 == 1)
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % 64);
        if bit {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits (the *Hamming weight* in PUF terminology).
    ///
    /// Returns 0.0 for an empty vector.
    pub fn hamming_weight(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.count_ones() as f64 / self.len as f64
    }

    /// Number of differing bits between two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "hamming distance needs equal lengths");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> Iter<'_> {
        Iter { vec: self, pos: 0 }
    }

    /// Copies a bit range into a new vector.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the vector.
    pub fn slice(&self, start: usize, len: usize) -> BitVec {
        assert!(start + len <= self.len, "slice out of range");
        let mut out = BitVec::with_capacity(len);
        for i in start..start + len {
            out.push(self.get(i).unwrap());
        }
        out
    }

    /// Converts to a vector of bools.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for bit in self.iter().take(64) {
            write!(f, "{}", if bit { '1' } else { '0' })?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for BitVec {
    type Output = bool;

    fn index(&self, index: usize) -> &bool {
        if self.get(index).expect("bit index out of range") {
            &true
        } else {
            &false
        }
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut v = BitVec::new();
        for bit in iter {
            v.push(bit);
        }
        v
    }
}

impl Extend<bool> for BitVec {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for bit in iter {
            self.push(bit);
        }
    }
}

impl From<&[bool]> for BitVec {
    fn from(bools: &[bool]) -> Self {
        BitVec::from_bools(bools)
    }
}

/// Iterator over the bits of a [`BitVec`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    vec: &'a BitVec,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = self.vec.get(self.pos)?;
        self.pos += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut v = BitVec::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            v.push(b);
        }
        assert_eq!(v.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.get(i), Some(b), "bit {i}");
        }
        assert_eq!(v.get(200), None);
    }

    #[test]
    fn set_overwrites() {
        let mut v = BitVec::zeros(100);
        v.set(63, true);
        v.set(64, true);
        assert!(v[63] && v[64] && !v[62]);
        v.set(63, false);
        assert!(!v[63]);
    }

    #[test]
    fn count_ones_and_weight() {
        let v = BitVec::from_bools(&[true, false, true, true]);
        assert_eq!(v.count_ones(), 3);
        assert!((v.hamming_weight() - 0.75).abs() < 1e-12);
        assert_eq!(BitVec::new().hamming_weight(), 0.0);
    }

    #[test]
    fn hamming_distance_counts_diffs() {
        let a = BitVec::from_bools(&[true, false, true, false, true]);
        let b = BitVec::from_bools(&[true, true, true, false, false]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_distance_length_mismatch_panics() {
        let a = BitVec::zeros(4);
        let b = BitVec::zeros(5);
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn slice_extracts_range() {
        let v: BitVec = (0..130).map(|i| i % 2 == 0).collect();
        let s = v.slice(63, 4);
        assert_eq!(s.to_bools(), vec![false, true, false, true]);
    }

    #[test]
    fn iterator_is_exact_size() {
        let v = BitVec::zeros(10);
        let it = v.iter();
        assert_eq!(it.len(), 10);
        assert_eq!(it.count(), 10);
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut v: BitVec = [true, false].into_iter().collect();
        v.extend([true]);
        assert_eq!(v.to_bools(), vec![true, false, true]);
        let w = BitVec::from_bools(&[false, false]);
        v.extend_from(&w);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn debug_truncates() {
        let v = BitVec::zeros(100);
        let s = format!("{v:?}");
        assert!(s.contains("BitVec[100;"));
        assert!(s.contains('…'));
    }

    #[test]
    fn zeros_has_correct_length_across_word_boundary() {
        for n in [0, 1, 63, 64, 65, 128, 129] {
            let v = BitVec::zeros(n);
            assert_eq!(v.len(), n);
            assert_eq!(v.count_ones(), 0);
        }
    }
}
