//! SP 800-22 §2.13 Cumulative sums (cusum) test.

use crate::bits::BitVec;
use crate::special::normal_cdf;

use super::TestResult;

/// P-value of the cusum test given the maximum partial-sum excursion `z`
/// over `n` ±1 steps (SP 800-22 §2.13.5).
fn cusum_p_value(n: usize, z: i64) -> f64 {
    let n = n as f64;
    let z = z as f64;
    if z == 0.0 {
        return 0.0; // degenerate: a nonempty walk always has |S| ≥ 1
    }
    let sqrt_n = n.sqrt();
    let mut p = 1.0;

    let k_lo = ((-n / z + 1.0) / 4.0).ceil() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p -= normal_cdf((4.0 * k + 1.0) * z / sqrt_n) - normal_cdf((4.0 * k - 1.0) * z / sqrt_n);
    }

    let k_lo = ((-n / z - 3.0) / 4.0).ceil() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p += normal_cdf((4.0 * k + 3.0) * z / sqrt_n) - normal_cdf((4.0 * k + 1.0) * z / sqrt_n);
    }

    p.clamp(0.0, 1.0)
}

/// Maximum absolute partial sum of the ±1 walk over `bits`, scanning
/// forward (`reverse = false`) or backward (`reverse = true`).
fn max_excursion(bits: &BitVec, reverse: bool) -> i64 {
    let mut s: i64 = 0;
    let mut z: i64 = 0;
    let n = bits.len();
    for i in 0..n {
        let idx = if reverse { n - 1 - i } else { i };
        s += if bits.get(idx).unwrap() { 1 } else { -1 };
        z = z.max(s.abs());
    }
    z
}

/// §2.13 Cumulative sums: is the maximal excursion of the random walk
/// formed by the ±1-mapped sequence consistent with randomness?
///
/// Produces two p-values: forward and backward mode. Requires n ≥ 100.
pub fn cumulative_sums(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return TestResult::not_applicable("Cumulative sums", format!("n = {n} < 100"));
    }
    let p_fwd = cusum_p_value(n, max_excursion(bits, false));
    let p_bwd = cusum_p_value(n, max_excursion(bits, true));
    TestResult::from_p_values("Cumulative sums", vec![p_fwd, p_bwd])
}

#[cfg(test)]
mod tests {
    use super::super::reference_random_bits;
    use super::*;

    #[test]
    fn random_passes() {
        let bits = reference_random_bits(100_000, 5);
        let r = cumulative_sums(&bits);
        assert!(r.passed(), "{r:?}");
    }

    #[test]
    fn all_ones_fails() {
        let bits: BitVec = (0..10_000).map(|_| true).collect();
        let r = cumulative_sums(&bits);
        assert!(r.applicable && !r.passed());
    }

    #[test]
    fn sts_worked_example() {
        // SP 800-22 §2.13.8: ε = "1011010111" (n = 10) gives z = 4 and
        // P-value = 0.4116588 in forward mode. The spec's example ignores
        // the n ≥ 100 gate, so we call the kernel directly.
        let bits: BitVec = "1011010111".chars().map(|c| c == '1').collect();
        let z = max_excursion(&bits, false);
        assert_eq!(z, 4);
        let p = cusum_p_value(bits.len(), z);
        assert!((p - 0.4116588).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn short_input_not_applicable() {
        let bits = reference_random_bits(50, 1);
        assert!(!cumulative_sums(&bits).applicable);
    }

    #[test]
    fn forward_and_backward_agree_on_palindrome() {
        let mut bits = BitVec::new();
        for i in 0..256 {
            bits.push(i % 3 == 0);
        }
        let fwd = max_excursion(&bits, false);
        let bwd = max_excursion(&bits, true);
        // Not equal in general, but both must be at least 1 and at most n.
        assert!(fwd >= 1 && bwd >= 1);
        assert!(fwd <= 256 && bwd <= 256);
    }
}
