//! SP 800-22 §2.7 Non-overlapping and §2.8 overlapping template tests.

use crate::bits::BitVec;
use crate::special::gamma_q;

use super::TestResult;

/// Template length used by both tests (the STS default).
pub const TEMPLATE_LEN: usize = 9;

/// Generates all aperiodic templates of length `m` in ascending numeric
/// order. A template is aperiodic when no proper shift of it matches
/// itself — the condition under which non-overlapping match counts are
/// independent.
pub fn aperiodic_templates(m: usize) -> Vec<Vec<bool>> {
    assert!(m <= 16, "template length too large");
    let mut out = Vec::new();
    'patterns: for value in 0..(1u32 << m) {
        let bits: Vec<bool> = (0..m).map(|i| (value >> (m - 1 - i)) & 1 == 1).collect();
        for k in 1..m {
            if bits[..m - k] == bits[k..] {
                continue 'patterns;
            }
        }
        out.push(bits);
    }
    out
}

/// §2.7 Non-overlapping template matching: occurrences of an aperiodic
/// pattern in N = 8 blocks, scanned without overlap.
///
/// Runs the first `template_count` aperiodic 9-bit templates and emits
/// one p-value per template. Requires blocks long enough for the normal
/// approximation (n ≥ 8 × 128).
pub fn non_overlapping_template(bits: &BitVec, template_count: usize) -> TestResult {
    const N_BLOCKS: usize = 8;
    let n = bits.len();
    let m = TEMPLATE_LEN;
    let block = n / N_BLOCKS;
    if block < 128 {
        return TestResult::not_applicable(
            "Non-overlapping template",
            format!("block {block} < 128 (n = {n})"),
        );
    }
    let templates = aperiodic_templates(m);
    let used = templates.len().min(template_count.max(1));
    let mean = (block - m + 1) as f64 / 2f64.powi(m as i32);
    let var =
        block as f64 * (2f64.powi(-(m as i32)) - (2 * m - 1) as f64 * 2f64.powi(-2 * m as i32));
    let data = bits.to_bools();
    let mut p_values = Vec::with_capacity(used);
    for template in templates.iter().take(used) {
        let mut chi2 = 0.0;
        for b in 0..N_BLOCKS {
            let slice = &data[b * block..(b + 1) * block];
            let mut count = 0u64;
            let mut i = 0;
            while i + m <= slice.len() {
                if slice[i..i + m] == template[..] {
                    count += 1;
                    i += m; // non-overlapping: skip past the match
                } else {
                    i += 1;
                }
            }
            chi2 += (count as f64 - mean) * (count as f64 - mean) / var;
        }
        p_values.push(gamma_q(N_BLOCKS as f64 / 2.0, chi2 / 2.0));
    }
    TestResult::from_p_values("Non-overlapping template", p_values)
}

/// §2.8 Overlapping template matching: occurrences of the all-ones
/// 9-bit template counted *with* overlap in 1032-bit blocks, classified
/// into 6 categories against the spec's theoretical probabilities.
///
/// Requires n ≥ 1032 × 38 (enough blocks for the χ² approximation; the
/// spec uses N = 968 at n = 10⁶).
pub fn overlapping_template(bits: &BitVec) -> TestResult {
    const M_BLOCK: usize = 1032;
    const K: usize = 5;
    // §2.8.4 / STS source: theoretical category probabilities for
    // m = 9, M = 1032 (λ = 2).
    const PI: [f64; 6] = [
        0.364_091, 0.185_659, 0.139_381, 0.100_571, 0.070_432, 0.139_865,
    ];
    let n = bits.len();
    let m = TEMPLATE_LEN;
    let blocks = n / M_BLOCK;
    if blocks < 38 {
        return TestResult::not_applicable(
            "Overlapping template",
            format!("{blocks} blocks < 38 (n = {n})"),
        );
    }
    let data = bits.to_bools();
    let mut nu = [0u64; K + 1];
    for b in 0..blocks {
        let slice = &data[b * M_BLOCK..(b + 1) * M_BLOCK];
        let mut count = 0usize;
        for i in 0..=(M_BLOCK - m) {
            if slice[i..i + m].iter().all(|&x| x) {
                count += 1;
            }
        }
        nu[count.min(K)] += 1;
    }
    let nf = blocks as f64;
    let chi2: f64 = nu
        .iter()
        .zip(PI.iter())
        .map(|(&obs, &p)| {
            let exp = nf * p;
            (obs as f64 - exp) * (obs as f64 - exp) / exp
        })
        .sum();
    let p = gamma_q(K as f64 / 2.0, chi2 / 2.0);
    TestResult::from_p_values("Overlapping template", vec![p])
}

#[cfg(test)]
mod tests {
    use super::super::reference_random_bits;
    use super::*;

    #[test]
    fn aperiodic_generation_for_m9_matches_sts_count() {
        let templates = aperiodic_templates(9);
        // The STS template library for m = 9 contains 148 aperiodic
        // patterns.
        assert_eq!(templates.len(), 148);
        // Canonical members and non-members.
        let as_bits = |s: &str| -> Vec<bool> { s.chars().map(|c| c == '1').collect() };
        assert!(templates.contains(&as_bits("000000001")));
        assert!(templates.contains(&as_bits("011111111")));
        assert!(!templates.contains(&as_bits("101010101")), "periodic");
        assert!(!templates.contains(&as_bits("111111111")), "periodic");
    }

    #[test]
    fn small_m_aperiodic() {
        // m=2: "01" and "10" are aperiodic; "00" and "11" are not.
        let t = aperiodic_templates(2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn random_passes_both() {
        let bits = reference_random_bits(60_000, 21);
        let r = non_overlapping_template(&bits, 10);
        assert_eq!(r.p_values.len(), 10);
        assert!(r.passed(), "p = {:?}", r.p_values);
        let r = overlapping_template(&bits);
        assert!(r.passed(), "p = {:?}", r.p_values);
    }

    #[test]
    fn planted_template_fails_non_overlapping() {
        // Plant "000000001" far more often than chance.
        let mut bits = reference_random_bits(40_000, 4).to_bools();
        let template = [false, false, false, false, false, false, false, false, true];
        let mut i = 0;
        while i + 9 <= bits.len() {
            if i % 100 == 0 {
                bits[i..i + 9].copy_from_slice(&template);
            }
            i += 9;
        }
        let r = non_overlapping_template(&BitVec::from_bools(&bits), 3);
        // Template #0 is "000000001" (ascending numeric order).
        assert!(r.p_values[0] < 0.01, "p = {:?}", r.p_values);
    }

    #[test]
    fn all_ones_fails_overlapping() {
        let bits: BitVec = (0..60_000).map(|_| true).collect();
        let r = overlapping_template(&bits);
        assert!(r.applicable && !r.passed());
    }

    #[test]
    fn short_inputs_not_applicable() {
        assert!(!non_overlapping_template(&BitVec::zeros(500), 4).applicable);
        assert!(!overlapping_template(&BitVec::zeros(5000)).applicable);
    }
}
