//! SP 800-22 §2.3 Runs and §2.4 Longest-run-of-ones tests.

use crate::bits::BitVec;
use crate::special::{erfc, gamma_q};

use super::TestResult;

/// §2.3 Runs: does the number of uninterrupted runs of identical bits
/// match expectation?
///
/// Requires n ≥ 100. The test is only meaningful when the frequency
/// prerequisite holds; outside it the p-value is 0 by specification.
pub fn runs(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return TestResult::not_applicable("Runs", format!("n = {n} < 100"));
    }
    let pi = bits.count_ones() as f64 / n as f64;
    // Prerequisite: |π - 1/2| < 2/√n, else p = 0 (§2.3.4 step 2).
    if (pi - 0.5).abs() >= 2.0 / (n as f64).sqrt() {
        let mut r = TestResult::from_p_values("Runs", vec![0.0]);
        r.note = Some("frequency prerequisite failed".into());
        return r;
    }
    let mut v = 1u64;
    let mut prev = bits.get(0).unwrap();
    for i in 1..n {
        let cur = bits.get(i).unwrap();
        if cur != prev {
            v += 1;
        }
        prev = cur;
    }
    let num = (v as f64 - 2.0 * n as f64 * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n as f64).sqrt() * pi * (1.0 - pi);
    let p = erfc(num / den);
    TestResult::from_p_values("Runs", vec![p])
}

/// §2.4 Longest run of ones in a block.
///
/// Block size and category probabilities follow the spec's three
/// regimes (n ≥ 128 / 6272 / 750000).
pub fn longest_run_of_ones(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 128 {
        return TestResult::not_applicable("Longest run of ones", format!("n = {n} < 128"));
    }
    // (M, lower class bound v_min, class count K+1, class probabilities)
    let (m, v_min, pi): (usize, u64, &[f64]) = if n < 6272 {
        (8, 1, &[0.2148, 0.3672, 0.2305, 0.1875])
    } else if n < 750_000 {
        (128, 4, &[0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124])
    } else {
        (
            10_000,
            10,
            &[0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727],
        )
    };
    let classes = pi.len();
    let blocks = n / m;
    let mut nu = vec![0u64; classes];
    for b in 0..blocks {
        let mut longest = 0u64;
        let mut run = 0u64;
        for i in b * m..(b + 1) * m {
            if bits.get(i).unwrap() {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        let class = (longest.saturating_sub(v_min)).min(classes as u64 - 1) as usize;
        nu[class] += 1;
    }
    let nf = blocks as f64;
    let chi2: f64 = nu
        .iter()
        .zip(pi)
        .map(|(&obs, &p)| {
            let exp = nf * p;
            (obs as f64 - exp) * (obs as f64 - exp) / exp
        })
        .sum();
    let k = classes as f64 - 1.0;
    let p = gamma_q(k / 2.0, chi2 / 2.0);
    TestResult::from_p_values("Longest run of ones", vec![p])
}

#[cfg(test)]
mod tests {
    use super::super::reference_random_bits;
    use super::*;

    #[test]
    fn random_passes_both() {
        let bits = reference_random_bits(20_000, 3);
        assert!(runs(&bits).passed());
        assert!(longest_run_of_ones(&bits).passed());
    }

    #[test]
    fn alternating_fails_runs() {
        // 0101... has the maximum possible number of runs.
        let bits: BitVec = (0..1_000).map(|i| i % 2 == 0).collect();
        let r = runs(&bits);
        assert!(r.applicable && !r.passed());
    }

    #[test]
    fn clumped_fails_longest_run() {
        // Long blocks of ones produce far-too-long longest runs.
        let bits: BitVec = (0..10_000).map(|i| (i / 50) % 2 == 0).collect();
        let r = longest_run_of_ones(&bits);
        assert!(r.applicable && !r.passed());
    }

    #[test]
    fn biased_input_shortcircuits_runs() {
        let mut bits = BitVec::zeros(1_000);
        for i in 0..100 {
            bits.set(i, true);
        }
        let r = runs(&bits);
        assert_eq!(r.p_values, vec![0.0]);
        assert!(r.note.is_some());
    }

    #[test]
    fn runs_known_answer_sp80022() {
        // §2.3.8 example: first 100 binary digits of π; P-value = 0.500798.
        let pi_bits = "1100100100001111110110101010001000100001011010001100\
                       001000110100110001001100011001100010100010111000";
        let bits: BitVec = pi_bits
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| c == '1')
            .collect();
        let r = runs(&bits);
        assert!(
            (r.p_values[0] - 0.500798).abs() < 1e-4,
            "p = {}",
            r.p_values[0]
        );
    }

    #[test]
    fn short_input_not_applicable() {
        assert!(!runs(&BitVec::zeros(50)).applicable);
        assert!(!longest_run_of_ones(&BitVec::zeros(100)).applicable);
    }

    #[test]
    fn longest_run_uses_medium_regime() {
        // 10_000 bits: M = 128 regime must be selected and still pass on
        // random data.
        let bits = reference_random_bits(10_000, 11);
        let r = longest_run_of_ones(&bits);
        assert!(r.passed(), "p = {:?}", r.p_values);
    }
}
