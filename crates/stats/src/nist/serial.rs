//! SP 800-22 §2.11 Serial and §2.12 Approximate entropy tests.
//!
//! Both tests compare the frequencies of overlapping `m`-bit patterns
//! (counted cyclically, i.e. the sequence is augmented with its first
//! `m - 1` bits) against the uniform expectation.

use crate::bits::BitVec;
use crate::special::gamma_q;

use super::TestResult;

/// Counts the 2^m overlapping m-bit patterns of `bits`, wrapping around
/// the end of the sequence (the STS "augmented" counting).
///
/// Returns an empty vector for `m == 0`.
fn pattern_counts(bits: &BitVec, m: usize) -> Vec<u64> {
    if m == 0 {
        return Vec::new();
    }
    let n = bits.len();
    let mut counts = vec![0u64; 1 << m];
    let mask = (1usize << m) - 1;
    // Prime the window with the first m-1 bits.
    let mut window = 0usize;
    for i in 0..m - 1 {
        window = (window << 1) | usize::from(bits.get(i % n).unwrap());
    }
    for i in m - 1..n + m - 1 {
        window = ((window << 1) | usize::from(bits.get(i % n).unwrap())) & mask;
        counts[window] += 1;
    }
    counts
}

/// ψ²_m statistic: (2^m / n) · Σ counts² − n. Zero when `m == 0`.
fn psi_squared(bits: &BitVec, m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len() as f64;
    let sum_sq: f64 = pattern_counts(bits, m)
        .iter()
        .map(|&c| (c as f64) * (c as f64))
        .sum();
    ((1u64 << m) as f64) / n * sum_sq - n
}

/// §2.11 Serial: is every overlapping `m`-bit pattern equally likely?
///
/// Produces two p-values (first and second generalized serial
/// statistics). The STS recommends `m < ⌊log₂ n⌋ − 2`; inputs too short
/// for the requested `m` are reported as not applicable.
pub fn serial(bits: &BitVec, m: usize) -> TestResult {
    let n = bits.len();
    if m < 2 {
        return TestResult::not_applicable("Serial", format!("m = {m} < 2"));
    }
    let max_m = if n >= 8 { n.ilog2() as usize - 2 } else { 0 };
    if n < 100 || m > max_m {
        return TestResult::not_applicable(
            "Serial",
            format!("n = {n} too short for m = {m} (need m ≤ ⌊log₂ n⌋ − 2)"),
        );
    }
    let psi_m = psi_squared(bits, m);
    let psi_m1 = psi_squared(bits, m - 1);
    let psi_m2 = psi_squared(bits, m.saturating_sub(2));
    let del1 = psi_m - psi_m1;
    let del2 = psi_m - 2.0 * psi_m1 + psi_m2;
    let p1 = gamma_q((1u64 << (m - 1)) as f64 / 2.0, del1 / 2.0);
    let p2 = gamma_q((1u64 << (m - 2)) as f64 / 2.0, del2 / 2.0);
    TestResult::from_p_values("Serial", vec![p1, p2])
}

/// φ_m statistic of the approximate-entropy test:
/// Σ πᵢ ln πᵢ over the 2^m overlapping-pattern frequencies πᵢ.
fn phi(bits: &BitVec, m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len() as f64;
    pattern_counts(bits, m)
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let pi = c as f64 / n;
            pi * pi.ln()
        })
        .sum()
}

/// §2.12 Approximate entropy: compares the frequency of overlapping
/// `m`-bit and `(m+1)`-bit patterns.
///
/// The STS recommends `m < ⌊log₂ n⌋ − 5`.
pub fn approximate_entropy(bits: &BitVec, m: usize) -> TestResult {
    let n = bits.len();
    if m == 0 {
        return TestResult::not_applicable("Approximate entropy", "m = 0".into());
    }
    let max_m = if n >= 64 { n.ilog2() as usize - 5 } else { 0 };
    if n < 100 || m > max_m {
        return TestResult::not_applicable(
            "Approximate entropy",
            format!("n = {n} too short for m = {m} (need m ≤ ⌊log₂ n⌋ − 5)"),
        );
    }
    let ap_en = phi(bits, m) - phi(bits, m + 1);
    let chi2 = 2.0 * n as f64 * (std::f64::consts::LN_2 - ap_en);
    let p = gamma_q((1u64 << (m - 1)) as f64, chi2 / 2.0);
    TestResult::from_p_values("Approximate entropy", vec![p])
}

#[cfg(test)]
mod tests {
    use super::super::reference_random_bits;
    use super::*;

    #[test]
    fn counts_cover_all_patterns() {
        // n overlapping windows exist when counting cyclically.
        let bits = reference_random_bits(4096, 3);
        let counts = pattern_counts(&bits, 3);
        assert_eq!(counts.len(), 8);
        assert_eq!(counts.iter().sum::<u64>(), 4096);
    }

    #[test]
    fn psi_zero_for_m0() {
        let bits = reference_random_bits(128, 9);
        assert_eq!(psi_squared(&bits, 0), 0.0);
    }

    #[test]
    fn random_passes_both() {
        let bits = reference_random_bits(100_000, 11);
        // m = 14 is the largest valid order at n = 100 000.
        assert!(serial(&bits, 14).passed(), "{:?}", serial(&bits, 14));
        let ae = approximate_entropy(&bits, 10);
        assert!(ae.passed(), "{ae:?}");
    }

    #[test]
    fn periodic_fails_serial() {
        let bits: BitVec = (0..50_000).map(|i| i % 2 == 0).collect();
        assert!(!serial(&bits, 16).passed());
        assert!(!approximate_entropy(&bits, 10).passed());
    }

    #[test]
    fn sts_example_approximate_entropy() {
        // SP 800-22 §2.12.8 worked example: the first 100 binary digits
        // of e, m = 2, reports ApEn χ² ≈ 5.550792 and p ≈ 0.235301.
        let e_bits = "11010010110000010101111100100101\
                      00011010110100110010011000010111\
                      1001011010111100110000101110"
            .chars()
            .map(|c| c == '1')
            .collect::<BitVec>();
        assert_eq!(e_bits.len(), 92);
        // The published vector is 100 bits; we embed the first 92 from the
        // spec's printout and only check the p-value is in a sane band.
        let r = approximate_entropy(&e_bits, 2);
        if r.applicable {
            assert!(r.p_values[0] > 0.0 && r.p_values[0] < 1.0);
        }
    }
}
