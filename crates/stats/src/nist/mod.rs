//! NIST SP 800-22 statistical test suite.
//!
//! The paper validates the randomness of (whitened) Frac-PUF responses
//! with "the random number test suite from NIST — in total 15 different
//! tests" (§VI-B2) and reports that all 15 pass on one million bits per
//! module. This module implements the full suite from the SP 800-22
//! specification:
//!
//! Frequency (monobit) · Block frequency · Runs · Longest run of ones ·
//! Binary matrix rank · Discrete Fourier transform (spectral) ·
//! Non-overlapping template matching · Overlapping template matching ·
//! Maurer's universal statistic · Linear complexity · Serial ·
//! Approximate entropy · Cumulative sums · Random excursions · Random
//! excursions variant
//!
//! Each test produces one or more p-values; a test passes when every
//! p-value is at least [`ALPHA`] (0.01, the significance level used by
//! the STS). Tests whose minimum input-size requirements are unmet are
//! reported as not applicable rather than failed.

mod complexity;
mod cusum;
mod excursions;
mod frequency;
mod rank;
mod runs;
mod serial;
mod spectral;
mod template;
mod universal;

use std::fmt;

use crate::bits::BitVec;

pub use complexity::{berlekamp_massey, linear_complexity};
pub use cusum::cumulative_sums;
pub use excursions::{random_excursions, random_excursions_variant};
pub use frequency::{block_frequency, frequency};
pub use rank::binary_matrix_rank;
pub use runs::{longest_run_of_ones, runs};
pub use serial::{approximate_entropy, serial};
pub use spectral::spectral;
pub use template::{aperiodic_templates, non_overlapping_template, overlapping_template};
pub use universal::universal;

/// Significance level of the suite (SP 800-22 default).
pub const ALPHA: f64 = 0.01;

/// Outcome of one statistical test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Test name as in SP 800-22.
    pub name: &'static str,
    /// All p-values the test produced (several tests are multi-valued).
    pub p_values: Vec<f64>,
    /// Whether the input met the test's minimum-size requirements.
    pub applicable: bool,
    /// Optional diagnostic note.
    pub note: Option<String>,
}

impl TestResult {
    /// Creates an applicable result from p-values.
    pub fn from_p_values(name: &'static str, p_values: Vec<f64>) -> Self {
        TestResult {
            name,
            p_values,
            applicable: true,
            note: None,
        }
    }

    /// Creates a not-applicable result.
    pub fn not_applicable(name: &'static str, why: String) -> Self {
        TestResult {
            name,
            p_values: Vec::new(),
            applicable: false,
            note: Some(why),
        }
    }

    /// A test passes when it is applicable and every p-value ≥ α.
    pub fn passed(&self) -> bool {
        self.applicable && self.p_values.iter().all(|&p| p >= ALPHA)
    }

    /// The smallest p-value (1.0 when empty).
    pub fn min_p(&self) -> f64 {
        self.p_values.iter().copied().fold(1.0, f64::min)
    }
}

impl fmt::Display for TestResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.applicable {
            return write!(
                f,
                "{:<34} n/a      ({})",
                self.name,
                self.note.as_deref().unwrap_or("insufficient data")
            );
        }
        write!(
            f,
            "{:<34} {}  min p = {:.4}  ({} p-value{})",
            self.name,
            if self.passed() { "PASS" } else { "FAIL" },
            self.min_p(),
            self.p_values.len(),
            if self.p_values.len() == 1 { "" } else { "s" },
        )
    }
}

/// Report of a full suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// Individual test results, in SP 800-22 order.
    pub results: Vec<TestResult>,
    /// Input length in bits.
    pub input_bits: usize,
}

impl SuiteReport {
    /// Whether every applicable test passed.
    pub fn all_passed(&self) -> bool {
        self.results.iter().all(|r| !r.applicable || r.passed())
    }

    /// Number of applicable tests.
    pub fn applicable_count(&self) -> usize {
        self.results.iter().filter(|r| r.applicable).count()
    }

    /// Number of applicable tests that passed.
    pub fn passed_count(&self) -> usize {
        self.results.iter().filter(|r| r.passed()).count()
    }
}

impl fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "NIST SP 800-22 suite on {} bits", self.input_bits)?;
        for r in &self.results {
            writeln!(f, "  {r}")?;
        }
        write!(
            f,
            "  => {}/{} applicable tests passed",
            self.passed_count(),
            self.applicable_count()
        )
    }
}

/// Options for a suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteConfig {
    /// How many (of the 148) aperiodic 9-bit templates the
    /// non-overlapping template test scans. The full STS uses all of
    /// them; a subset keeps quick runs quick.
    pub non_overlapping_templates: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            non_overlapping_templates: 24,
        }
    }
}

/// Runs all 15 tests with default configuration.
pub fn run_all(bits: &BitVec) -> SuiteReport {
    run_all_with(bits, &SuiteConfig::default())
}

/// Runs all 15 tests.
pub fn run_all_with(bits: &BitVec, config: &SuiteConfig) -> SuiteReport {
    let results = vec![
        frequency(bits),
        block_frequency(bits, 128),
        runs(bits),
        longest_run_of_ones(bits),
        binary_matrix_rank(bits),
        spectral(bits),
        non_overlapping_template(bits, config.non_overlapping_templates),
        overlapping_template(bits),
        universal(bits),
        linear_complexity(bits, 500),
        serial(bits, 16),
        approximate_entropy(bits, 10),
        cumulative_sums(bits),
        random_excursions(bits),
        random_excursions_variant(bits),
    ];
    SuiteReport {
        results,
        input_bits: bits.len(),
    }
}

/// Deterministic high-quality pseudo-random bits for the suite's own
/// tests (SplitMix64-based; passes the suite itself).
#[cfg(test)]
pub(crate) fn reference_random_bits(n: usize, seed: u64) -> BitVec {
    let mut v = BitVec::with_capacity(n);
    let mut state = seed;
    let mut word = 0u64;
    for i in 0..n {
        if i % 64 == 0 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            word = z ^ (z >> 31);
        }
        v.push((word >> (i % 64)) & 1 == 1);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_passes_on_good_randomness() {
        let bits = reference_random_bits(150_000, 15);
        let report = run_all(&bits);
        for r in &report.results {
            assert!(
                !r.applicable || r.passed(),
                "test {} failed: p-values {:?}",
                r.name,
                r.p_values
            );
        }
        // At 150k bits most of the suite applies (universal and
        // overlapping template included; serial at m = 16 and the two
        // excursion tests usually need longer inputs).
        assert!(report.applicable_count() >= 11, "{report}");
    }

    #[test]
    fn suite_fails_on_constant_input() {
        let bits = BitVec::zeros(20_000);
        let report = run_all(&bits);
        assert!(!report.all_passed());
        // The monobit test in particular must fail hard.
        let freq = &report.results[0];
        assert!(freq.applicable && !freq.passed());
    }

    #[test]
    fn suite_fails_on_periodic_input() {
        let bits: BitVec = (0..50_000).map(|i| i % 2 == 0).collect();
        let report = run_all(&bits);
        // Perfectly balanced, so frequency passes — but runs, serial, and
        // spectral structure must be caught.
        assert!(!report.all_passed());
        let failed: Vec<&str> = report
            .results
            .iter()
            .filter(|r| r.applicable && !r.passed())
            .map(|r| r.name)
            .collect();
        assert!(failed.len() >= 3, "only failed: {failed:?}");
    }

    #[test]
    fn report_display_lists_all_tests() {
        let bits = reference_random_bits(2_000, 7);
        let report = run_all(&bits);
        assert_eq!(report.results.len(), 15);
        let text = report.to_string();
        assert!(text.contains("Frequency"));
        assert!(text.contains("applicable tests passed"));
    }

    #[test]
    fn result_pass_logic() {
        let r = TestResult::from_p_values("x", vec![0.5, 0.02]);
        assert!(r.passed());
        let r = TestResult::from_p_values("x", vec![0.5, 0.002]);
        assert!(!r.passed());
        assert_eq!(r.min_p(), 0.002);
        let r = TestResult::not_applicable("x", "too short".into());
        assert!(!r.passed());
        assert!(r.to_string().contains("n/a"));
    }
}
