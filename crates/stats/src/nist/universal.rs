//! SP 800-22 §2.9 Maurer's "universal statistical" test.

use crate::bits::BitVec;
use crate::special::erfc;

use super::TestResult;

/// Expected value and variance of the statistic per block length L
/// (SP 800-22 Table 2-4/2-5, L = 6..16).
const TABLE: [(usize, f64, f64); 11] = [
    (6, 5.217_705_2, 2.954),
    (7, 6.196_250_7, 3.125),
    (8, 7.183_665_6, 3.238),
    (9, 8.176_424_8, 3.311),
    (10, 9.172_324_3, 3.356),
    (11, 10.170_032, 3.384),
    (12, 11.168_765, 3.401),
    (13, 12.168_070, 3.410),
    (14, 13.167_693, 3.416),
    (15, 14.167_488, 3.419),
    (16, 15.167_379, 3.421),
];

/// Minimum total bits for each L (n ≥ 1010 × 2^L × L roughly; the spec's
/// table: L=6 needs 387,840; L=7 needs 904,960; ...).
fn choose_l(n: usize) -> Option<usize> {
    const THRESHOLDS: [(usize, usize); 11] = [
        (6, 387_840),
        (7, 904_960),
        (8, 2_068_480),
        (9, 4_654_080),
        (10, 10_342_400),
        (11, 22_753_280),
        (12, 49_643_520),
        (13, 107_560_960),
        (14, 231_669_760),
        (15, 496_435_200),
        (16, 1_059_061_760),
    ];
    let mut best = None;
    for &(l, min_n) in &THRESHOLDS {
        if n >= min_n {
            best = Some(l);
        }
    }
    best
}

/// §2.9 Maurer's universal test: compressibility via the distances
/// between repeated L-bit blocks.
///
/// Requires n ≥ 387,840 (the L = 6 threshold).
pub fn universal(bits: &BitVec) -> TestResult {
    let n = bits.len();
    let Some(l) = choose_l(n) else {
        return TestResult::not_applicable(
            "Universal (Maurer)",
            format!("n = {n} < 387840 (L = 6 minimum)"),
        );
    };
    let q = 10 * (1usize << l); // initialization blocks
    let total_blocks = n / l;
    let k = total_blocks - q; // test blocks
    let (_, expected, variance) = TABLE
        .iter()
        .copied()
        .find(|&(tl, _, _)| tl == l)
        .expect("L covered by table");

    // last_seen[pattern] = index (1-based block number) of last occurrence.
    let mut last_seen = vec![0u64; 1 << l];
    let block_value = |b: usize| -> usize {
        let mut v = 0usize;
        for i in 0..l {
            v = (v << 1) | usize::from(bits[b * l + i]);
        }
        v
    };
    for b in 0..q {
        last_seen[block_value(b)] = (b + 1) as u64;
    }
    let mut sum = 0.0f64;
    for b in q..total_blocks {
        let v = block_value(b);
        let idx = (b + 1) as u64;
        let dist = idx - last_seen[v];
        sum += (dist as f64).log2();
        last_seen[v] = idx;
    }
    let fn_stat = sum / k as f64;
    // Standard deviation with the finite-K correction factor c.
    let c =
        0.7 - 0.8 / l as f64 + (4.0 + 32.0 / l as f64) * (k as f64).powf(-3.0 / l as f64) / 15.0;
    let sigma = c * (variance / k as f64).sqrt();
    let p = erfc(((fn_stat - expected) / sigma).abs() / std::f64::consts::SQRT_2);
    TestResult::from_p_values("Universal (Maurer)", vec![p])
}

#[cfg(test)]
mod tests {
    use super::super::reference_random_bits;
    use super::*;

    #[test]
    fn l_selection() {
        assert_eq!(choose_l(100_000), None);
        assert_eq!(choose_l(400_000), Some(6));
        assert_eq!(choose_l(1_000_000), Some(7));
        assert_eq!(choose_l(3_000_000), Some(8));
    }

    #[test]
    fn random_passes() {
        let bits = reference_random_bits(400_000, 31);
        let r = universal(&bits);
        assert!(r.passed(), "p = {:?}", r.p_values);
    }

    #[test]
    fn repetitive_fails() {
        // A repeating 12-bit motif is maximally compressible.
        let bits: BitVec = (0..400_000).map(|i| (i % 12) < 5).collect();
        let r = universal(&bits);
        assert!(r.applicable && !r.passed(), "p = {:?}", r.p_values);
    }

    #[test]
    fn short_input_not_applicable() {
        assert!(!universal(&BitVec::zeros(10_000)).applicable);
    }
}
