//! SP 800-22 §2.14 Random excursions and §2.15 Random excursions
//! variant tests.
//!
//! Both view the ±1-mapped sequence as a random walk, split it into
//! "cycles" (excursions that start and end at the origin), and check
//! that visits to the states near the origin have the distribution a
//! true random walk would produce.

use crate::bits::BitVec;
use crate::special::{erfc, gamma_q};

use super::TestResult;

/// Minimum number of zero-crossing cycles the STS requires before the
/// excursion tests are meaningful.
const MIN_CYCLES: usize = 500;

/// Builds the partial-sum walk S₁..Sₙ of the ±1-mapped sequence.
fn walk(bits: &BitVec) -> Vec<i64> {
    let mut s = 0i64;
    bits.iter()
        .map(|b| {
            s += if b { 1 } else { -1 };
            s
        })
        .collect()
}

/// Splits the walk (augmented with a leading and trailing zero) into
/// cycles; returns, for each cycle, the number of visits to each state
/// in −4..=4 (index = state + 4; index 4, the origin, is unused).
fn cycle_visits(walk: &[i64]) -> Vec<[u64; 9]> {
    let mut cycles = Vec::new();
    let mut current = [0u64; 9];
    for &s in walk {
        if s == 0 {
            cycles.push(current);
            current = [0u64; 9];
        } else if (-4..=4).contains(&s) {
            current[(s + 4) as usize] += 1;
        }
    }
    // Final unterminated cycle: the STS appends a virtual trailing zero
    // when the walk does not already end at the origin.
    if walk.last().is_some_and(|&s| s != 0) {
        cycles.push(current);
    }
    cycles
}

/// Probability that a random walk visits state `x` exactly `k` times in
/// one cycle (SP 800-22 §3.14), with `k = 5` meaning "5 or more".
fn pi(x: i64, k: usize) -> f64 {
    let ax = x.abs() as f64;
    let stay = 1.0 - 1.0 / (2.0 * ax);
    match k {
        0 => stay,
        1..=4 => (1.0 / (4.0 * ax * ax)) * stay.powi(k as i32 - 1),
        _ => (1.0 / (2.0 * ax)) * stay.powi(4),
    }
}

/// §2.14 Random excursions: for each state x ∈ {±1..±4}, a χ² test on
/// the number of cycles with 0, 1, …, ≥5 visits to x.
///
/// Produces eight p-values. Not applicable when the walk has fewer than
/// 500 zero-crossing cycles (the STS threshold).
pub fn random_excursions(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return TestResult::not_applicable("Random excursions", format!("n = {n} < 100"));
    }
    let walk = walk(bits);
    let cycles = cycle_visits(&walk);
    let j = cycles.len();
    if j < MIN_CYCLES {
        return TestResult::not_applicable(
            "Random excursions",
            format!("J = {j} cycles < {MIN_CYCLES}"),
        );
    }
    let mut p_values = Vec::with_capacity(8);
    for x in [-4i64, -3, -2, -1, 1, 2, 3, 4] {
        // nu[k] = number of cycles in which state x was visited exactly
        // k times (k = 5 bucketing "≥5").
        let mut nu = [0u64; 6];
        for c in &cycles {
            let visits = c[(x + 4) as usize] as usize;
            nu[visits.min(5)] += 1;
        }
        let mut chi2 = 0.0;
        for (k, &count) in nu.iter().enumerate() {
            let expected = j as f64 * pi(x, k);
            chi2 += (count as f64 - expected).powi(2) / expected;
        }
        p_values.push(gamma_q(2.5, chi2 / 2.0));
    }
    TestResult::from_p_values("Random excursions", p_values)
}

/// §2.15 Random excursions variant: for each state x ∈ {±1..±9}, the
/// total number of visits ξ(x) is compared with the expectation J via a
/// half-normal statistic.
///
/// Produces eighteen p-values. Not applicable when the walk has fewer
/// than 500 zero-crossing cycles.
pub fn random_excursions_variant(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return TestResult::not_applicable("Random excursions variant", format!("n = {n} < 100"));
    }
    let walk = walk(bits);
    let j = walk.iter().filter(|&&s| s == 0).count()
        + usize::from(walk.last().is_some_and(|&s| s != 0));
    if j < MIN_CYCLES {
        return TestResult::not_applicable(
            "Random excursions variant",
            format!("J = {j} cycles < {MIN_CYCLES}"),
        );
    }
    let mut p_values = Vec::with_capacity(18);
    for x in (-9i64..=9).filter(|&x| x != 0) {
        let xi = walk.iter().filter(|&&s| s == x).count() as f64;
        let jf = j as f64;
        let denom = (2.0 * jf * (4.0 * x.abs() as f64 - 2.0)).sqrt();
        p_values.push(erfc((xi - jf).abs() / denom));
    }
    TestResult::from_p_values("Random excursions variant", p_values)
}

#[cfg(test)]
mod tests {
    use super::super::reference_random_bits;
    use super::*;

    #[test]
    fn pi_distribution_sums_to_one() {
        for x in [-4i64, -2, 1, 3] {
            let total: f64 = (0..=5).map(|k| pi(x, k)).sum();
            assert!((total - 1.0).abs() < 1e-12, "x = {x}: {total}");
        }
    }

    #[test]
    fn walk_matches_manual_sum() {
        let bits: BitVec = "0110110101".chars().map(|c| c == '1').collect();
        // SP 800-22 §2.14.4 example walk for ε = 0110110101.
        assert_eq!(walk(&bits), vec![-1, 0, 1, 0, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn cycles_counted_per_spec_example() {
        // The §2.14 example has J = 3 cycles: {-1,0}, {1,0}, {1,2,1,2,1,2}
        // (the trailing unterminated excursion counts as a cycle).
        let bits: BitVec = "0110110101".chars().map(|c| c == '1').collect();
        let cycles = cycle_visits(&walk(&bits));
        assert_eq!(cycles.len(), 3);
        // Third cycle visits +1 three times and +2 three times.
        assert_eq!(cycles[2][(1 + 4) as usize], 3);
        assert_eq!(cycles[2][(2 + 4) as usize], 3);
    }

    #[test]
    fn random_long_input_passes() {
        // ~1M bits gives an expected J ≈ √(2n/π) ≈ 800 > 500.
        let bits = reference_random_bits(1_000_000, 0);
        let re = random_excursions(&bits);
        let rev = random_excursions_variant(&bits);
        assert!(re.applicable, "{re:?}");
        assert!(re.passed(), "{re:?}");
        assert!(rev.applicable, "{rev:?}");
        assert!(rev.passed(), "{rev:?}");
    }

    #[test]
    fn short_walk_not_applicable() {
        let bits = reference_random_bits(10_000, 2);
        // Expected J ≈ 80 < 500.
        assert!(!random_excursions(&bits).applicable);
        assert!(!random_excursions_variant(&bits).applicable);
    }
}
