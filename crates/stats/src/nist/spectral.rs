//! SP 800-22 §2.6 Discrete Fourier transform (spectral) test.

use crate::bits::BitVec;
use crate::fft::dft_magnitudes;
use crate::special::erfc;

use super::TestResult;

/// §2.6 Spectral test: periodic features in the ±1 sequence show up as
/// excessive peaks in the DFT modulus.
///
/// Requires n ≥ 1000 (spec recommends ≥ 1000).
pub fn spectral(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 1000 {
        return TestResult::not_applicable("Spectral (DFT)", format!("n = {n} < 1000"));
    }
    let x: Vec<f64> = bits.iter().map(|b| if b { 1.0 } else { -1.0 }).collect();
    let mags = dft_magnitudes(&x);
    // 95 % threshold under H0.
    let t = ((1.0f64 / 0.05).ln() * n as f64).sqrt();
    let half = n / 2;
    let n0 = 0.95 * half as f64;
    let n1 = mags[..half].iter().filter(|&&m| m < t).count() as f64;
    let d = (n1 - n0) / (n as f64 * 0.95 * 0.05 / 4.0).sqrt();
    let p = erfc(d.abs() / std::f64::consts::SQRT_2);
    TestResult::from_p_values("Spectral (DFT)", vec![p])
}

#[cfg(test)]
mod tests {
    use super::super::reference_random_bits;
    use super::*;

    #[test]
    fn random_passes() {
        // Use a non-power-of-two length to exercise Bluestein.
        let bits = reference_random_bits(10_000, 9);
        let r = spectral(&bits);
        assert!(r.passed(), "p = {:?}", r.p_values);
    }

    #[test]
    fn periodic_signal_fails() {
        // Strong period-8 structure: a huge spectral line.
        let bits: BitVec = (0..4_096).map(|i| i % 8 < 4).collect();
        let r = spectral(&bits);
        assert!(r.applicable && !r.passed(), "p = {:?}", r.p_values);
    }

    #[test]
    fn short_input_not_applicable() {
        assert!(!spectral(&BitVec::zeros(500)).applicable);
    }
}
