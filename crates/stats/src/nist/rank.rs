//! SP 800-22 §2.5 Binary matrix rank test.

use crate::bits::BitVec;
use crate::matrix_rank::{rank_probability, BitMatrix};
use crate::special::gamma_q;

use super::TestResult;

/// §2.5 Binary matrix rank: linear dependence among fixed-length
/// substreams. 32×32 matrices; requires at least 38 of them.
pub fn binary_matrix_rank(bits: &BitVec) -> TestResult {
    const M: usize = 32;
    let n = bits.len();
    let matrices = n / (M * M);
    if matrices < 38 {
        return TestResult::not_applicable(
            "Binary matrix rank",
            format!("{matrices} matrices < 38 (n = {n})"),
        );
    }
    let p_full = rank_probability(M, 0);
    let p_minus1 = rank_probability(M, 1);
    let p_rest = 1.0 - p_full - p_minus1;

    let mut f_full = 0u64;
    let mut f_minus1 = 0u64;
    for k in 0..matrices {
        let offset = k * M * M;
        let matrix = BitMatrix::from_bits(M, (offset..offset + M * M).map(|i| bits[i]));
        match matrix.rank() {
            r if r == M => f_full += 1,
            r if r == M - 1 => f_minus1 += 1,
            _ => {}
        }
    }
    let f_rest = matrices as u64 - f_full - f_minus1;
    let nf = matrices as f64;
    let chi2 = (f_full as f64 - p_full * nf).powi(2) / (p_full * nf)
        + (f_minus1 as f64 - p_minus1 * nf).powi(2) / (p_minus1 * nf)
        + (f_rest as f64 - p_rest * nf).powi(2) / (p_rest * nf);
    let p = gamma_q(1.0, chi2 / 2.0); // chi-square with 2 degrees of freedom
    TestResult::from_p_values("Binary matrix rank", vec![p])
}

#[cfg(test)]
mod tests {
    use super::super::reference_random_bits;
    use super::*;

    #[test]
    fn random_passes() {
        let bits = reference_random_bits(64_000, 5);
        let r = binary_matrix_rank(&bits);
        assert!(r.passed(), "p = {:?}", r.p_values);
    }

    #[test]
    fn linearly_dependent_rows_fail() {
        // Repeat the same 32-bit word everywhere: every matrix has rank 1.
        let bits: BitVec = (0..64_000).map(|i| (i % 32) % 3 == 0).collect();
        let r = binary_matrix_rank(&bits);
        assert!(r.applicable && !r.passed());
        assert!(r.min_p() < 1e-6);
    }

    #[test]
    fn insufficient_matrices_not_applicable() {
        let bits = reference_random_bits(1024 * 10, 1);
        assert!(!binary_matrix_rank(&bits).applicable);
    }
}
