//! SP 800-22 §2.1 Frequency (monobit) and §2.2 Block frequency tests.

use crate::bits::BitVec;
use crate::special::{erfc, gamma_q};

use super::TestResult;

/// §2.1 Frequency (monobit): are ones and zeros balanced overall?
///
/// Requires n ≥ 100.
pub fn frequency(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return TestResult::not_applicable("Frequency (monobit)", format!("n = {n} < 100"));
    }
    let ones = bits.count_ones() as i64;
    let s = 2 * ones - n as i64; // sum of ±1
    let s_obs = (s.unsigned_abs() as f64) / (n as f64).sqrt();
    let p = erfc(s_obs / std::f64::consts::SQRT_2);
    TestResult::from_p_values("Frequency (monobit)", vec![p])
}

/// §2.2 Block frequency: are ones balanced within M-bit blocks?
///
/// Requires n ≥ 100 and at least one full block.
pub fn block_frequency(bits: &BitVec, block_len: usize) -> TestResult {
    let n = bits.len();
    let m = block_len;
    if n < 100 || n < m {
        return TestResult::not_applicable("Block frequency", format!("n = {n} < max(100, M)"));
    }
    let blocks = n / m;
    let mut chi2 = 0.0;
    for b in 0..blocks {
        let ones = (b * m..(b + 1) * m)
            .filter(|&i| bits.get(i).unwrap())
            .count();
        let pi = ones as f64 / m as f64;
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * m as f64;
    let p = gamma_q(blocks as f64 / 2.0, chi2 / 2.0);
    TestResult::from_p_values("Block frequency", vec![p])
}

#[cfg(test)]
mod tests {
    use super::super::reference_random_bits;
    use super::*;

    #[test]
    fn random_passes() {
        let bits = reference_random_bits(10_000, 1);
        assert!(frequency(&bits).passed());
        assert!(block_frequency(&bits, 128).passed());
    }

    #[test]
    fn all_ones_fails() {
        let bits: BitVec = (0..1000).map(|_| true).collect();
        let r = frequency(&bits);
        assert!(r.applicable && !r.passed());
        assert!(r.min_p() < 1e-10);
    }

    #[test]
    fn alternating_passes_frequency_but_fails_block_clumps() {
        // 0101... is perfectly balanced: monobit passes.
        let bits: BitVec = (0..10_000).map(|i| i % 2 == 0).collect();
        assert!(frequency(&bits).passed());
        // Blocks of alternating bits are each balanced too; but blocks of
        // clumped data fail.
        let clumped: BitVec = (0..10_000).map(|i| (i / 128) % 2 == 0).collect();
        assert!(frequency(&clumped).passed());
        assert!(!block_frequency(&clumped, 128).passed());
    }

    #[test]
    fn known_answer_sp80022_example() {
        // SP 800-22 §2.1.8: ε = 1100100100001111110110101010001000100001011010001100
        //                        001000110100110001001100011001100010100010111000 (n=100),
        // the first 100 binary digits of π; P-value = 0.109599.
        let pi_bits = "1100100100001111110110101010001000100001011010001100\
                       001000110100110001001100011001100010100010111000";
        let bits: BitVec = pi_bits
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| c == '1')
            .collect();
        assert_eq!(bits.len(), 100);
        let r = frequency(&bits);
        assert!(
            (r.p_values[0] - 0.109599).abs() < 1e-4,
            "p = {}",
            r.p_values[0]
        );
    }

    #[test]
    fn short_input_not_applicable() {
        let bits = BitVec::zeros(50);
        assert!(!frequency(&bits).applicable);
        assert!(!block_frequency(&bits, 128).applicable);
    }
}
