//! Ziggurat sampler for the standard normal distribution.
//!
//! The simulator draws one temporal-noise normal per column per
//! internal event, so the normal sampler is the hottest numerical
//! kernel in the workspace. Box–Muller costs two uniforms plus
//! `ln`/`sqrt` per draw; the Marsaglia–Tsang ziggurat costs one 64-bit
//! word, a table lookup, and a multiply in ~98.8% of draws, with an
//! exact wedge/tail fallback for the rest — the distribution is the
//! exact standard normal, not an approximation.
//!
//! The sampler is a pure function of the words it is handed:
//! [`ziggurat_normal`] pulls from a caller-supplied `FnMut() -> u64`,
//! so a counter-keyed word stream yields a counter-keyed normal stream
//! with no sampler-side state. That property is what lets the model
//! crate key every noise draw by (seed, event time, coordinates) and
//! drop per-stream draw bookkeeping entirely.

use std::sync::OnceLock;

/// Number of ziggurat layers. 128 layers keep both tables in two
/// cache lines' worth of f64s while pushing the common-path accept
/// rate past 98%.
const N: usize = 128;

/// Right edge of the base layer: draws beyond this fall into the exact
/// tail sampler (Marsaglia & Tsang, 2000, for N = 128).
const R: f64 = 3.442_619_855_899;

/// Common area of every layer (base layer includes the tail mass).
const V: f64 = 9.912_563_035_262_17e-3;

/// Precomputed layer tables.
///
/// `x[i]` is the right edge of layer `i` (descending; `x[0]` is the
/// *virtual* width of the base layer `V / f(R) > R`, `x[N] = 0`), and
/// `f[i] = exp(-x[i]^2 / 2)` is the density at that edge (`f[0]` is
/// pinned to `f[1]`, the density at the base layer's real edge).
struct Tables {
    x: [f64; N + 1],
    f: [f64; N + 1],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let density = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0f64; N + 1];
        x[0] = V / density(R);
        x[1] = R;
        for i in 1..N - 1 {
            // Area invariant: x[i] * (f(x[i+1]) - f(x[i])) = V.
            x[i + 1] = (-2.0 * (V / x[i] + density(x[i])).ln()).sqrt();
        }
        x[N] = 0.0;
        let mut f = [0.0f64; N + 1];
        for i in 1..=N {
            f[i] = density(x[i]);
        }
        f[0] = f[1];
        Tables { x, f }
    })
}

/// The top 53 bits of `bits` as a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The top 53 bits of `bits` as a uniform f64 in `(0, 1]` — safe to
/// feed to `ln`.
fn unit_f64_open(bits: u64) -> f64 {
    ((bits >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One standard-normal draw from a stream of 64-bit words.
///
/// The common case consumes exactly one word: 7 bits pick the layer,
/// 1 bit the sign, and the top 53 bits the position inside the layer.
/// The wedge test and the exact tail sampler pull further words as
/// needed (~1.2% of draws). Deterministic: the same word stream always
/// yields the same draw.
pub fn ziggurat_normal(mut next: impl FnMut() -> u64) -> f64 {
    let t = tables();
    loop {
        let bits = next();
        let i = (bits & 0x7F) as usize;
        let sign = if bits & 0x80 != 0 { -1.0 } else { 1.0 };
        let x = unit_f64(bits) * t.x[i];
        if x < t.x[i + 1] {
            // Entirely inside layer i's under-curve rectangle.
            return sign * x;
        }
        if i == 0 {
            // Base layer overflow: sample the exact tail beyond R.
            loop {
                let a = -unit_f64_open(next()).ln() / R;
                let b = -unit_f64_open(next()).ln();
                if b + b > a * a {
                    return sign * (R + a);
                }
            }
        }
        // Wedge between the rectangle edge and the curve: accept with
        // probability proportional to the density overshoot.
        let y = t.f[i] + unit_f64(next()) * (t.f[i + 1] - t.f[i]);
        if y < (-0.5 * x * x).exp() {
            return sign * x;
        }
    }
}

/// Per-lane multiplier of the canonical counter-keyed word stream
/// (the golden-ratio Weyl constant SplitMix64 itself is built on).
pub const KEYED_LANE_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Per-extra-word multiplier of the canonical counter-keyed stream.
pub const KEYED_EXTRA_MUL: u64 = 0xD134_2543_DE82_EF95;

/// SplitMix64 finalizer (pure form).
#[inline]
fn splitmix_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// First word of lane `lane`'s canonical counter-keyed stream anchored
/// at `base`.
#[inline]
pub fn keyed_word0(base: u64, lane: u64) -> u64 {
    splitmix_mix(base ^ lane.wrapping_mul(KEYED_LANE_MUL))
}

/// Word `k + 1` (`k ≥ 1`) of a stream whose first word was `w0`.
#[inline]
pub fn keyed_extra(w0: u64, k: u64) -> u64 {
    splitmix_mix(w0 ^ k.wrapping_mul(KEYED_EXTRA_MUL))
}

/// One standard-normal draw of lane `lane` of the canonical
/// counter-keyed stream anchored at `base` — the scalar form of
/// [`ziggurat_normal_fill_keyed`].
#[inline]
pub fn keyed_normal(base: u64, lane: u64) -> f64 {
    let w0 = keyed_word0(base, lane);
    let mut k = 0u64;
    ziggurat_normal(|| {
        k += 1;
        if k == 1 {
            w0
        } else {
            keyed_extra(w0, k - 1)
        }
    })
}

/// Fills `out[lane] = sigma * keyed_normal(base, lane)` for every lane —
/// the batched shape the simulator's per-event noise fills use,
/// bit-identical to the scalar per-lane form.
///
/// Structure: a branchless pass resolves the ~97% of lanes whose draw
/// needs only the lane's first word, recording a reject bit per lane,
/// and a repair pass replays the full wedge/tail sampler over the exact
/// same word stream for each rejected lane. On x86-64 with AVX-512 the
/// resolve pass is hand-written 8 lanes wide (`vpmullq` for the
/// SplitMix64 multiplies, `vcvtqq2pd` for the exact 53-bit uniform,
/// `vgatherqpd` for the layer tables); every vector operation is an
/// IEEE-exact multiply, compare, or sign-bit XOR, so it produces the
/// same bits as the scalar form. The portable fallback marks rejected
/// lanes NaN (impossible as a real draw value) via a select so the loop
/// stays straight-line and autovectorizable. The repair calls are the
/// only transcendental work left, and they are irreducible: a rejected
/// lane's draw value is pinned to libm's `exp`/`ln` results.
pub fn ziggurat_normal_fill_keyed(out: &mut [f64], sigma: f64, base: u64) {
    let t = tables();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            // SAFETY: the required target features were just detected.
            unsafe { fill_keyed_avx512(out, sigma, base, t) };
            return;
        }
    }
    fill_keyed_body(out, sigma, base, t);
    repair_rejected(out, sigma, base);
}

#[inline(always)]
fn fill_keyed_body(out: &mut [f64], sigma: f64, base: u64, t: &Tables) {
    const CHUNK: usize = 256;
    let mut w = [0u64; CHUNK];
    let mut lane0 = 0u64;
    for chunk in out.chunks_mut(CHUNK) {
        let n = chunk.len();
        for (i, slot) in w[..n].iter_mut().enumerate() {
            *slot = keyed_word0(base, lane0 + i as u64);
        }
        for (i, v) in chunk.iter_mut().enumerate() {
            let bits = w[i];
            let idx = (bits & 0x7F) as usize;
            let sign = if bits & 0x80 != 0 { -1.0 } else { 1.0 };
            let x = unit_f64(bits) * t.x[idx];
            *v = if x < t.x[idx + 1] {
                sigma * (sign * x)
            } else {
                f64::NAN
            };
        }
        lane0 += n as u64;
    }
}

/// Explicit 8-wide resolve pass. FP contraction is off (no FMA is
/// emitted), `vcvtqq2pd` of a 53-bit integer is exact, and the sign is
/// applied by XORing the IEEE sign bit — identical to multiplying by
/// ±1.0 for every finite value — so each lane computes bit-for-bit the
/// scalar expression `sigma * (sign * (unit_f64(w0) * x[idx]))`.
///
/// Reject bits are written unconditionally (one byte per 8-lane group)
/// and scanned after each 4096-lane block: branching on the compare
/// mask inside the loop stalls the gather pipeline, and calling the
/// scalar repair from vector code forces every broadcast constant to
/// spill around the call — both measured, both roughly double the fill
/// cost.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn fill_keyed_avx512(out: &mut [f64], sigma: f64, base: u64, t: &Tables) {
    use std::arch::x86_64::*;
    const GROUPS: usize = 512; // 8-lane groups per repair flush (4096 lanes)
    let n = out.len();
    let base_v = _mm512_set1_epi64(base as i64);
    let add_c = _mm512_set1_epi64(0x9E37_79B9_7F4A_7C15u64 as i64);
    let mul1 = _mm512_set1_epi64(0xBF58_476D_1CE4_E5B9u64 as i64);
    let mul2 = _mm512_set1_epi64(0x94D0_49BB_1331_11EBu64 as i64);
    let idx_mask = _mm512_set1_epi64(0x7F);
    let sign_sel = _mm512_set1_epi64(0x80);
    let two_m53 = _mm512_set1_pd(1.0 / (1u64 << 53) as f64);
    let sigma_v = _mm512_set1_pd(sigma);
    // lane * KEYED_LANE_MUL is an arithmetic progression: step it with
    // an add instead of re-multiplying every iteration.
    let mut lane_mul_v = _mm512_mullo_epi64(
        _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7),
        _mm512_set1_epi64(KEYED_LANE_MUL as i64),
    );
    let lane_mul_step = _mm512_set1_epi64(KEYED_LANE_MUL.wrapping_mul(8) as i64);
    let tab = t.x.as_ptr();
    let mut maskbuf = [0u8; GROUPS];
    let mut block0 = 0usize;
    while block0 < n {
        let full = ((n - block0) / 8).min(GROUPS);
        for (g, slot) in maskbuf[..full].iter_mut().enumerate() {
            let i = block0 + g * 8;
            let mut h = _mm512_xor_si512(base_v, lane_mul_v);
            h = _mm512_add_epi64(h, add_c);
            h = _mm512_mullo_epi64(_mm512_xor_si512(h, _mm512_srli_epi64(h, 30)), mul1);
            h = _mm512_mullo_epi64(_mm512_xor_si512(h, _mm512_srli_epi64(h, 27)), mul2);
            let w = _mm512_xor_si512(h, _mm512_srli_epi64(h, 31));
            let idx = _mm512_and_si512(w, idx_mask);
            let u = _mm512_mul_pd(_mm512_cvtepi64_pd(_mm512_srli_epi64(w, 11)), two_m53);
            let xlo = _mm512_i64gather_pd(idx, tab, 8);
            let xhi = _mm512_i64gather_pd(idx, tab.add(1), 8);
            let x = _mm512_mul_pd(u, xlo);
            let acc = _mm512_cmp_pd_mask(x, xhi, _CMP_LT_OQ);
            let signbits = _mm512_slli_epi64(_mm512_and_si512(w, sign_sel), 56);
            let sx = _mm512_castsi512_pd(_mm512_xor_si512(_mm512_castpd_si512(x), signbits));
            let res = _mm512_mul_pd(sigma_v, sx);
            _mm512_storeu_pd(out.as_mut_ptr().add(i), res);
            *slot = !acc;
            lane_mul_v = _mm512_add_epi64(lane_mul_v, lane_mul_step);
        }
        repair_group_masks(out, sigma, base, &maskbuf[..full], block0);
        block0 += full * 8;
        if full < GROUPS {
            break;
        }
    }
    // Trailing partial group: the scalar reference path.
    for (lane, slot) in out.iter_mut().enumerate().take(n).skip(block0) {
        *slot = sigma * keyed_normal(base, lane as u64);
    }
}

/// Replays the full sampler for each lane whose reject bit is set.
#[cfg(target_arch = "x86_64")]
fn repair_group_masks(out: &mut [f64], sigma: f64, base: u64, masks: &[u8], lane0: usize) {
    for (wi, word) in masks.chunks(8).enumerate() {
        let mut chunk = [0u8; 8];
        chunk[..word.len()].copy_from_slice(word);
        let mut bits = u64::from_le_bytes(chunk);
        while bits != 0 {
            let lane = lane0 + wi * 64 + bits.trailing_zeros() as usize;
            out[lane] = sigma * keyed_normal(base, lane as u64);
            bits &= bits - 1;
        }
    }
}

/// Fills `out[lane]` with the uniform `[0, 1)` draw of each lane's
/// first keyed word: `unit_f64(keyed_word0(base, lane))`, bit-identical
/// to the scalar per-lane form. This is the batched shape of per-column
/// uniform fault draws (e.g. sense-amp flip checks), which consume
/// exactly one word per lane and need no repair pass.
pub fn keyed_unit_fill(out: &mut [f64], base: u64) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            // SAFETY: the required target features were just detected.
            unsafe { unit_fill_avx512(out, base) };
            return;
        }
    }
    for (lane, v) in out.iter_mut().enumerate() {
        *v = unit_f64(keyed_word0(base, lane as u64));
    }
}

/// 8-wide `keyed_unit_fill`: the hash pass of [`fill_keyed_avx512`]
/// plus the exact 53-bit conversion — no tables, no repairs.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn unit_fill_avx512(out: &mut [f64], base: u64) {
    use std::arch::x86_64::*;
    let n = out.len();
    let base_v = _mm512_set1_epi64(base as i64);
    let add_c = _mm512_set1_epi64(0x9E37_79B9_7F4A_7C15u64 as i64);
    let mul1 = _mm512_set1_epi64(0xBF58_476D_1CE4_E5B9u64 as i64);
    let mul2 = _mm512_set1_epi64(0x94D0_49BB_1331_11EBu64 as i64);
    let two_m53 = _mm512_set1_pd(1.0 / (1u64 << 53) as f64);
    let mut lane_mul_v = _mm512_mullo_epi64(
        _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7),
        _mm512_set1_epi64(KEYED_LANE_MUL as i64),
    );
    let lane_mul_step = _mm512_set1_epi64(KEYED_LANE_MUL.wrapping_mul(8) as i64);
    let mut i = 0usize;
    while i + 8 <= n {
        let mut h = _mm512_xor_si512(base_v, lane_mul_v);
        h = _mm512_add_epi64(h, add_c);
        h = _mm512_mullo_epi64(_mm512_xor_si512(h, _mm512_srli_epi64(h, 30)), mul1);
        h = _mm512_mullo_epi64(_mm512_xor_si512(h, _mm512_srli_epi64(h, 27)), mul2);
        let w = _mm512_xor_si512(h, _mm512_srli_epi64(h, 31));
        let u = _mm512_mul_pd(_mm512_cvtepi64_pd(_mm512_srli_epi64(w, 11)), two_m53);
        _mm512_storeu_pd(out.as_mut_ptr().add(i), u);
        lane_mul_v = _mm512_add_epi64(lane_mul_v, lane_mul_step);
        i += 8;
    }
    for (lane, v) in out.iter_mut().enumerate().skip(i) {
        *v = unit_f64(keyed_word0(base, lane as u64));
    }
}

/// Replays the full sampler for every lane the branchless pass rejected.
fn repair_rejected(out: &mut [f64], sigma: f64, base: u64) {
    for (lane, v) in out.iter_mut().enumerate() {
        if v.is_nan() {
            *v = sigma * keyed_normal(base, lane as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{mix, splitmix64, Rng};
    use crate::special::normal_cdf;

    fn draws(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n).map(|_| ziggurat_normal(|| rng.next_u64())).collect()
    }

    #[test]
    fn layer_tables_are_consistent() {
        let t = tables();
        // Edges descend from the virtual base width to zero.
        assert!(t.x[0] > R);
        assert_eq!(t.x[1], R);
        for i in 1..N {
            assert!(t.x[i] > t.x[i + 1], "x not descending at {i}");
        }
        assert_eq!(t.x[N], 0.0);
        assert_eq!(t.f[N], 1.0);
        // Every proper layer has area V.
        for i in 1..N {
            let area = t.x[i] * (t.f[i + 1] - t.f[i]);
            assert!((area - V).abs() < 1e-9, "layer {i} area {area}");
        }
    }

    #[test]
    fn moments_match_standard_normal() {
        let n = 1_000_000;
        let xs = draws(0x5A5A, n);
        let nf = n as f64;
        let mean = xs.iter().sum::<f64>() / nf;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / nf;
        let sd = var.sqrt();
        let skew = xs.iter().map(|x| ((x - mean) / sd).powi(3)).sum::<f64>() / nf;
        let kurt = xs.iter().map(|x| ((x - mean) / sd).powi(4)).sum::<f64>() / nf;
        assert!(mean.abs() < 5e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
        assert!(skew.abs() < 2e-2, "skew {skew}");
        assert!((kurt - 3.0).abs() < 1e-1, "kurtosis {kurt}");
    }

    #[test]
    fn tail_mass_beyond_3_and_4_sigma() {
        let n = 1_000_000;
        let xs = draws(0xBEEF, n);
        // Two-sided P(|Z| > 3) = 2.6998e-3, P(|Z| > 4) = 6.334e-5.
        let beyond3 = xs.iter().filter(|x| x.abs() > 3.0).count();
        let beyond4 = xs.iter().filter(|x| x.abs() > 4.0).count();
        assert!(
            (2_300..=3_200).contains(&beyond3),
            "3-sigma tail count {beyond3}"
        );
        assert!(
            (25..=110).contains(&beyond4),
            "4-sigma tail count {beyond4}"
        );
        // The tail sampler reaches past the table edge R.
        assert!(xs.iter().any(|x| x.abs() > R), "no draw beyond R");
    }

    #[test]
    fn ks_deviation_vs_erf_cdf_is_small() {
        let n = 200_000;
        let mut xs = draws(0xC0FFEE, n);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let nf = n as f64;
        let mut d = 0.0f64;
        for (i, &x) in xs.iter().enumerate() {
            let phi = normal_cdf(x);
            let lo = i as f64 / nf;
            let hi = (i + 1) as f64 / nf;
            d = d.max((phi - lo).abs()).max((hi - phi).abs());
        }
        // KS critical value at alpha = 0.001 is ~1.95 / sqrt(n) = 4.4e-3.
        assert!(d < 5e-3, "KS statistic {d}");
    }

    #[test]
    fn counter_keyed_draws_are_order_free_and_stable() {
        // A counter-keyed stream: word k of event e is a pure function
        // of (seed, e, k) — no sequential state anywhere.
        let keyed = |seed: u64, event: u64| -> f64 {
            let mut k = 0u64;
            ziggurat_normal(|| {
                k += 1;
                let mut s = mix(seed, &[event, k]);
                splitmix64(&mut s)
            })
        };
        // Same key, same draw — regardless of evaluation order.
        let forward: Vec<f64> = (0..64).map(|e| keyed(7, e)).collect();
        let backward: Vec<f64> = (0..64).rev().map(|e| keyed(7, e)).collect();
        for (f, b) in forward.iter().zip(backward.iter().rev()) {
            assert_eq!(f.to_bits(), b.to_bits());
        }
        // Distinct keys give distinct draws.
        assert_ne!(keyed(7, 0).to_bits(), keyed(7, 1).to_bits());
        assert_ne!(keyed(7, 0).to_bits(), keyed(8, 0).to_bits());
    }

    #[test]
    fn batched_fill_matches_per_lane_draws() {
        let base = mix(0xABCD, &[17]);
        for n in [1usize, 7, 255, 256, 257, 2048] {
            for sigma in [1.0, 0.037] {
                let mut batched = vec![0.0f64; n];
                ziggurat_normal_fill_keyed(&mut batched, sigma, base);
                for (lane, &v) in batched.iter().enumerate() {
                    let scalar = sigma * keyed_normal(base, lane as u64);
                    assert_eq!(v.to_bits(), scalar.to_bits(), "lane {lane} of {n}");
                }
            }
        }
        // Sanity: a 2048-lane fill must exercise the wedge/tail fallback
        // (roughly 1.2% of lanes reject the single-word fast path).
        let mut buf = vec![0.0f64; 2048];
        ziggurat_normal_fill_keyed(&mut buf, 1.0, base);
        assert!(buf.iter().any(|v| v.abs() > 3.0), "no tail-ish draw");
    }

    #[test]
    fn unit_fill_matches_per_lane_uniforms() {
        let base = mix(0x5EED, &[3]);
        for n in [1usize, 7, 8, 9, 255, 1024] {
            let mut batched = vec![0.0f64; n];
            keyed_unit_fill(&mut batched, base);
            for (lane, &v) in batched.iter().enumerate() {
                let scalar = unit_f64(keyed_word0(base, lane as u64));
                assert_eq!(v.to_bits(), scalar.to_bits(), "lane {lane} of {n}");
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn keyed_stream_words_match_manual_derivation() {
        // The keyed helpers must replicate the documented derivation
        // exactly — the model's noise engine depends on it.
        let w0 = keyed_word0(99, 3);
        let mut s = 99u64 ^ 3u64.wrapping_mul(KEYED_LANE_MUL);
        assert_eq!(w0, splitmix64(&mut s));
        let e1 = keyed_extra(w0, 1);
        let mut s = w0 ^ KEYED_EXTRA_MUL;
        assert_eq!(e1, splitmix64(&mut s));
    }

    #[test]
    fn identical_word_streams_give_identical_draws() {
        let a = draws(42, 10_000);
        let b = draws(42, 10_000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
