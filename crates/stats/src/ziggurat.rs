//! Ziggurat sampler for the standard normal distribution.
//!
//! The simulator draws one temporal-noise normal per column per
//! internal event, so the normal sampler is the hottest numerical
//! kernel in the workspace. Box–Muller costs two uniforms plus
//! `ln`/`sqrt` per draw; the Marsaglia–Tsang ziggurat costs one 64-bit
//! word, a table lookup, and a multiply in ~98.8% of draws, with an
//! exact wedge/tail fallback for the rest — the distribution is the
//! exact standard normal, not an approximation.
//!
//! The sampler is a pure function of the words it is handed:
//! [`ziggurat_normal`] pulls from a caller-supplied `FnMut() -> u64`,
//! so a counter-keyed word stream yields a counter-keyed normal stream
//! with no sampler-side state. That property is what lets the model
//! crate key every noise draw by (seed, event time, coordinates) and
//! drop per-stream draw bookkeeping entirely.

use std::sync::OnceLock;

/// Number of ziggurat layers. 128 layers keep both tables in two
/// cache lines' worth of f64s while pushing the common-path accept
/// rate past 98%.
const N: usize = 128;

/// Right edge of the base layer: draws beyond this fall into the exact
/// tail sampler (Marsaglia & Tsang, 2000, for N = 128).
const R: f64 = 3.442_619_855_899;

/// Common area of every layer (base layer includes the tail mass).
const V: f64 = 9.912_563_035_262_17e-3;

/// Precomputed layer tables.
///
/// `x[i]` is the right edge of layer `i` (descending; `x[0]` is the
/// *virtual* width of the base layer `V / f(R) > R`, `x[N] = 0`), and
/// `f[i] = exp(-x[i]^2 / 2)` is the density at that edge (`f[0]` is
/// pinned to `f[1]`, the density at the base layer's real edge).
struct Tables {
    x: [f64; N + 1],
    f: [f64; N + 1],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let density = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0f64; N + 1];
        x[0] = V / density(R);
        x[1] = R;
        for i in 1..N - 1 {
            // Area invariant: x[i] * (f(x[i+1]) - f(x[i])) = V.
            x[i + 1] = (-2.0 * (V / x[i] + density(x[i])).ln()).sqrt();
        }
        x[N] = 0.0;
        let mut f = [0.0f64; N + 1];
        for i in 1..=N {
            f[i] = density(x[i]);
        }
        f[0] = f[1];
        Tables { x, f }
    })
}

/// The top 53 bits of `bits` as a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The top 53 bits of `bits` as a uniform f64 in `(0, 1]` — safe to
/// feed to `ln`.
fn unit_f64_open(bits: u64) -> f64 {
    ((bits >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One standard-normal draw from a stream of 64-bit words.
///
/// The common case consumes exactly one word: 7 bits pick the layer,
/// 1 bit the sign, and the top 53 bits the position inside the layer.
/// The wedge test and the exact tail sampler pull further words as
/// needed (~1.2% of draws). Deterministic: the same word stream always
/// yields the same draw.
pub fn ziggurat_normal(mut next: impl FnMut() -> u64) -> f64 {
    let t = tables();
    loop {
        let bits = next();
        let i = (bits & 0x7F) as usize;
        let sign = if bits & 0x80 != 0 { -1.0 } else { 1.0 };
        let x = unit_f64(bits) * t.x[i];
        if x < t.x[i + 1] {
            // Entirely inside layer i's under-curve rectangle.
            return sign * x;
        }
        if i == 0 {
            // Base layer overflow: sample the exact tail beyond R.
            loop {
                let a = -unit_f64_open(next()).ln() / R;
                let b = -unit_f64_open(next()).ln();
                if b + b > a * a {
                    return sign * (R + a);
                }
            }
        }
        // Wedge between the rectangle edge and the curve: accept with
        // probability proportional to the density overshoot.
        let y = t.f[i] + unit_f64(next()) * (t.f[i + 1] - t.f[i]);
        if y < (-0.5 * x * x).exp() {
            return sign * x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{mix, splitmix64, Rng};
    use crate::special::normal_cdf;

    fn draws(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n).map(|_| ziggurat_normal(|| rng.next_u64())).collect()
    }

    #[test]
    fn layer_tables_are_consistent() {
        let t = tables();
        // Edges descend from the virtual base width to zero.
        assert!(t.x[0] > R);
        assert_eq!(t.x[1], R);
        for i in 1..N {
            assert!(t.x[i] > t.x[i + 1], "x not descending at {i}");
        }
        assert_eq!(t.x[N], 0.0);
        assert_eq!(t.f[N], 1.0);
        // Every proper layer has area V.
        for i in 1..N {
            let area = t.x[i] * (t.f[i + 1] - t.f[i]);
            assert!((area - V).abs() < 1e-9, "layer {i} area {area}");
        }
    }

    #[test]
    fn moments_match_standard_normal() {
        let n = 1_000_000;
        let xs = draws(0x5A5A, n);
        let nf = n as f64;
        let mean = xs.iter().sum::<f64>() / nf;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / nf;
        let sd = var.sqrt();
        let skew = xs.iter().map(|x| ((x - mean) / sd).powi(3)).sum::<f64>() / nf;
        let kurt = xs.iter().map(|x| ((x - mean) / sd).powi(4)).sum::<f64>() / nf;
        assert!(mean.abs() < 5e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
        assert!(skew.abs() < 2e-2, "skew {skew}");
        assert!((kurt - 3.0).abs() < 1e-1, "kurtosis {kurt}");
    }

    #[test]
    fn tail_mass_beyond_3_and_4_sigma() {
        let n = 1_000_000;
        let xs = draws(0xBEEF, n);
        // Two-sided P(|Z| > 3) = 2.6998e-3, P(|Z| > 4) = 6.334e-5.
        let beyond3 = xs.iter().filter(|x| x.abs() > 3.0).count();
        let beyond4 = xs.iter().filter(|x| x.abs() > 4.0).count();
        assert!(
            (2_300..=3_200).contains(&beyond3),
            "3-sigma tail count {beyond3}"
        );
        assert!(
            (25..=110).contains(&beyond4),
            "4-sigma tail count {beyond4}"
        );
        // The tail sampler reaches past the table edge R.
        assert!(xs.iter().any(|x| x.abs() > R), "no draw beyond R");
    }

    #[test]
    fn ks_deviation_vs_erf_cdf_is_small() {
        let n = 200_000;
        let mut xs = draws(0xC0FFEE, n);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let nf = n as f64;
        let mut d = 0.0f64;
        for (i, &x) in xs.iter().enumerate() {
            let phi = normal_cdf(x);
            let lo = i as f64 / nf;
            let hi = (i + 1) as f64 / nf;
            d = d.max((phi - lo).abs()).max((hi - phi).abs());
        }
        // KS critical value at alpha = 0.001 is ~1.95 / sqrt(n) = 4.4e-3.
        assert!(d < 5e-3, "KS statistic {d}");
    }

    #[test]
    fn counter_keyed_draws_are_order_free_and_stable() {
        // A counter-keyed stream: word k of event e is a pure function
        // of (seed, e, k) — no sequential state anywhere.
        let keyed = |seed: u64, event: u64| -> f64 {
            let mut k = 0u64;
            ziggurat_normal(|| {
                k += 1;
                let mut s = mix(seed, &[event, k]);
                splitmix64(&mut s)
            })
        };
        // Same key, same draw — regardless of evaluation order.
        let forward: Vec<f64> = (0..64).map(|e| keyed(7, e)).collect();
        let backward: Vec<f64> = (0..64).rev().map(|e| keyed(7, e)).collect();
        for (f, b) in forward.iter().zip(backward.iter().rev()) {
            assert_eq!(f.to_bits(), b.to_bits());
        }
        // Distinct keys give distinct draws.
        assert_ne!(keyed(7, 0).to_bits(), keyed(7, 1).to_bits());
        assert_ne!(keyed(7, 0).to_bits(), keyed(8, 0).to_bits());
    }

    #[test]
    fn identical_word_streams_give_identical_draws() {
        let a = draws(42, 10_000);
        let b = draws(42, 10_000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
