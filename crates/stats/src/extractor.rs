//! Randomness extractors.
//!
//! Raw Frac-PUF responses are biased (their Hamming weight depends on the
//! DRAM group; e.g. only 21 % of group A bits read as one). Before feeding
//! the NIST suite the paper whitens responses with "a modified Von Neumann
//! randomness extractor" (§VI-B2). Given independent bits of any fixed
//! bias, Von Neumann extraction produces exactly unbiased output.

use crate::bits::BitVec;

/// Classic Von Neumann extractor: consume non-overlapping bit pairs,
/// emit `0` for `01`, `1` for `10`, nothing for `00`/`11`.
pub fn von_neumann(input: &BitVec) -> BitVec {
    let mut out = BitVec::with_capacity(input.len() / 4);
    let mut i = 0;
    while i + 1 < input.len() {
        let a = input.get(i).unwrap();
        let b = input.get(i + 1).unwrap();
        if a != b {
            out.push(b);
        }
        i += 2;
    }
    out
}

/// Iterated ("modified") Von Neumann extractor: the classic extractor
/// discards the `00`/`11` pairs; iterating on the discarded-pair stream
/// recovers additional entropy. `levels = 1` equals [`von_neumann`].
pub fn von_neumann_iterated(input: &BitVec, levels: usize) -> BitVec {
    let mut out = BitVec::with_capacity(input.len() / 3);
    let mut current = input.clone();
    for _ in 0..levels.max(1) {
        let mut discarded = BitVec::new();
        let mut i = 0;
        while i + 1 < current.len() {
            let a = current.get(i).unwrap();
            let b = current.get(i + 1).unwrap();
            if a != b {
                out.push(b);
            } else {
                // Both equal: the *value* still carries entropy at the
                // next level (this is the pair-value sub-stream).
                discarded.push(a);
            }
            i += 2;
        }
        if discarded.len() < 2 {
            break;
        }
        current = discarded;
    }
    out
}

/// Expected output fraction of the classic extractor for input bias `p`:
/// one output bit per pair with probability `2p(1-p)`.
pub fn expected_yield(p: f64) -> f64 {
    p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> BitVec {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn classic_pairs() {
        // Pairs: 01 -> 1, 10 -> 0, 11 -> skip, 00 -> skip.
        let out = von_neumann(&bits("01101100"));
        assert_eq!(out.to_bools(), vec![true, false]);
    }

    #[test]
    fn odd_trailing_bit_ignored() {
        let out = von_neumann(&bits("011"));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn constant_input_yields_nothing() {
        assert!(von_neumann(&bits("1111111111")).is_empty());
        assert!(von_neumann(&bits("0000000000")).is_empty());
    }

    #[test]
    fn output_is_unbiased_for_biased_input() {
        // Deterministic biased source: P(1) ~ 0.25.
        let mut state = 42u64;
        let mut input = BitVec::new();
        for _ in 0..200_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            input.push((state >> 33).is_multiple_of(4));
        }
        let raw_weight = input.hamming_weight();
        assert!((raw_weight - 0.25).abs() < 0.01, "raw {raw_weight}");
        let out = von_neumann(&input);
        let w = out.hamming_weight();
        assert!((w - 0.5).abs() < 0.01, "extracted weight {w}");
        // Yield approximates 2p(1-p) per pair = p(1-p) per input bit.
        let yield_frac = out.len() as f64 / input.len() as f64;
        assert!(
            (yield_frac - expected_yield(0.25)).abs() < 0.01,
            "yield {yield_frac}"
        );
    }

    #[test]
    fn iterated_extracts_more() {
        let mut state = 7u64;
        let mut input = BitVec::new();
        for _ in 0..100_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            input.push((state >> 33).is_multiple_of(4));
        }
        let classic = von_neumann(&input);
        let iterated = von_neumann_iterated(&input, 3);
        assert!(iterated.len() > classic.len());
        let w = iterated.hamming_weight();
        assert!((w - 0.5).abs() < 0.02, "iterated weight {w}");
    }

    #[test]
    fn level_one_equals_classic() {
        let input = bits("0110110010101100");
        assert_eq!(von_neumann_iterated(&input, 1), von_neumann(&input));
    }

    #[test]
    fn expected_yield_peaks_at_half() {
        assert!(expected_yield(0.5) > expected_yield(0.3));
        assert_eq!(expected_yield(0.0), 0.0);
        assert!((expected_yield(0.5) - 0.25).abs() < 1e-12);
    }
}
