//! # fracdram-stats — statistics substrate for the FracDRAM reproduction
//!
//! Every piece of numerical analysis the paper's evaluation needs,
//! implemented from scratch:
//!
//! - [`bits::BitVec`] — packed bit vectors for PUF responses and
//!   million-bit randomness streams;
//! - [`hamming`] — normalized Hamming distance/weight and the
//!   intra-/inter-device report used by Figures 11 and 12;
//! - [`histogram`] / [`summary`] — retention-time PDFs (Figure 6) and
//!   mean/CI summaries (Figure 9's shaded confidence bands);
//! - [`extractor`] — the modified Von Neumann whitening the paper
//!   applies before feeding PUF responses to the NIST suite;
//! - [`special`], [`fft`], [`matrix_rank`] — the numerical kernels
//!   (erfc, incomplete gamma, DFT, GF(2) rank) the NIST tests need;
//! - [`ziggurat`] — the table-driven exact standard-normal sampler the
//!   model's counter-keyed noise engine draws through;
//! - [`nist`] — the full NIST SP 800-22 suite (all 15 tests, §VI-B2);
//! - [`stream`] — online Welford/Pébay moments, fixed-bin streaming
//!   histograms, and seed-keyed deterministic reservoir sampling for
//!   the population-scale fleet (bounded memory, order-structured
//!   merges that keep aggregates byte-identical at any `--jobs N`).
//!
//! ## Example
//!
//! ```
//! use fracdram_stats::bits::BitVec;
//! use fracdram_stats::extractor::von_neumann;
//! use fracdram_stats::nist;
//!
//! // A biased stream (like a raw PUF response with Hamming weight 0.2)
//! // is whitened before the suite sees it.
//! let raw: BitVec = (0..100_000u32)
//!     .map(|i| (i.wrapping_mul(2654435761) >> 29) == 0)
//!     .collect();
//! let white = von_neumann(&raw);
//! let report = nist::run_all(&white);
//! println!("{report}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bits;
pub mod extractor;
pub mod fft;
pub mod hamming;
pub mod histogram;
pub mod matrix_rank;
pub mod nist;
pub mod rng;
pub mod special;
pub mod stream;
pub mod summary;
pub mod ziggurat;

pub use bits::BitVec;
pub use hamming::HdReport;
pub use histogram::Histogram;
pub use summary::Summary;
