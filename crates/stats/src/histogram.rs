//! Bucketed histograms / probability density functions.
//!
//! Fig. 6 and Fig. 8 of the paper present retention times as PDFs over a
//! small set of coarse time ranges; [`Histogram`] is that structure
//! generalized: explicit bucket edges, counting, and normalization.

use std::fmt;

/// A histogram over contiguous buckets defined by their upper edges.
///
/// A sample `x` falls into the first bucket whose upper edge satisfies
/// `x <= edge`; samples above the last edge land in the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper edges; one
    /// overflow bucket is added beyond the last edge.
    ///
    /// # Panics
    ///
    /// Panics when `edges` is empty or not strictly ascending.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let buckets = edges.len() + 1;
        Histogram {
            edges,
            counts: vec![0; buckets],
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(&self, value: f64) -> usize {
        self.edges.partition_point(|&e| e < value)
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let idx = self.bucket_of(value);
        self.counts[idx] += 1;
    }

    /// Records many samples.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Bucket upper edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Raw counts (including the final overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The normalized PDF (fractions summing to 1; all zeros when empty).
    pub fn pdf(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Merges the counts of another histogram with identical edges.
    ///
    /// # Panics
    ///
    /// Panics when the edges differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "cannot merge differing buckets");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pdf = self.pdf();
        let mut lo = f64::NEG_INFINITY;
        for (i, &edge) in self.edges.iter().enumerate() {
            writeln!(f, "({lo:>10.3}, {edge:>10.3}]  {:6.2}%", pdf[i] * 100.0)?;
            lo = edge;
        }
        writeln!(
            f,
            "({lo:>10.3},        inf)  {:6.2}%",
            pdf[self.edges.len()] * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_line() {
        let h = Histogram::new(vec![0.0, 10.0, 30.0]);
        assert_eq!(h.bucket_of(-5.0), 0);
        assert_eq!(h.bucket_of(0.0), 0); // inclusive upper edge
        assert_eq!(h.bucket_of(0.1), 1);
        assert_eq!(h.bucket_of(10.0), 1);
        assert_eq!(h.bucket_of(29.9), 2);
        assert_eq!(h.bucket_of(31.0), 3); // overflow
    }

    #[test]
    fn record_and_pdf() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.record_all([0.5, 1.5, 1.7, 5.0]);
        assert_eq!(h.counts(), &[1, 2, 1]);
        let pdf = h.pdf();
        assert!((pdf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((pdf[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_pdf_is_zero() {
        let h = Histogram::new(vec![1.0]);
        assert_eq!(h.pdf(), vec![0.0, 0.0]);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(vec![1.0]);
        let mut b = Histogram::new(vec![1.0]);
        a.record(0.5);
        b.record(0.5);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_edges_panic() {
        let _ = Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn display_prints_every_bucket() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.record(0.0);
        let s = h.to_string();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("100.00%"));
    }
}
