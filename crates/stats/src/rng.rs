//! Deterministic pseudo-random number generation for experiments.
//!
//! The experiment harness needs reproducible randomness that is (a)
//! identical across platforms and thread counts and (b) cheaply
//! derivable per task, so a parallel fleet can hand every
//! (group, module, sub-array) task its own independent stream. This is
//! xoshiro256** seeded through SplitMix64 — the standard construction
//! from Blackman & Vigna — implemented here so the workspace carries no
//! external dependency.

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used both as the seeding PRNG for [`Rng`] and as a mixing function
/// for deriving per-task seeds from a base seed plus task coordinates.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a base seed with a sequence of coordinates into one derived
/// seed. Order-sensitive: `mix(s, &[a, b]) != mix(s, &[b, a])`.
pub fn mix(base: u64, parts: &[u64]) -> u64 {
    let mut state = base ^ 0x6A09_E667_F3BC_C909;
    let mut out = splitmix64(&mut state);
    for &p in parts {
        state ^= p;
        out ^= splitmix64(&mut state);
    }
    out
}

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// Not cryptographic — experiment input generation only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a single `u64` via SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        Rng { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A fair random bool (top output bit).
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A uniform float in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range upper bound must be positive");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= n.wrapping_neg() % n {
                return hi as usize;
            }
        }
    }

    /// Fills `out` with fair random bools — the allocation-free shape
    /// the trial hot loop uses for operand rows. Draw-compatible with
    /// [`Rng::gen_bools`]: one `next_u64` per bool, in order.
    pub fn fill_bools(&mut self, out: &mut [bool]) {
        for b in out.iter_mut() {
            *b = self.gen_bool();
        }
    }

    /// A vector of `n` fair random bools (see [`Rng::fill_bools`] for
    /// the allocation-free form).
    pub fn gen_bools(&mut self, n: usize) -> Vec<bool> {
        let mut out = vec![false; n];
        self.fill_bools(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_answer() {
        // Reference values for seed 0 (Vigna's splitmix64.c).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bools_are_balanced() {
        let mut rng = Rng::seed_from_u64(7);
        let ones = (0..10_000).filter(|_| rng.gen_bool()).count();
        assert!((4_500..5_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_is_unbiased_shape() {
        let mut rng = Rng::seed_from_u64(9);
        let mut counts = [0usize; 3];
        for _ in 0..9_000 {
            counts[rng.gen_range(3)] += 1;
        }
        for c in counts {
            assert!((2_700..3_300).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn fill_bools_matches_gen_bools() {
        let mut a = Rng::seed_from_u64(3);
        let mut b = Rng::seed_from_u64(3);
        let v = a.gen_bools(257);
        let mut buf = vec![false; 257];
        b.fill_bools(&mut buf);
        assert_eq!(v, buf);
        assert_eq!(a, b, "draw counts diverged");
    }

    #[test]
    fn mix_depends_on_order_and_parts() {
        let a = mix(1, &[2, 3]);
        let b = mix(1, &[3, 2]);
        let c = mix(1, &[2, 3, 0]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix(1, &[2, 3]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn empty_range_panics() {
        let _ = Rng::seed_from_u64(0).gen_range(0);
    }
}
