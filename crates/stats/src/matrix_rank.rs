//! Binary matrix rank over GF(2).
//!
//! Kernel of the NIST binary-matrix-rank test: 32×32 matrices are carved
//! out of the bit stream and their rank over GF(2) is computed by Gaussian
//! elimination; the distribution of ranks distinguishes random data from
//! structured data.

/// A square bit matrix stored one `u64` word per row (up to 64×64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<u64>,
    size: usize,
}

impl BitMatrix {
    /// Creates a zero matrix of `size`×`size`.
    ///
    /// # Panics
    ///
    /// Panics when `size` exceeds 64.
    pub fn zero(size: usize) -> Self {
        assert!(size <= 64, "BitMatrix supports up to 64x64");
        BitMatrix {
            rows: vec![0; size],
            size,
        }
    }

    /// Builds a matrix from a row-major bit iterator (must yield at least
    /// `size*size` bits).
    ///
    /// # Panics
    ///
    /// Panics when the iterator is exhausted early.
    pub fn from_bits<I: Iterator<Item = bool>>(size: usize, mut bits: I) -> Self {
        let mut m = BitMatrix::zero(size);
        for r in 0..size {
            for c in 0..size {
                let bit = bits.next().expect("not enough bits for matrix");
                if bit {
                    m.rows[r] |= 1u64 << c;
                }
            }
        }
        m
    }

    /// Matrix dimension.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Gets element `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        (self.rows[row] >> col) & 1 == 1
    }

    /// Sets element `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, v: bool) {
        if v {
            self.rows[row] |= 1u64 << col;
        } else {
            self.rows[row] &= !(1u64 << col);
        }
    }

    /// Rank over GF(2) by Gaussian elimination (destructive on a copy).
    pub fn rank(&self) -> usize {
        let mut rows = self.rows.clone();
        let mut rank = 0;
        for col in 0..self.size {
            let mask = 1u64 << col;
            // Find a pivot row at or below `rank`.
            let Some(pivot) = (rank..rows.len()).find(|&r| rows[r] & mask != 0) else {
                continue;
            };
            rows.swap(rank, pivot);
            let pivot_row = rows[rank];
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && *row & mask != 0 {
                    *row ^= pivot_row;
                }
            }
            rank += 1;
            if rank == rows.len() {
                break;
            }
        }
        rank
    }
}

/// Asymptotic probability that a random `m`×`m` GF(2) matrix has rank
/// `m - d` (`d` = deficiency); the NIST test uses d = 0, 1 and lumps the
/// rest.
pub fn rank_probability(m: usize, deficiency: usize) -> f64 {
    let r = m - deficiency;
    // P(rank = r) = 2^{r(2m - r) - m²} * Π_{i=0}^{r-1} [(1-2^{i-m})² / (1-2^{i-r})]
    let mut p = 2f64.powi((r as i32) * (2 * m as i32 - r as i32) - (m as i32) * (m as i32));
    for i in 0..r {
        let num = 1.0 - 2f64.powi(i as i32 - m as i32);
        let den = 1.0 - 2f64.powi(i as i32 - r as i32);
        p *= num * num / den;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_full_rank() {
        let mut m = BitMatrix::zero(8);
        for i in 0..8 {
            m.set(i, i, true);
        }
        assert_eq!(m.rank(), 8);
    }

    #[test]
    fn zero_matrix_rank_zero() {
        assert_eq!(BitMatrix::zero(32).rank(), 0);
    }

    #[test]
    fn duplicate_rows_reduce_rank() {
        let mut m = BitMatrix::zero(4);
        m.set(0, 0, true);
        m.set(0, 1, true);
        m.set(1, 0, true);
        m.set(1, 1, true); // row1 == row0
        m.set(2, 2, true);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn xor_dependency_detected() {
        // row2 = row0 ^ row1.
        let mut m = BitMatrix::zero(3);
        m.set(0, 0, true);
        m.set(1, 1, true);
        m.set(2, 0, true);
        m.set(2, 1, true);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn from_bits_row_major() {
        let bits = [true, false, false, true]; // 2x2 identity
        let m = BitMatrix::from_bits(2, bits.into_iter());
        assert!(m.get(0, 0) && m.get(1, 1));
        assert!(!m.get(0, 1) && !m.get(1, 0));
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn nist_rank_probabilities_for_32() {
        // SP 800-22 §2.5: full rank 0.2888, rank 31 0.5776, rest 0.1336.
        let p0 = rank_probability(32, 0);
        let p1 = rank_probability(32, 1);
        assert!((p0 - 0.2888).abs() < 3e-4, "p0 = {p0}");
        assert!((p1 - 0.5776).abs() < 3e-4, "p1 = {p1}");
        assert!((1.0 - p0 - p1 - 0.1336).abs() < 3e-4);
    }

    #[test]
    fn random_matrices_follow_rank_distribution() {
        // Deterministic pseudo-random bits via a simple LCG.
        let mut state = 0x1234_5678u64;
        let mut next_bit = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) & 1 == 1
        };
        let trials = 400;
        let mut full = 0;
        for _ in 0..trials {
            let m = BitMatrix::from_bits(32, std::iter::from_fn(|| Some(next_bit())));
            if m.rank() == 32 {
                full += 1;
            }
        }
        let frac = full as f64 / trials as f64;
        assert!((frac - 0.2888).abs() < 0.08, "full-rank fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "not enough bits")]
    fn from_bits_underflow_panics() {
        let _ = BitMatrix::from_bits(4, [true; 3].into_iter());
    }
}
