//! Online (streaming) statistics with exact, order-structured merges.
//!
//! The population-scale fleet pushes 10⁵–10⁷ die fingerprints through
//! per-chunk accumulators and merges them **in plan order**, so the
//! aggregate output is byte-identical at any worker count while the
//! resident state stays O(1) per worker. Three primitives cover it:
//!
//! - [`Moments`] — Welford/Pébay single-pass central moments (mean,
//!   variance, skewness, kurtosis) with the exact pairwise merge
//!   formulas, so `merge(fold(chunk₀), fold(chunk₁), …)` is a fixed
//!   floating-point expression tree: the same chunking and merge order
//!   always reproduce the same bits, regardless of which thread folded
//!   which chunk.
//! - [`FixedHistogram`] — fixed-bin streaming histogram over a closed
//!   range with pure integer counts; its merge is associative *and*
//!   commutative, so any merge order yields identical counts.
//! - [`Reservoir`] — deterministic seed-keyed reservoir sampling: each
//!   stream index gets a priority that is a pure function of
//!   `(seed, index)`, and the sample is the bottom-`k` by priority.
//!   The selected set therefore depends only on the index set, never on
//!   arrival order, chunking, or thread count — unlike classic
//!   sequential reservoir sampling (Vitter's Algorithm R), whose RNG
//!   stream is consumed in arrival order and so reshuffles under
//!   parallel folding.

use crate::rng::mix;

/// Single-pass central moments (count, mean, M2..M4) with exact
/// pairwise merging (Pébay 2008).
///
/// Floating-point caveat: `push` and `merge` are exact in infinite
/// precision but round differently depending on the grouping of
/// operations. Determinism therefore comes from *fixing the grouping*:
/// fold each fixed-size chunk sequentially, then merge chunk
/// accumulators in ascending chunk order. For small integer-valued
/// samples the merged result typically agrees with a two-pass
/// computation to ≤ 1 ulp; the unit tests pin a 1e-12 relative bound.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Moments::default()
    }

    /// Records one sample (Welford's update, extended to M3/M4).
    pub fn push(&mut self, x: f64) {
        let n0 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n0;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Merges another accumulator into this one using the exact
    /// pairwise-combination formulas. `a.merge(&b)` summarizes the
    /// concatenation of the two underlying samples.
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Bessel-corrected sample variance (0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample skewness `√n·M3 / M2^{3/2}` (0 when undefined).
    pub fn skewness(&self) -> f64 {
        if self.n < 2 || self.m2 <= 0.0 {
            return 0.0;
        }
        (self.n as f64).sqrt() * self.m3 / self.m2.powf(1.5)
    }

    /// Excess kurtosis `n·M4 / M2² − 3` (0 when undefined).
    pub fn kurtosis(&self) -> f64 {
        if self.n < 2 || self.m2 <= 0.0 {
            return 0.0;
        }
        self.n as f64 * self.m4 / (self.m2 * self.m2) - 3.0
    }
}

/// A streaming histogram over `bins` equal-width bins spanning
/// `[lo, hi)`, with explicit underflow/overflow counters.
///
/// All state is integer counts, so [`FixedHistogram::merge`] is
/// associative and commutative: any merge order over any partition of
/// the sample yields identical counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl FixedHistogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        FixedHistogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo || x.is_nan() {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        let bin = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[bin] += 1;
    }

    /// Merges another histogram with the identical bin configuration.
    ///
    /// # Panics
    ///
    /// Panics when the range or bin count differ.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "cannot merge differing bin configurations"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Per-bin counts (underflow/overflow excluded).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below `lo` (NaN counts here too).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The inclusive lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// The exclusive upper edge of bin `i`.
    pub fn bin_hi(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * (i + 1) as f64 / self.counts.len() as f64
    }
}

/// The priority a stream index draws in a seed-keyed reservoir: a pure
/// function of `(seed, index)`, independent of arrival order.
pub fn reservoir_priority(seed: u64, index: u64) -> u64 {
    // Salted so a reservoir never correlates with other per-index
    // derivations (die seeds use mix(seed, [index]) without the salt).
    mix(seed, &[0x5EED_5A4E_u64, index])
}

/// A deterministic bottom-`k` reservoir sample.
///
/// Every offered index draws [`reservoir_priority`]`(seed, index)`; the
/// reservoir keeps the `k` items with the smallest `(priority, index)`
/// pairs. Because the priority depends only on `(seed, index)`, the
/// selected sample is a pure function of the offered index set — two
/// runs that offer the same indices in any order, any chunking, on any
/// number of threads, select identical samples. `merge` (bottom-`k` of
/// the union) is associative and commutative for the same reason.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir<T> {
    seed: u64,
    capacity: usize,
    /// `(priority, index, item)`, kept ascending by `(priority, index)`.
    items: Vec<(u64, u64, T)>,
}

impl<T> Reservoir<T> {
    /// An empty reservoir keeping at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(seed: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir needs capacity");
        Reservoir {
            seed,
            capacity,
            items: Vec::new(),
        }
    }

    /// Offers the item at stream `index`. Whether it is retained depends
    /// only on `(seed, index)` and the other offered indices.
    pub fn offer(&mut self, index: u64, item: T) {
        let priority = reservoir_priority(self.seed, index);
        let key = (priority, index);
        if self.items.len() == self.capacity {
            let last = &self.items[self.capacity - 1];
            if key >= (last.0, last.1) {
                return;
            }
            self.items.pop();
        }
        let at = self.items.partition_point(|e| (e.0, e.1) < key);
        self.items.insert(at, (priority, index, item));
    }

    /// Merges another reservoir drawn with the same seed and capacity:
    /// the result is the bottom-`k` of the union.
    ///
    /// # Panics
    ///
    /// Panics when seeds or capacities differ.
    pub fn merge(&mut self, other: Reservoir<T>) {
        assert_eq!(self.seed, other.seed, "reservoir seeds differ");
        assert_eq!(self.capacity, other.capacity, "reservoir capacities differ");
        for (priority, index, item) in other.items {
            let key = (priority, index);
            if self.items.len() == self.capacity {
                let last = &self.items[self.capacity - 1];
                if key >= (last.0, last.1) {
                    continue;
                }
                self.items.pop();
            }
            let at = self.items.partition_point(|e| (e.0, e.1) < key);
            self.items.insert(at, (priority, index, item));
        }
    }

    /// The sampled items in ascending `(priority, index)` order — a
    /// canonical, order-independent presentation.
    pub fn items(&self) -> impl Iterator<Item = (u64, &T)> {
        self.items.iter().map(|(_, index, item)| (*index, item))
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the reservoir holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The sampling capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pass(samples: &[f64]) -> (f64, f64, f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let m2 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
        let m3 = samples.iter().map(|x| (x - mean).powi(3)).sum::<f64>();
        let m4 = samples.iter().map(|x| (x - mean).powi(4)).sum::<f64>();
        (mean, m2, m3, m4)
    }

    fn close(a: f64, b: f64) {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!((a - b).abs() <= 1e-12 * scale, "{a} vs {b}");
    }

    #[test]
    fn moments_match_two_pass_on_small_n() {
        let samples: Vec<f64> = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = Moments::new();
        for &x in &samples {
            m.push(x);
        }
        let (mean, m2, _m3, _m4) = two_pass(&samples);
        close(m.mean(), mean);
        close(m.variance(), m2 / (samples.len() - 1) as f64);
        // Known values for this classic sample.
        close(m.mean(), 5.0);
        close(m.variance(), 32.0 / 7.0);
    }

    #[test]
    fn merged_moments_match_two_pass_within_documented_tolerance() {
        // Integer-valued data split into uneven chunks: the pairwise
        // merge must agree with the exact two-pass computation to the
        // documented ≤ 1e-12 relative bound (≈ a few ulps).
        let samples: Vec<f64> = (0..97).map(|i| ((i * 37) % 23) as f64 - 7.0).collect();
        let mut merged = Moments::new();
        for chunk in samples.chunks(13) {
            let mut part = Moments::new();
            for &x in chunk {
                part.push(x);
            }
            merged.merge(&part);
        }
        let (mean, m2, m3, m4) = two_pass(&samples);
        let n = samples.len() as f64;
        close(merged.mean(), mean);
        close(merged.variance(), m2 / (n - 1.0));
        close(merged.skewness(), n.sqrt() * m3 / m2.powf(1.5));
        close(merged.kurtosis(), n * m4 / (m2 * m2) - 3.0);
        assert_eq!(merged.count(), 97);
    }

    #[test]
    fn moments_merge_with_empty_is_identity() {
        let mut a = Moments::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&Moments::new());
        assert_eq!(a, before);
        let mut empty = Moments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn skew_and_kurtosis_signs() {
        let mut right_skewed = Moments::new();
        for &x in &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 10.0] {
            right_skewed.push(x);
        }
        assert!(right_skewed.skewness() > 0.5);
        let mut uniformish = Moments::new();
        for i in 0..1000 {
            uniformish.push(i as f64);
        }
        // A uniform distribution has excess kurtosis −1.2.
        assert!((uniformish.kurtosis() + 1.2).abs() < 0.01);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        // Property over a deterministic pseudo-random sample split three
        // ways: (a⊕b)⊕c == a⊕(b⊕c) == (c⊕a)⊕b, exactly.
        let mut rng = crate::rng::Rng::seed_from_u64(99);
        let parts: Vec<FixedHistogram> = (0..3)
            .map(|_| {
                let mut h = FixedHistogram::new(0.0, 1.0, 16);
                for _ in 0..500 {
                    h.record(rng.gen_f64() * 1.2 - 0.1);
                }
                h
            })
            .collect();
        let merge_all = |order: &[usize]| {
            let mut acc = parts[order[0]].clone();
            acc.merge(&parts[order[1]]);
            acc.merge(&parts[order[2]]);
            acc
        };
        let abc = merge_all(&[0, 1, 2]);
        // a ⊕ (b ⊕ c)
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut a_bc = parts[0].clone();
        a_bc.merge(&bc);
        assert_eq!(abc, a_bc);
        assert_eq!(abc, merge_all(&[2, 0, 1]));
        assert_eq!(abc, merge_all(&[1, 2, 0]));
        assert_eq!(abc.total(), 1500);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = FixedHistogram::new(0.0, 1.0, 4);
        h.record(-0.01); // underflow
        h.record(0.0);
        h.record(0.24);
        h.record(0.25);
        h.record(0.999);
        h.record(1.0); // overflow (hi-exclusive)
        h.record(f64::NAN); // counted as underflow, never panics
        assert_eq!(h.counts(), &[2, 1, 0, 1]);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_lo(1), 0.25);
        assert_eq!(h.bin_hi(3), 1.0);
    }

    #[test]
    #[should_panic(expected = "differing bin configurations")]
    fn histogram_merge_rejects_mismatched_bins() {
        let mut a = FixedHistogram::new(0.0, 1.0, 4);
        let b = FixedHistogram::new(0.0, 1.0, 8);
        a.merge(&b);
    }

    #[test]
    fn reservoir_is_a_pure_function_of_the_index_set() {
        // Offer the same indices in three different orders/chunkings;
        // the sampled (index, item) sets must be identical.
        let indices: Vec<u64> = (0..1000).collect();
        let sequential = {
            let mut r = Reservoir::new(7, 16);
            for &i in &indices {
                r.offer(i, i * 3);
            }
            r
        };
        let reversed = {
            let mut r = Reservoir::new(7, 16);
            for &i in indices.iter().rev() {
                r.offer(i, i * 3);
            }
            r
        };
        assert_eq!(sequential, reversed);
        // Chunked + merged out of order (the parallel-fold shape).
        let chunked = {
            let parts: Vec<Reservoir<u64>> = indices
                .chunks(137)
                .map(|chunk| {
                    let mut r = Reservoir::new(7, 16);
                    for &i in chunk {
                        r.offer(i, i * 3);
                    }
                    r
                })
                .collect();
            let mut acc = Reservoir::new(7, 16);
            for part in parts.into_iter().rev() {
                acc.merge(part);
            }
            acc
        };
        assert_eq!(sequential, chunked);
        assert_eq!(sequential.len(), 16);
        for (index, item) in sequential.items() {
            assert_eq!(*item, index * 3);
        }
    }

    #[test]
    fn reservoir_keeps_everything_below_capacity() {
        let mut r = Reservoir::new(3, 100);
        for i in 0..10 {
            r.offer(i, ());
        }
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
        assert_eq!(r.capacity(), 100);
        let got: Vec<u64> = r.items().map(|(i, _)| i).collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_select_different_samples() {
        let fill = |seed| {
            let mut r = Reservoir::new(seed, 8);
            for i in 0..500 {
                r.offer(i, ());
            }
            let mut v: Vec<u64> = r.items().map(|(i, _)| i).collect();
            v.sort_unstable();
            v
        };
        assert_ne!(fill(1), fill(2));
    }

    #[test]
    #[should_panic(expected = "seeds differ")]
    fn reservoir_merge_rejects_mismatched_seeds() {
        let mut a: Reservoir<()> = Reservoir::new(1, 4);
        let b: Reservoir<()> = Reservoir::new(2, 4);
        a.merge(b);
    }
}
