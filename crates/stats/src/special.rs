//! Special functions needed for NIST SP 800-22 p-values.
//!
//! Implemented from scratch: log-gamma (Lanczos approximation), the
//! regularized incomplete gamma functions `P(a, x)` / `Q(a, x)` (series
//! and continued-fraction forms), the complementary error function, and
//! the standard normal CDF.

/// Natural log of the gamma function, Lanczos approximation (g = 7,
/// n = 9); accurate to ~15 significant digits for positive arguments.
///
/// # Panics
///
/// Panics for non-positive `x`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x > 0");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// # Panics
///
/// Panics for `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)` — the
/// `igamc` of the NIST test suite.
///
/// # Panics
///
/// Panics for `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction (modified Lentz) for `Q(a, x)`, `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Complementary error function, `erfc(x) = 2/√π ∫ₓ^∞ e^{-t²} dt`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        2.0 - gamma_q(0.5, x * x)
    }
}

/// Error function.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal cumulative distribution function Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9), refined with one Newton step.
///
/// # Panics
///
/// Panics for `p` outside the open interval `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile domain: 0 < p < 1");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Newton refinement using the forward CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Evaluates `out[i] = args[i].exp()` over a whole slice.
///
/// This is the batching seam the simulator's leakage kernel evaluates
/// decay exponentials through: callers fill an operand buffer, then
/// hand the slice over in one call instead of interleaving `exp` with
/// per-column bookkeeping. Inside, each lane is still libm's scalar
/// `exp` — every consumer pins its outputs bit-for-bit to libm results
/// (a range-reduced vector polynomial would be faster but would drift
/// the last ulp, which the byte-identity golden gate forbids) — but the
/// straight-line loop lets the compiler unroll and schedule the calls
/// without the caller's control flow in between.
///
/// # Panics
///
/// Panics when `args` and `out` have different lengths.
pub fn exp_batch(args: &[f64], out: &mut [f64]) {
    assert_eq!(args.len(), out.len(), "exp_batch slice length mismatch");
    for (v, &x) in out.iter_mut().zip(args) {
        *v = x.exp();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-12); // Γ(5) = 4!
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Half-integer: Γ(3.5) = 15/8 √π.
        close(
            ln_gamma(3.5),
            (15.0 / 8.0 * std::f64::consts::PI.sqrt()).ln(),
            1e-12,
        );
    }

    #[test]
    fn incomplete_gamma_special_cases() {
        // Q(1, x) = e^{-x}.
        for x in [0.1, 1.0, 3.0, 10.0] {
            close(gamma_q(1.0, x), (-x).exp(), 1e-12);
        }
        // Q(2, x) = e^{-x} (1 + x).
        for x in [0.5, 2.0, 8.0] {
            close(gamma_q(2.0, x), (-x).exp() * (1.0 + x), 1e-12);
        }
        // P + Q = 1.
        for (a, x) in [(0.5, 0.3), (3.0, 2.0), (10.0, 14.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_boundaries() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
        // Monotone in x.
        assert!(gamma_p(3.0, 1.0) < gamma_p(3.0, 2.0));
    }

    #[test]
    fn erfc_known_values() {
        close(erfc(0.0), 1.0, 1e-14);
        close(erfc(1.0), 0.157_299_207_050_285, 1e-12);
        close(erfc(2.0), 0.004_677_734_981_063_1, 1e-12);
        close(erfc(-1.0), 2.0 - 0.157_299_207_050_285, 1e-12);
        close(erf(0.5), 0.520_499_877_813_047, 1e-12);
    }

    #[test]
    fn normal_cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 1e-14);
        close(normal_cdf(1.96), 0.975_002_104_851_78, 1e-9);
        close(normal_cdf(-1.0), 0.158_655_253_931_457, 1e-11);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            close(normal_cdf(x), p, 1e-10);
        }
        close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-8);
    }

    #[test]
    fn exp_batch_is_bit_identical_to_scalar_exp() {
        // The leakage kernel's byte-identity gate rides on this: the
        // batched form must reproduce libm's exp to the last bit across
        // the full argument range it sees (tiny decays, deep decays,
        // underflow-to-zero, and the ±0 edge).
        let mut args: Vec<f64> = vec![0.0, -0.0, -1e-18, -745.2, -1000.0, 1.0, 88.0];
        let mut state = 0x1234_5678u64;
        for _ in 0..4096 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let mag = ((state >> 11) as f64 / (1u64 << 53) as f64) * 700.0;
            args.push(-mag);
        }
        let mut out = vec![0.0f64; args.len()];
        exp_batch(&args, &mut out);
        for (&x, &v) in args.iter().zip(&out) {
            assert_eq!(v.to_bits(), x.exp().to_bits(), "exp({x})");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn exp_batch_rejects_mismatched_slices() {
        let mut out = [0.0f64; 2];
        exp_batch(&[1.0, 2.0, 3.0], &mut out);
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn quantile_rejects_one() {
        let _ = normal_quantile(1.0);
    }
}
