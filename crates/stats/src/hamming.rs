//! Hamming-distance analysis for PUF evaluation.
//!
//! The paper's Fig. 11/12 metric is the *normalized Hamming distance*:
//! the number of differing bits between two responses divided by the
//! response length. *Intra-HD* compares responses of the same device to
//! the same challenge (ideal: 0); *Inter-HD* compares responses of
//! different devices (ideal: 0.5).

use crate::bits::BitVec;
use crate::summary::Summary;

/// Normalized Hamming distance between two equal-length responses.
///
/// # Panics
///
/// Panics when lengths differ or the responses are empty.
pub fn normalized_distance(a: &BitVec, b: &BitVec) -> f64 {
    assert!(!a.is_empty(), "empty response");
    a.hamming_distance(b) as f64 / a.len() as f64
}

/// Intra-/Inter-HD statistics over a set of devices.
#[derive(Debug, Clone, PartialEq)]
pub struct HdReport {
    /// All pairwise intra-device distances.
    pub intra: Vec<f64>,
    /// All pairwise inter-device distances.
    pub inter: Vec<f64>,
}

impl HdReport {
    /// Computes the report from per-device response sets:
    /// `responses[d][r]` is response `r` of device `d` (all to the same
    /// challenge, all the same length).
    pub fn from_responses(responses: &[Vec<BitVec>]) -> Self {
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for (d, device) in responses.iter().enumerate() {
            for i in 0..device.len() {
                for j in (i + 1)..device.len() {
                    intra.push(normalized_distance(&device[i], &device[j]));
                }
            }
            for other in responses.iter().skip(d + 1) {
                for a in device {
                    for b in other {
                        inter.push(normalized_distance(a, b));
                    }
                }
            }
        }
        HdReport { intra, inter }
    }

    /// Maximum intra-HD observed (0.0 when no pairs exist).
    pub fn max_intra(&self) -> f64 {
        self.intra.iter().copied().fold(0.0, f64::max)
    }

    /// Minimum inter-HD observed (1.0 when no pairs exist).
    pub fn min_inter(&self) -> f64 {
        self.inter.iter().copied().fold(1.0, f64::min)
    }

    /// Whether the identification gap exists: every intra-HD is strictly
    /// below every inter-HD — the property that makes the PUF usable for
    /// authentication.
    pub fn separated(&self) -> bool {
        !self.intra.is_empty() && !self.inter.is_empty() && self.max_intra() < self.min_inter()
    }

    /// Summary statistics of the intra-HD distribution.
    pub fn intra_summary(&self) -> Summary {
        Summary::of(&self.intra)
    }

    /// Summary statistics of the inter-HD distribution.
    pub fn inter_summary(&self) -> Summary {
        Summary::of(&self.inter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(pattern: u64, len: usize) -> BitVec {
        (0..len).map(|i| (pattern >> (i % 64)) & 1 == 1).collect()
    }

    #[test]
    fn normalized_distance_basics() {
        let a = BitVec::from_bools(&[true, true, false, false]);
        let b = BitVec::from_bools(&[true, false, true, false]);
        assert!((normalized_distance(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(normalized_distance(&a, &a), 0.0);
    }

    #[test]
    fn report_separates_good_puf() {
        // Two devices, three identical responses each, devices differ in
        // half their bits.
        let d0 = vec![response(0xAAAA, 64); 3];
        let d1 = vec![response(0xFFFF, 64); 3];
        let report = HdReport::from_responses(&[d0, d1]);
        assert_eq!(report.intra.len(), 3 + 3); // C(3,2) per device
        assert_eq!(report.inter.len(), 9);
        assert_eq!(report.max_intra(), 0.0);
        assert!(report.min_inter() > 0.0);
        assert!(report.separated());
    }

    #[test]
    fn report_detects_unreliable_puf() {
        // Device 0's responses disagree more than the devices differ.
        let d0 = vec![response(0x0, 16), response(0xFFFF, 16)];
        let d1 = vec![response(0x1, 16)];
        let report = HdReport::from_responses(&[d0, d1]);
        assert!(!report.separated());
    }

    #[test]
    fn empty_groups_not_separated() {
        let report = HdReport::from_responses(&[]);
        assert!(!report.separated());
    }

    #[test]
    fn summaries_expose_distributions() {
        let d0 = vec![response(0, 32), response(0, 32)];
        let d1 = vec![response(u64::MAX, 32)];
        let report = HdReport::from_responses(&[d0, d1]);
        assert_eq!(report.intra_summary().mean, 0.0);
        assert!((report.inter_summary().mean - 1.0).abs() < 1e-12);
    }
}
