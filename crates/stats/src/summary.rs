//! Summary statistics: mean, deviation, extrema, quantiles, confidence
//! intervals — the numbers under the paper's figures.

/// Basic descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 when n < 2).
    pub std_dev: f64,
    /// Minimum (0 for empty samples).
    pub min: f64,
    /// Maximum (0 for empty samples).
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Half-width of the 95 % normal-approximation confidence interval of
    /// the mean (the shaded bands of Fig. 9).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.n as f64).sqrt()
    }
}

/// Empirical quantile with linear interpolation; `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics on an empty sample or a `q` outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Empirical cumulative distribution function evaluated at each of the
/// given thresholds: fraction of samples ≤ threshold.
pub fn ecdf(samples: &[f64], thresholds: &[f64]) -> Vec<f64> {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    thresholds
        .iter()
        .map(|&t| {
            let count = sorted.partition_point(|&x| x <= t);
            count as f64 / sorted.len().max(1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with Bessel correction: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_empty_and_single() {
        assert_eq!(Summary::of(&[]).n, 0);
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::of(&[0.0, 1.0, 0.0, 1.0]);
        let big = Summary::of(&[0.0, 1.0].repeat(100));
        assert!(big.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 5.0);
        assert_eq!(quantile(&data, 0.5), 3.0);
        assert!((quantile(&data, 0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_steps() {
        let data = [1.0, 2.0, 2.0, 3.0];
        let cdf = ecdf(&data, &[0.5, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf, vec![0.0, 0.25, 0.75, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }
}
