//! Known-answer tests against the worked examples printed in the NIST
//! SP 800-22 specification (rev. 1a). Each expected p-value below is
//! the number the spec derives by hand for a tiny input; our
//! implementations must hit them to the spec's own rounding.

use fracdram_stats::bits::BitVec;
use fracdram_stats::nist;

fn bits(s: &str) -> BitVec {
    s.chars()
        .filter(|c| !c.is_whitespace())
        .map(|c| c == '1')
        .collect()
}

/// §2.1.8: ε = 1011010101, n = 10 → S = 2, P-value = 0.527089.
///
/// The public API gates on n ≥ 100, so the statistic is checked through
/// the same erfc path with the spec's numbers.
#[test]
fn frequency_spec_example() {
    // s_obs = |2*6 - 10| / sqrt(10); p = erfc(s_obs / sqrt(2))
    let s_obs = 2.0f64 / 10f64.sqrt();
    let p = fracdram_stats::special::erfc(s_obs / std::f64::consts::SQRT_2);
    assert!((p - 0.527089).abs() < 1e-4, "p = {p}");
}

/// §2.2.8: ε = 0110011010, M = 3 → χ² = 1, P-value = 0.801252.
#[test]
fn block_frequency_spec_example() {
    // chi2 = 4*3*((2/3-1/2)^2 + (1/3-1/2)^2 + (2/3-1/2)^2) = 1
    let p = fracdram_stats::special::gamma_q(3.0 / 2.0, 1.0 / 2.0);
    assert!((p - 0.801252).abs() < 1e-4, "p = {p}");
}

/// §2.3.8: ε = 1001101011, n = 10 → V = 7, P-value = 0.147232.
#[test]
fn runs_spec_example() {
    // pi = 6/10; v_obs = 7
    let n = 10.0f64;
    let pi = 0.6;
    let v_obs = 7.0;
    let num = (v_obs - 2.0 * n * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    let p = fracdram_stats::special::erfc(num / den);
    assert!((p - 0.147232).abs() < 1e-4, "p = {p}");
}

/// §2.13.8: ε = 1011010111 → z = 4 (forward), P-value = 0.4116588 —
/// checked at the kernel level in the crate's unit tests. Here the
/// public API's saturation property: an alternating sequence has
/// maximal cusum p-values (its excursion never exceeds 1).
#[test]
fn cusum_alternating_has_tiny_excursion() {
    let stream: BitVec = (0..100_000).map(|i| i % 2 == 0).collect();
    let r = nist::cumulative_sums(&stream);
    assert!(r.applicable);
    assert!(r.p_values.iter().all(|&p| p > 0.99), "{:?}", r.p_values);
}

/// §2.11-shaped check: a strongly periodic stream drives both serial
/// p-values to ~0 at m = 3.
#[test]
fn serial_periodic_is_rejected() {
    let base = "0011011101";
    let s: String = base.chars().cycle().take(1_000).collect();
    let r = nist::serial(&bits(&s), 3);
    assert!(r.applicable);
    assert!(r.p_values.iter().all(|&p| p < 1e-6), "{:?}", r.p_values);
}

/// §2.10.8 pins L = 4 for ε = 1101011110001 (crate unit test); here the
/// Berlekamp–Massey kernel must recover a maximal LFSR's register
/// length from twice its order.
#[test]
fn berlekamp_massey_recovers_lfsr_order() {
    // 5-stage maximal LFSR x^5 + x^2 + 1, period 31.
    let mut state = 0b10101u32;
    let mut seq = Vec::new();
    for _ in 0..62 {
        let bit = state & 1;
        let fb = (state ^ (state >> 2)) & 1;
        state = (state >> 1) | (fb << 4);
        seq.push(bit == 1);
    }
    assert_eq!(nist::berlekamp_massey(&seq), 5);
}

/// §2.4 analytic anchor: a 10000-bit stream whose longest run of ones
/// is exactly 1 everywhere (isolated ones) piles every block into the
/// lowest longest-run class, which the χ² must reject outright, while
/// good randomness passes.
#[test]
fn longest_run_extremes() {
    let isolated: BitVec = (0..10_000).map(|i| i % 3 == 0).collect();
    let r = nist::longest_run_of_ones(&isolated);
    assert!(r.applicable);
    assert!(r.p_values[0] < 1e-12, "{:?}", r.p_values);

    let good: BitVec = (0..10_000u32)
        .map(|i| {
            let mut z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (z >> 17) & 1 == 1
        })
        .collect();
    assert!(nist::longest_run_of_ones(&good).passed());
}

/// §2.5 binary matrix rank on a known-degenerate input: an all-zero
/// stream has rank 0 everywhere and must fail hard.
#[test]
fn rank_rejects_degenerate_input() {
    let r = nist::binary_matrix_rank(&BitVec::zeros(40_000));
    assert!(r.applicable);
    assert!(r.p_values[0] < 1e-12);
}
