//! Command traces and cycle accounting.
//!
//! The paper's efficiency claims are cycle counts ("F-MAJ takes only 29 %
//! more memory cycles than the original MAJ3", "a Frac operation only
//! consists of two memory commands — 7 memory cycles"). [`CycleStats`]
//! gives the always-on counters that reproduce those numbers; the full
//! [`CommandTrace`] is opt-in because PUF-scale experiments issue millions
//! of commands.

use std::fmt;

use crate::command::DramCommand;

/// One trace entry: a command and the cycle it issued at.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Absolute issue cycle.
    pub cycle: u64,
    /// The issued command.
    pub command: DramCommand,
}

/// A recorded command trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommandTrace {
    entries: Vec<TraceEntry>,
}

impl CommandTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        CommandTrace::default()
    }

    /// Records a command issue.
    pub fn record(&mut self, cycle: u64, command: DramCommand) {
        self.entries.push(TraceEntry { cycle, command });
    }

    /// The recorded entries, in issue order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for CommandTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{:>10}  {}", e.cycle, e.command)?;
        }
        Ok(())
    }
}

/// Always-on cheap counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Total commands issued (including NOPs).
    pub commands: u64,
    /// ACTIVATE count.
    pub activates: u64,
    /// PRECHARGE count.
    pub precharges: u64,
    /// READ count.
    pub reads: u64,
    /// WRITE count.
    pub writes: u64,
    /// REFRESH count.
    pub refreshes: u64,
}

impl CycleStats {
    /// Records one command into the counters.
    pub fn record(&mut self, command: &DramCommand) {
        self.commands += 1;
        match command {
            DramCommand::Activate(_) => self.activates += 1,
            DramCommand::Precharge { .. } => self.precharges += 1,
            DramCommand::Read { .. } => self.reads += 1,
            DramCommand::Write { .. } => self.writes += 1,
            DramCommand::Refresh { .. } => self.refreshes += 1,
            DramCommand::Nop => {}
        }
    }

    /// Accumulates another counter set into this one — how a parallel
    /// experiment fleet folds the per-controller counters of many
    /// independent tasks into one run-wide total.
    pub fn accumulate(&mut self, other: &CycleStats) {
        self.commands += other.commands;
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
    }

    /// Difference between two snapshots (`later - self`).
    pub fn delta(&self, later: &CycleStats) -> CycleStats {
        CycleStats {
            commands: later.commands - self.commands,
            activates: later.activates - self.activates,
            precharges: later.precharges - self.precharges,
            reads: later.reads - self.reads,
            writes: later.writes - self.writes,
            refreshes: later.refreshes - self.refreshes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::RowAddr;

    #[test]
    fn trace_records_in_order() {
        let mut t = CommandTrace::new();
        t.record(5, DramCommand::Activate(RowAddr::new(0, 1)));
        t.record(6, DramCommand::Precharge { bank: 0 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].cycle, 5);
        assert_eq!(t.entries()[1].command.mnemonic(), "PRE");
    }

    #[test]
    fn stats_count_by_kind() {
        let mut s = CycleStats::default();
        s.record(&DramCommand::Activate(RowAddr::new(0, 0)));
        s.record(&DramCommand::Activate(RowAddr::new(0, 1)));
        s.record(&DramCommand::Nop);
        s.record(&DramCommand::Read { bank: 0 });
        assert_eq!(s.commands, 4);
        assert_eq!(s.activates, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.precharges, 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = CycleStats::default();
        a.record(&DramCommand::Read { bank: 0 });
        let mut b = CycleStats::default();
        b.record(&DramCommand::Activate(RowAddr::new(0, 0)));
        b.record(&DramCommand::Read { bank: 1 });
        a.accumulate(&b);
        assert_eq!(a.commands, 3);
        assert_eq!(a.reads, 2);
        assert_eq!(a.activates, 1);
    }

    #[test]
    fn stats_delta() {
        let mut s = CycleStats::default();
        s.record(&DramCommand::Nop);
        let snap = s;
        s.record(&DramCommand::Read { bank: 1 });
        s.record(&DramCommand::Read { bank: 1 });
        let d = snap.delta(&s);
        assert_eq!(d.commands, 2);
        assert_eq!(d.reads, 2);
    }

    #[test]
    fn trace_display_lists_lines() {
        let mut t = CommandTrace::new();
        t.record(1, DramCommand::Nop);
        let s = t.to_string();
        assert!(s.contains("NOP"));
        assert!(s.trim_end().lines().count() == 1);
    }
}
