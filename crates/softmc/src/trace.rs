//! Command traces and cycle accounting.
//!
//! The paper's efficiency claims are cycle counts ("F-MAJ takes only 29 %
//! more memory cycles than the original MAJ3", "a Frac operation only
//! consists of two memory commands — 7 memory cycles"). [`CycleStats`]
//! gives the always-on counters that reproduce those numbers; the full
//! [`CommandTrace`] is opt-in because PUF-scale experiments issue millions
//! of commands.
//!
//! Trace entries record a [`TraceOp`] — a `Copy` summary of the command
//! (kind plus small scalar operands; a WRITE records its column range,
//! not the payload) — so recording never clones a command or allocates.

use std::fmt;

use crate::command::{CommandKind, DramCommand};

/// Compact, `Copy` record of one issued command. A WRITE keeps only its
/// column range (`start_col`, `len`); the payload data is not traced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Command discriminant.
    pub kind: CommandKind,
    /// Target bank (0 for NOP).
    pub bank: u32,
    /// Target row (ACTIVATE only).
    pub row: u32,
    /// First written column (WRITE only).
    pub start_col: u32,
    /// Written column count (WRITE only).
    pub len: u32,
}

impl TraceOp {
    /// Summarizes a full command into its trace record.
    pub fn from_command(command: &DramCommand) -> Self {
        let mut op = TraceOp {
            kind: command.kind(),
            bank: command.bank().unwrap_or(0) as u32,
            row: 0,
            start_col: 0,
            len: 0,
        };
        match command {
            DramCommand::Activate(addr) => op.row = addr.row as u32,
            DramCommand::Write {
                start_col, bits, ..
            } => {
                op.start_col = *start_col as u32;
                op.len = bits.len() as u32;
            }
            _ => {}
        }
        op
    }

    /// Short mnemonic, as used in command traces.
    pub fn mnemonic(&self) -> &'static str {
        self.kind.mnemonic()
    }

    /// The bank the command addressed, if any.
    pub fn bank(&self) -> Option<usize> {
        match self.kind {
            CommandKind::Nop => None,
            _ => Some(self.bank as usize),
        }
    }
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Renders exactly like the `DramCommand` it summarizes.
        match self.kind {
            CommandKind::Activate => write!(f, "ACT({}, {})", self.bank, self.row),
            CommandKind::Precharge => write!(f, "PRE({})", self.bank),
            CommandKind::Read => write!(f, "RD({})", self.bank),
            CommandKind::Write => write!(f, "WR({}, {}+{})", self.bank, self.start_col, self.len),
            CommandKind::Refresh => write!(f, "REF({})", self.bank),
            CommandKind::Nop => write!(f, "NOP"),
        }
    }
}

/// One trace entry: a command summary and the cycle it issued at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Absolute issue cycle.
    pub cycle: u64,
    /// The issued command.
    pub op: TraceOp,
}

/// A recorded command trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommandTrace {
    entries: Vec<TraceEntry>,
}

impl CommandTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        CommandTrace::default()
    }

    /// Records a command issue.
    pub fn record(&mut self, cycle: u64, op: TraceOp) {
        self.entries.push(TraceEntry { cycle, op });
    }

    /// The recorded entries, in issue order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for CommandTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{:>10}  {}", e.cycle, e.op)?;
        }
        Ok(())
    }
}

/// Always-on cheap counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Total commands issued (including NOPs).
    pub commands: u64,
    /// ACTIVATE count.
    pub activates: u64,
    /// PRECHARGE count.
    pub precharges: u64,
    /// READ count.
    pub reads: u64,
    /// WRITE count.
    pub writes: u64,
    /// REFRESH count.
    pub refreshes: u64,
}

impl CycleStats {
    /// Records one command into the counters.
    pub fn record(&mut self, command: &DramCommand) {
        self.record_kind(command.kind());
    }

    /// Records one command by kind (no operands needed).
    pub fn record_kind(&mut self, kind: CommandKind) {
        self.commands += 1;
        match kind {
            CommandKind::Activate => self.activates += 1,
            CommandKind::Precharge => self.precharges += 1,
            CommandKind::Read => self.reads += 1,
            CommandKind::Write => self.writes += 1,
            CommandKind::Refresh => self.refreshes += 1,
            CommandKind::Nop => {}
        }
    }

    /// Accumulates another counter set into this one — how a parallel
    /// experiment fleet folds the per-controller counters of many
    /// independent tasks into one run-wide total.
    pub fn accumulate(&mut self, other: &CycleStats) {
        self.commands += other.commands;
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
    }

    /// Difference between two snapshots (`later - self`).
    pub fn delta(&self, later: &CycleStats) -> CycleStats {
        CycleStats {
            commands: later.commands - self.commands,
            activates: later.activates - self.activates,
            precharges: later.precharges - self.precharges,
            reads: later.reads - self.reads,
            writes: later.writes - self.writes,
            refreshes: later.refreshes - self.refreshes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::RowAddr;

    #[test]
    fn trace_records_in_order() {
        let mut t = CommandTrace::new();
        t.record(
            5,
            TraceOp::from_command(&DramCommand::Activate(RowAddr::new(0, 1))),
        );
        t.record(
            6,
            TraceOp::from_command(&DramCommand::Precharge { bank: 0 }),
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].cycle, 5);
        assert_eq!(t.entries()[1].op.mnemonic(), "PRE");
    }

    #[test]
    fn trace_op_renders_like_the_command() {
        let cmds = [
            DramCommand::Activate(RowAddr::new(1, 8)),
            DramCommand::Precharge { bank: 2 },
            DramCommand::Read { bank: 3 },
            DramCommand::Write {
                bank: 0,
                start_col: 16,
                bits: vec![true; 4],
            },
            DramCommand::Refresh { bank: 1 },
            DramCommand::Nop,
        ];
        for cmd in &cmds {
            let op = TraceOp::from_command(cmd);
            assert_eq!(op.to_string(), cmd.to_string());
            assert_eq!(op.mnemonic(), cmd.mnemonic());
            assert_eq!(op.bank(), cmd.bank());
        }
    }

    #[test]
    fn stats_count_by_kind() {
        let mut s = CycleStats::default();
        s.record(&DramCommand::Activate(RowAddr::new(0, 0)));
        s.record(&DramCommand::Activate(RowAddr::new(0, 1)));
        s.record(&DramCommand::Nop);
        s.record(&DramCommand::Read { bank: 0 });
        assert_eq!(s.commands, 4);
        assert_eq!(s.activates, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.precharges, 0);
    }

    #[test]
    fn record_kind_matches_record() {
        let mut by_cmd = CycleStats::default();
        let mut by_kind = CycleStats::default();
        let cmds = [
            DramCommand::Activate(RowAddr::new(0, 0)),
            DramCommand::Write {
                bank: 0,
                start_col: 0,
                bits: vec![true],
            },
            DramCommand::Precharge { bank: 0 },
            DramCommand::Nop,
        ];
        for cmd in &cmds {
            by_cmd.record(cmd);
            by_kind.record_kind(cmd.kind());
        }
        assert_eq!(by_cmd, by_kind);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = CycleStats::default();
        a.record(&DramCommand::Read { bank: 0 });
        let mut b = CycleStats::default();
        b.record(&DramCommand::Activate(RowAddr::new(0, 0)));
        b.record(&DramCommand::Read { bank: 1 });
        a.accumulate(&b);
        assert_eq!(a.commands, 3);
        assert_eq!(a.reads, 2);
        assert_eq!(a.activates, 1);
    }

    #[test]
    fn stats_delta() {
        let mut s = CycleStats::default();
        s.record(&DramCommand::Nop);
        let snap = s;
        s.record(&DramCommand::Read { bank: 1 });
        s.record(&DramCommand::Read { bank: 1 });
        let d = snap.delta(&s);
        assert_eq!(d.commands, 2);
        assert_eq!(d.reads, 2);
    }

    #[test]
    fn trace_display_lists_lines() {
        let mut t = CommandTrace::new();
        t.record(1, TraceOp::from_command(&DramCommand::Nop));
        let s = t.to_string();
        assert!(s.contains("NOP"));
        assert!(s.trim_end().lines().count() == 1);
    }
}
