//! DRAM command encoding.
//!
//! These are the commands the (simulated) memory controller can place on
//! the command bus. Following SoftMC, the controller will issue *any*
//! sequence with *any* timing — JEDEC compliance is checked separately
//! and deliberately violable (that is the entire point of FracDRAM).

use std::fmt;

use fracdram_model::RowAddr;

/// One DRAM command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramCommand {
    /// Open a row: raise its word-line and (nominally) sense it.
    Activate(RowAddr),
    /// Close all open rows in a bank and equalize its bit-lines.
    Precharge {
        /// Target bank.
        bank: usize,
    },
    /// Read the full row buffer of a bank's open row.
    Read {
        /// Target bank.
        bank: usize,
    },
    /// Write bits through the sense amplifiers, starting at a column.
    Write {
        /// Target bank.
        bank: usize,
        /// First column written.
        start_col: usize,
        /// The data (one bool per column).
        bits: Vec<bool>,
    },
    /// Refresh every row of a bank.
    Refresh {
        /// Target bank.
        bank: usize,
    },
    /// No operation (consumes one command-bus cycle).
    Nop,
}

/// The discriminant of a [`DramCommand`]: what kind of command it is,
/// without the operands. `Copy`-cheap, used by the compiled instruction
/// stream and the always-on cycle counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// ACTIVATE.
    Activate,
    /// PRECHARGE.
    Precharge,
    /// READ.
    Read,
    /// WRITE.
    Write,
    /// REFRESH.
    Refresh,
    /// NOP.
    Nop,
}

impl CommandKind {
    /// Short mnemonic, as used in command traces.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CommandKind::Activate => "ACT",
            CommandKind::Precharge => "PRE",
            CommandKind::Read => "RD",
            CommandKind::Write => "WR",
            CommandKind::Refresh => "REF",
            CommandKind::Nop => "NOP",
        }
    }
}

impl DramCommand {
    /// The command's kind (discriminant without operands).
    pub fn kind(&self) -> CommandKind {
        match self {
            DramCommand::Activate(_) => CommandKind::Activate,
            DramCommand::Precharge { .. } => CommandKind::Precharge,
            DramCommand::Read { .. } => CommandKind::Read,
            DramCommand::Write { .. } => CommandKind::Write,
            DramCommand::Refresh { .. } => CommandKind::Refresh,
            DramCommand::Nop => CommandKind::Nop,
        }
    }

    /// Short mnemonic, as used in command traces.
    pub fn mnemonic(&self) -> &'static str {
        self.kind().mnemonic()
    }

    /// The bank the command addresses, if any.
    pub fn bank(&self) -> Option<usize> {
        match self {
            DramCommand::Activate(addr) => Some(addr.bank),
            DramCommand::Precharge { bank }
            | DramCommand::Read { bank }
            | DramCommand::Write { bank, .. }
            | DramCommand::Refresh { bank } => Some(*bank),
            DramCommand::Nop => None,
        }
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramCommand::Activate(addr) => write!(f, "ACT({}, {})", addr.bank, addr.row),
            DramCommand::Precharge { bank } => write!(f, "PRE({bank})"),
            DramCommand::Read { bank } => write!(f, "RD({bank})"),
            DramCommand::Write {
                bank,
                start_col,
                bits,
            } => write!(f, "WR({bank}, {start_col}+{})", bits.len()),
            DramCommand::Refresh { bank } => write!(f, "REF({bank})"),
            DramCommand::Nop => write!(f, "NOP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics() {
        assert_eq!(DramCommand::Activate(RowAddr::new(0, 1)).mnemonic(), "ACT");
        assert_eq!(DramCommand::Precharge { bank: 0 }.mnemonic(), "PRE");
        assert_eq!(DramCommand::Nop.mnemonic(), "NOP");
    }

    #[test]
    fn bank_extraction() {
        assert_eq!(DramCommand::Activate(RowAddr::new(3, 1)).bank(), Some(3));
        assert_eq!(DramCommand::Refresh { bank: 2 }.bank(), Some(2));
        assert_eq!(DramCommand::Nop.bank(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            DramCommand::Activate(RowAddr::new(1, 8)).to_string(),
            "ACT(1, 8)"
        );
        assert_eq!(
            DramCommand::Write {
                bank: 0,
                start_col: 16,
                bits: vec![true; 4]
            }
            .to_string(),
            "WR(0, 16+4)"
        );
    }
}
