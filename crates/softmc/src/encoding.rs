//! Binary instruction encoding — the wire format between the host and
//! the controller.
//!
//! The real SoftMC receives programs over PCIe as fixed-width encoded
//! instructions; this module provides the equivalent for the simulated
//! platform so programs can be serialized, stored, diffed, and shipped.
//! Each instruction packs into one little-endian `u64`:
//!
//! ```text
//! bits 63..56  opcode
//! bits 55..40  idle cycles after the command (16 bits)
//! bits 39..24  row address          (ACT)
//! bits 23..16  bank address         (ACT / PRE / RD / WR / REF)
//! bits 15..0   payload length/index (WR: column offset)
//! ```
//!
//! WRITE data does not fit in one word; it follows the instruction as
//! `ceil(bits/64)` raw data words (LSB-first within each word), after a
//! length word. The format round-trips every [`Program`] exactly.

use fracdram_model::{Cycles, RowAddr};

use crate::command::DramCommand;
use crate::program::Program;

/// Opcodes of the wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Opcode {
    Nop = 0,
    Activate = 1,
    Precharge = 2,
    Read = 3,
    Write = 4,
    Refresh = 5,
}

/// Errors produced while decoding a program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// The image ended in the middle of an instruction's payload.
    Truncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::Truncated => write!(f, "program image ends mid-instruction"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn pack(op: Opcode, idle: u64, row: usize, bank: usize, aux: usize) -> u64 {
    debug_assert!(idle < (1 << 16), "idle gap too long to encode");
    debug_assert!(row < (1 << 16));
    debug_assert!(bank < (1 << 8));
    debug_assert!(aux < (1 << 16));
    ((op as u64) << 56)
        | ((idle & 0xFFFF) << 40)
        | ((row as u64 & 0xFFFF) << 24)
        | ((bank as u64 & 0xFF) << 16)
        | (aux as u64 & 0xFFFF)
}

/// Encodes a program into its wire image.
pub fn encode(program: &Program) -> Vec<u64> {
    let mut out = Vec::with_capacity(program.len() + 1);
    for inst in program.instructions() {
        let idle = inst.idle_after.value();
        match &inst.command {
            DramCommand::Nop => out.push(pack(Opcode::Nop, idle, 0, 0, 0)),
            DramCommand::Activate(addr) => {
                out.push(pack(Opcode::Activate, idle, addr.row, addr.bank, 0));
            }
            DramCommand::Precharge { bank } => {
                out.push(pack(Opcode::Precharge, idle, 0, *bank, 0));
            }
            DramCommand::Read { bank } => out.push(pack(Opcode::Read, idle, 0, *bank, 0)),
            DramCommand::Refresh { bank } => out.push(pack(Opcode::Refresh, idle, 0, *bank, 0)),
            DramCommand::Write {
                bank,
                start_col,
                bits,
            } => {
                out.push(pack(Opcode::Write, idle, 0, *bank, *start_col));
                out.push(bits.len() as u64);
                let mut word = 0u64;
                for (i, &bit) in bits.iter().enumerate() {
                    if bit {
                        word |= 1 << (i % 64);
                    }
                    if i % 64 == 63 {
                        out.push(word);
                        word = 0;
                    }
                }
                if bits.len() % 64 != 0 {
                    out.push(word);
                }
            }
        }
    }
    out
}

/// Decodes a wire image back into a program.
///
/// # Errors
///
/// Returns [`DecodeError`] for unknown opcodes or truncated payloads.
pub fn decode(image: &[u64]) -> Result<Program, DecodeError> {
    let mut program = Program::new();
    let mut i = 0;
    while i < image.len() {
        let word = image[i];
        i += 1;
        let op = (word >> 56) as u8;
        let idle = Cycles((word >> 40) & 0xFFFF);
        let row = ((word >> 24) & 0xFFFF) as usize;
        let bank = ((word >> 16) & 0xFF) as usize;
        let aux = (word & 0xFFFF) as usize;
        let command = match op {
            0 => DramCommand::Nop,
            1 => DramCommand::Activate(RowAddr::new(bank, row)),
            2 => DramCommand::Precharge { bank },
            3 => DramCommand::Read { bank },
            4 => {
                let len = *image.get(i).ok_or(DecodeError::Truncated)? as usize;
                i += 1;
                let words = len.div_ceil(64);
                if i + words > image.len() {
                    return Err(DecodeError::Truncated);
                }
                let mut bits = Vec::with_capacity(len);
                for b in 0..len {
                    bits.push((image[i + b / 64] >> (b % 64)) & 1 == 1);
                }
                i += words;
                DramCommand::Write {
                    bank,
                    start_col: aux,
                    bits,
                }
            }
            5 => DramCommand::Refresh { bank },
            other => return Err(DecodeError::BadOpcode(other)),
        };
        program.push(command, idle);
    }
    Ok(program)
}

/// Size of a program's wire image in bytes.
pub fn encoded_size(program: &Program) -> usize {
    encode(program).len() * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Instruction;

    fn instructions_eq(a: &Program, b: &Program) -> bool {
        if a.len() != b.len() {
            return false;
        }
        a.instructions()
            .iter()
            .zip(b.instructions())
            .all(|(x, y): (&Instruction, &Instruction)| {
                x.command == y.command && x.idle_after == y.idle_after
            })
    }

    #[test]
    fn command_only_roundtrip() {
        let p = Program::builder()
            .act(RowAddr::new(2, 300))
            .pre(2)
            .delay(5)
            .nop()
            .read(2)
            .refresh(1)
            .delay(100)
            .build();
        let image = encode(&p);
        assert_eq!(image.len(), 5);
        let q = decode(&image).unwrap();
        assert!(instructions_eq(&p, &q));
    }

    #[test]
    fn write_payload_roundtrip() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let p = Program::builder()
            .act(RowAddr::new(0, 7))
            .delay(10)
            .write_at(0, 64, bits)
            .delay(15)
            .pre(0)
            .build();
        let image = encode(&p);
        // ACT + (WR header + len + 3 data words) + PRE.
        assert_eq!(image.len(), 1 + 5 + 1);
        let q = decode(&image).unwrap();
        assert!(instructions_eq(&p, &q));
    }

    #[test]
    fn empty_and_exact_multiple_payloads() {
        for len in [0usize, 64, 128] {
            let p = Program::builder()
                .act(RowAddr::new(0, 0))
                .write(0, vec![true; len])
                .build();
            let q = decode(&encode(&p)).unwrap();
            assert!(instructions_eq(&p, &q), "len {len}");
        }
    }

    #[test]
    fn bad_opcode_is_rejected() {
        let err = decode(&[0xFFu64 << 56]).unwrap_err();
        assert!(matches!(err, DecodeError::BadOpcode(0xFF)));
        assert!(err.to_string().contains("0xff"));
    }

    #[test]
    fn truncated_write_is_rejected() {
        let p = Program::builder()
            .act(RowAddr::new(0, 0))
            .write(0, vec![true; 100])
            .build();
        let mut image = encode(&p);
        image.truncate(image.len() - 1);
        assert_eq!(decode(&image).unwrap_err(), DecodeError::Truncated);
        // Cutting the length word off too.
        let image2 = &encode(&p)[..2];
        assert_eq!(decode(image2).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn encoded_size_is_eight_bytes_per_word() {
        let p = Program::builder().act(RowAddr::new(0, 1)).pre(0).build();
        assert_eq!(encoded_size(&p), 16);
    }

    #[test]
    fn frac_program_image_is_compact() {
        // The 7-cycle Frac op ships as just two words — the property that
        // makes SoftMC-style experimentation practical.
        let p = Program::builder()
            .act(RowAddr::new(0, 3))
            .pre(0)
            .delay(5)
            .build();
        assert_eq!(encode(&p).len(), 2);
        let q = decode(&encode(&p)).unwrap();
        assert_eq!(q.total_cycles(), p.total_cycles());
    }
}
