//! The software-controlled memory controller.
//!
//! [`MemoryController`] mirrors the role SoftMC plays in the paper's
//! platform (Fig. 5): the host composes [`Program`]s — command sequences
//! with explicit cycle spacing — and the controller issues them to the
//! DRAM module cycle-accurately, *without* enforcing JEDEC timing. A
//! separate checker ([`MemoryController::check`]) reports which
//! constraints a program violates.
//!
//! It also provides conventional, legally timed data-movement helpers
//! ([`MemoryController::write_row`], [`MemoryController::read_row`]) so
//! higher layers only hand-roll programs for the out-of-spec primitives.

use std::collections::HashMap;
use std::sync::Arc;

use fracdram_model::snapshot::ModuleWriteSnapshot;
use fracdram_model::{BroadcastOp, Cycles, ModelPerf, Module, RowAddr, Seconds};

use crate::command::{CommandKind, DramCommand};
use crate::compiled::{program_hash, CompiledProgram};
use crate::error::{ControllerError, Result};
use crate::program::Program;
use crate::sched::{self, ScheduleEntry};
use crate::timing::{check_program, TimingParams, TimingViolation};
use crate::trace::{CommandTrace, CycleStats, TraceOp};

/// Read buffers the controller keeps for recycling (mirrors the trial
/// loops' `RowArena` cap).
const READ_POOL_CAP: usize = 8;

/// Combined observability snapshot of one controller: the command-bus
/// cycle counters and the device-model kernel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunMetrics {
    /// Command counters (ACT/PRE/RD/WR/REF issued).
    pub cycles: CycleStats,
    /// Sub-array kernel counters summed over every chip of the module.
    pub model: ModelPerf,
}

/// Result of executing one program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOutcome {
    /// Data returned by each READ in the program, in issue order.
    pub reads: Vec<Vec<bool>>,
    /// Cycle at which the program started.
    pub start_cycle: u64,
    /// Cycle after the program's last instruction (including its idle
    /// gap) completed.
    pub end_cycle: u64,
    /// Injected-fault events (sense flips, stuck-cell re-pins, decoder
    /// dropouts, excursion-shifted commands) observed during this run.
    /// Zero whenever no fault plan is installed.
    pub fault_events: u64,
}

impl RunOutcome {
    /// Total cycles the program occupied the command bus.
    pub fn cycles(&self) -> Cycles {
        Cycles(self.end_cycle - self.start_cycle)
    }

    /// Consumes the outcome and returns the data of its single READ.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::MissingReadData`] when the program
    /// issued no READ — a structural bug that previously surfaced as a
    /// silently empty row treated by per-column loops as width-0
    /// success.
    pub fn single_read(self) -> Result<Vec<bool>> {
        let got = self.reads.len();
        self.reads
            .into_iter()
            .next()
            .ok_or(ControllerError::MissingReadData { expected: 1, got })
    }
}

/// One cached full-row write prefix: the module state the write program
/// left behind plus the command offsets needed to rebase its trace and
/// clock effects onto a later anchor cycle.
#[derive(Debug, Clone)]
struct WriteCacheEntry {
    snap: ModuleWriteSnapshot,
    /// WRITE issue offset from the program start (ACT issues at 0).
    write_off: u64,
    /// PRECHARGE issue offset from the program start.
    pre_off: u64,
    /// Total bus cycles the program occupies.
    total_cycles: u64,
}

/// A cycle-accurate, violation-capable memory controller driving one
/// simulated DRAM module.
#[derive(Debug, Clone)]
pub struct MemoryController {
    module: Module,
    clock: u64,
    timing: TimingParams,
    stats: CycleStats,
    trace: Option<CommandTrace>,
    compiled: HashMap<u64, Arc<CompiledProgram>>,
    write_cache: HashMap<(usize, usize), WriteCacheEntry>,
    anti_masks: HashMap<(usize, usize), Arc<[bool]>>,
    prefix_cache: bool,
    cycle_budget: Option<u64>,
    intra_jobs: usize,
    sched: bool,
    read_pool: Vec<Vec<bool>>,
}

impl MemoryController {
    /// Takes control of a module. The clock starts at a non-zero cycle so
    /// that "time zero" artifacts cannot hide bugs.
    pub fn new(module: Module) -> Self {
        MemoryController {
            module,
            clock: 1_000,
            timing: TimingParams::default(),
            stats: CycleStats::default(),
            trace: None,
            compiled: HashMap::new(),
            write_cache: HashMap::new(),
            anti_masks: HashMap::new(),
            prefix_cache: true,
            cycle_budget: None,
            intra_jobs: 1,
            sched: true,
            read_pool: Vec::new(),
        }
    }

    /// Enables or disables the cross-bank scheduler (on by default).
    /// Disabled, [`MemoryController::run_scheduled`] degrades to a
    /// plain sequential `run` loop with no scheduler counters — the
    /// `--sched off` escape hatch. Execution is byte-identical either
    /// way (see `run_scheduled`); only the counters move.
    pub fn set_sched(&mut self, enabled: bool) {
        self.sched = enabled;
    }

    /// Whether the cross-bank scheduler is enabled.
    pub fn sched_enabled(&self) -> bool {
        self.sched
    }

    /// Whether prefix snapshot caching is enabled (shared toggle for
    /// the write-prefix cache and the TRNG refill-prefix cache).
    pub fn prefix_caching(&self) -> bool {
        self.prefix_cache
    }

    /// Sets the intra-module worker count. With more than one worker
    /// and a multi-chip module, compiled programs execute their chips
    /// on parallel scoped threads — byte-exact with sequential
    /// execution by construction (chips share no mutable state and
    /// temporal noise is keyed on event fire times).
    pub fn set_intra_jobs(&mut self, jobs: usize) {
        self.intra_jobs = jobs.max(1);
    }

    /// The configured intra-module worker count.
    pub fn intra_jobs(&self) -> usize {
        self.intra_jobs
    }

    /// The controlled module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Mutable access to the module (environment changes, probes).
    pub fn module_mut(&mut self) -> &mut Module {
        &mut self.module
    }

    /// The module-level anti-cell mask for every column of a
    /// `(bank, sub-array)` pair — `mask[col]` is true when the cell under
    /// logical column `col` is an anti-cell (stores inverted logic,
    /// §II-C). Polarity is a static, draw-free function of the die seed,
    /// so the mask is materialized once and shared by every pattern
    /// build (PUF init, Frac preparation, TRNG seeding, ...).
    pub fn anti_mask(&mut self, bank: usize, sub: usize) -> Arc<[bool]> {
        if let Some(mask) = self.anti_masks.get(&(bank, sub)) {
            return Arc::clone(mask);
        }
        let width = self.module.row_bits();
        let mut mask = Vec::with_capacity(width);
        for col in 0..width {
            let (chip, chip_col) = self.module.map_column(col);
            mask.push(
                self.module
                    .chip_mut(chip)
                    .is_anti_column(bank, sub, chip_col),
            );
        }
        let mask: Arc<[bool]> = mask.into();
        self.anti_masks.insert((bank, sub), Arc::clone(&mask));
        mask
    }

    /// Releases the module.
    pub fn into_module(self) -> Module {
        self.module
    }

    /// Current cycle.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The JEDEC timing table used for checking and for the safe helpers.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Always-on command counters.
    pub fn stats(&self) -> &CycleStats {
        &self.stats
    }

    /// Kernel performance counters of the controlled module.
    pub fn model_perf(&self) -> ModelPerf {
        self.module.model_perf()
    }

    /// Snapshot of both counter families for experiment reports.
    pub fn metrics(&self) -> RunMetrics {
        RunMetrics {
            cycles: self.stats,
            model: self.module.model_perf(),
        }
    }

    /// Starts recording a full command trace.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(CommandTrace::new());
        }
    }

    /// Stops tracing and returns the recorded trace (if any).
    pub fn take_trace(&mut self) -> Option<CommandTrace> {
        self.trace.take()
    }

    /// Installs (or clears, with `None`) a per-run cycle budget. Any
    /// subsequent [`MemoryController::run`] / `run_compiled` whose bus
    /// occupancy exceeds the budget aborts mid-program with
    /// [`ControllerError::BudgetExceeded`] — a guardrail against
    /// runaway programs in fault-injection fleets.
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.cycle_budget = budget;
    }

    /// The per-run cycle budget, if one is installed.
    pub fn cycle_budget(&self) -> Option<u64> {
        self.cycle_budget
    }

    /// Lets `cycles` pass with no commands on the bus.
    pub fn wait(&mut self, cycles: Cycles) {
        self.clock += cycles.value();
    }

    /// Lets wall-clock time pass (rounded up to whole cycles) — how
    /// retention experiments "stop sending any memory commands in order
    /// to let the charge leak out of the cell" (§V-A).
    pub fn wait_seconds(&mut self, s: Seconds) {
        self.clock += Cycles::from_seconds_ceil(s).value();
    }

    /// Checks a program against JEDEC timing without executing it.
    pub fn check(&self, program: &Program) -> Vec<TimingViolation> {
        check_program(&self.timing, program)
    }

    /// Executes a program with its exact specified timing, violations and
    /// all — the SoftMC contract.
    ///
    /// # Errors
    ///
    /// Fails only on *structural* problems (bad addresses, reads from a
    /// closed bank); timing violations execute with their (defined by the
    /// model, undefined by JEDEC) analog consequences.
    pub fn run(&mut self, program: &Program) -> Result<RunOutcome> {
        let compiled = self.compile_cached(program);
        self.run_compiled(&compiled)
    }

    /// Executes a program only if it is fully JEDEC-compliant.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::TimingViolations`] when the program is
    /// out-of-spec, otherwise behaves like [`MemoryController::run`].
    pub fn run_checked(&mut self, program: &Program) -> Result<RunOutcome> {
        let compiled = self.compile_cached(program);
        if !compiled.violations().is_empty() {
            return Err(ControllerError::TimingViolations(
                compiled.violations().to_vec(),
            ));
        }
        self.run_compiled(&compiled)
    }

    /// Executes a batch of independent programs through the cross-bank
    /// scheduler, demuxing one [`RunOutcome`] per program (input
    /// order).
    ///
    /// The scheduler ([`crate::sched::merge`]) interleaves the batch
    /// into one command stream — bank-disjoint programs fill each
    /// other's tRCD/tRP idle ticks — and audits it against the JEDEC
    /// table; `sched_merges` / `sched_overlapped_ticks` count the
    /// reclaimed bus occupancy. Device execution then proceeds
    /// per-bank: each program's commands run at their
    /// sequential-equivalent issue cycles, which is byte-identical to
    /// interleaved execution because banks share no state and every
    /// analog draw is a pure function of its own bank's command times
    /// (the same per-bank-independence argument `sched::audit`
    /// verifies; see DESIGN.md). That is also what makes `--sched off`
    /// and jobs-N replays byte-identical by construction.
    ///
    /// Falls back to a plain sequential loop (counting
    /// `sched_fallbacks`) when the batch shares a bank, has fewer than
    /// two programs, or the vendor profile has a command-timing guard
    /// (guarded groups resolve their own effective times, so bus-level
    /// overlap accounting would be fiction).
    ///
    /// # Errors
    ///
    /// Fails like [`MemoryController::run`] on the first structurally
    /// invalid program; earlier programs in the batch remain executed.
    pub fn run_scheduled(&mut self, programs: &[Program]) -> Result<Vec<RunOutcome>> {
        let compiled: Vec<Arc<CompiledProgram>> =
            programs.iter().map(|p| self.compile_cached(p)).collect();
        if self.sched && compiled.len() >= 2 {
            if self.module.profile().timing_guard {
                self.module.record_sched(0, 0, 1);
            } else {
                let entries: Vec<ScheduleEntry<'_>> = compiled
                    .iter()
                    .enumerate()
                    .map(|(i, c)| ScheduleEntry {
                        space: 0,
                        order: i as u64,
                        program: c,
                    })
                    .collect();
                match sched::merge(&entries) {
                    Some(schedule) => {
                        debug_assert!(
                            sched::audit(&self.timing, &entries, &schedule).is_empty(),
                            "scheduler produced a timing-violating interleave"
                        );
                        self.module.record_sched(1, schedule.overlapped_ticks(), 0);
                    }
                    None => self.module.record_sched(0, 0, 1),
                }
            }
        }
        compiled.iter().map(|c| self.run_compiled(c)).collect()
    }

    /// Accounts a program that was satisfied from a snapshot restore
    /// instead of live execution: replays its stats and trace records
    /// at their proper issue cycles from `t0` and advances the clock
    /// past its last idle gap — exactly the bookkeeping
    /// [`MemoryController::run`] would have done. The caller is
    /// responsible for having reimposed the equivalent module state
    /// (the TRNG refill-prefix cache uses this).
    pub fn account_restored_program(&mut self, program: &CompiledProgram, t0: u64) {
        let mut t = t0;
        for inst in program.insts() {
            self.stats.record_kind(inst.kind);
            if let Some(trace) = &mut self.trace {
                trace.record(t, inst.trace_op());
            }
            t += 1 + inst.idle_after;
        }
        self.clock = t;
    }

    /// Compiles a program, serving data-free programs from the
    /// hash-keyed compile cache (experiments rebuild the same Frac /
    /// Half-m programs thousands of times).
    fn compile_cached(&mut self, program: &Program) -> Arc<CompiledProgram> {
        let has_write = program
            .instructions()
            .iter()
            .any(|i| matches!(i.command, DramCommand::Write { .. }));
        if has_write {
            return Arc::new(CompiledProgram::compile(&self.timing, program));
        }
        let key = program_hash(program);
        if let Some(c) = self.compiled.get(&key) {
            if c.matches(program) {
                return Arc::clone(c);
            }
        }
        let c = Arc::new(CompiledProgram::compile(&self.timing, program));
        self.compiled.insert(key, Arc::clone(&c));
        c
    }

    /// The interpreter loop over a flattened program: no per-instruction
    /// allocation, and tracing records the compact op instead of cloning
    /// the command.
    fn run_compiled(&mut self, program: &CompiledProgram) -> Result<RunOutcome> {
        let start_cycle = self.clock;
        let faults_on = self.module.faults_enabled();
        let faults_before = if faults_on {
            self.module.model_perf().fault_events()
        } else {
            0
        };
        if self.intra_jobs > 1 && self.module.chips().len() > 1 {
            if let Some((ops, times)) = self.plan_intra_ops(program, start_cycle) {
                return self.run_compiled_intra(
                    program,
                    &ops,
                    &times,
                    start_cycle,
                    faults_on,
                    faults_before,
                );
            }
        }
        let mut reads = Vec::with_capacity(program.reads());
        for inst in program.insts() {
            let t = self.clock;
            self.stats.record_kind(inst.kind);
            if let Some(trace) = &mut self.trace {
                trace.record(t, inst.trace_op());
            }
            match inst.kind {
                CommandKind::Activate => self
                    .module
                    .activate(RowAddr::new(inst.bank as usize, inst.row as usize), t)?,
                CommandKind::Precharge => self.module.precharge(inst.bank as usize, t)?,
                CommandKind::Read => {
                    let mut buf = self.read_pool.pop().unwrap_or_default();
                    self.module.read_into(inst.bank as usize, t, &mut buf)?;
                    reads.push(buf);
                }
                CommandKind::Write => {
                    let bits = program.payload(inst);
                    self.execute_write(inst.bank as usize, inst.start_col as usize, bits, t)?;
                }
                CommandKind::Refresh => self.module.refresh(inst.bank as usize, t)?,
                CommandKind::Nop => {}
            }
            self.clock = t + 1 + inst.idle_after;
            if let Some(budget) = self.cycle_budget {
                let spent = self.clock - start_cycle;
                if spent > budget {
                    return Err(ControllerError::BudgetExceeded { budget, spent });
                }
            }
        }
        Ok(RunOutcome {
            reads,
            start_cycle,
            end_cycle: self.clock,
            fault_events: if faults_on {
                self.module.model_perf().fault_events() - faults_before
            } else {
                0
            },
        })
    }

    /// Pre-times a compiled program for the chip-parallel path: one
    /// [`BroadcastOp`] and issue cycle per instruction (the clock
    /// evolution is payload-independent, so it can run ahead of
    /// execution). Returns `None` when the program must run
    /// sequentially instead: a write that is not a full module row, or
    /// a cycle budget the program would blow mid-run (the abort has to
    /// leave the same partially-executed state a sequential run does).
    fn plan_intra_ops(
        &self,
        program: &CompiledProgram,
        start: u64,
    ) -> Option<(Vec<BroadcastOp>, Vec<u64>)> {
        let width = self.module.row_bits();
        let mut ops = Vec::with_capacity(program.insts().len());
        let mut times = Vec::with_capacity(program.insts().len());
        let mut clock = start;
        for inst in program.insts() {
            let t = clock;
            times.push(t);
            let bank = inst.bank as usize;
            ops.push(match inst.kind {
                CommandKind::Activate => BroadcastOp::Activate {
                    addr: RowAddr::new(bank, inst.row as usize),
                    t,
                },
                CommandKind::Precharge => BroadcastOp::Precharge { bank, t },
                CommandKind::Read => BroadcastOp::Read { bank, t },
                CommandKind::Write => {
                    let bits = program.payload(inst);
                    if inst.start_col != 0 || bits.len() != width {
                        return None;
                    }
                    BroadcastOp::Write {
                        bank,
                        per_chip: self.module.stripe(bits),
                        t,
                    }
                }
                CommandKind::Refresh => BroadcastOp::Refresh { bank, t },
                CommandKind::Nop => BroadcastOp::Nop,
            });
            clock = t + 1 + inst.idle_after;
            if let Some(budget) = self.cycle_budget {
                if clock - start > budget {
                    return None;
                }
            }
        }
        Some((ops, times))
    }

    /// The chip-parallel twin of the interpreter loop: hands the
    /// pre-timed ops to [`Module::run_ops`], then records stats, trace,
    /// and clock exactly as the sequential loop would have — for the
    /// whole program on success, up to and including the failing
    /// instruction on error.
    fn run_compiled_intra(
        &mut self,
        program: &CompiledProgram,
        ops: &[BroadcastOp],
        times: &[u64],
        start_cycle: u64,
        faults_on: bool,
        faults_before: u64,
    ) -> Result<RunOutcome> {
        match self.module.run_ops(ops, self.intra_jobs) {
            Ok(reads) => {
                for (inst, &t) in program.insts().iter().zip(times) {
                    self.stats.record_kind(inst.kind);
                    if let Some(trace) = &mut self.trace {
                        trace.record(t, inst.trace_op());
                    }
                }
                self.clock = match program.insts().last() {
                    Some(last) => times[times.len() - 1] + 1 + last.idle_after,
                    None => start_cycle,
                };
                Ok(RunOutcome {
                    reads,
                    start_cycle,
                    end_cycle: self.clock,
                    fault_events: if faults_on {
                        self.module.model_perf().fault_events() - faults_before
                    } else {
                        0
                    },
                })
            }
            Err((op_idx, e)) => {
                for (inst, &t) in program.insts().iter().zip(times).take(op_idx + 1) {
                    self.stats.record_kind(inst.kind);
                    if let Some(trace) = &mut self.trace {
                        trace.record(t, inst.trace_op());
                    }
                }
                self.clock = times[op_idx];
                Err(e.into())
            }
        }
    }

    fn execute_write(
        &mut self,
        bank: usize,
        start_col: usize,
        bits: &[bool],
        t: u64,
    ) -> Result<()> {
        if start_col == 0 && bits.len() == self.module.row_bits() {
            self.module.write(bank, bits, t)?;
            return Ok(());
        }
        if self.module.chips().len() == 1 {
            self.module.chip_mut(0).write(bank, start_col, bits, t)?;
            return Ok(());
        }
        Err(ControllerError::PartialWriteUnsupported {
            chips: self.module.chips().len(),
        })
    }

    // ------------------------------------------------------------------
    // Legally timed data movement
    // ------------------------------------------------------------------

    /// A JEDEC-compliant program that writes a full row.
    pub fn write_row_program(&self, addr: RowAddr, bits: &[bool]) -> Program {
        let t = &self.timing;
        Program::builder()
            .act(addr)
            .delay(t.t_rcd.value())
            .write(addr.bank, bits.to_vec())
            .delay(t.t_ras.value()) // generous: covers tWR and tRAS
            .pre(addr.bank)
            .delay(t.t_rp.value())
            .build()
    }

    /// A JEDEC-compliant program that reads a full row.
    pub fn read_row_program(&self, addr: RowAddr) -> Program {
        let t = &self.timing;
        Program::builder()
            .act(addr)
            .delay(t.t_rcd.value())
            .read(addr.bank)
            .delay(t.t_ras.value())
            .pre(addr.bank)
            .delay(t.t_rp.value())
            .build()
    }

    /// Enables or disables the write-prefix snapshot cache (on by
    /// default). Disabling drops any captures, so every subsequent
    /// full-row write replays its complete program — the toggle lets
    /// tests prove that restore and replay are byte-identical.
    pub fn set_prefix_caching(&mut self, enabled: bool) {
        self.prefix_cache = enabled;
        if !enabled {
            self.write_cache.clear();
        }
    }

    /// Writes a full row with legal timing.
    ///
    /// Repeated full-row writes to the same (bank, row) are the shared
    /// prefix of every trial loop in the paper's experiments, so the
    /// controller caches the module state the write program leaves
    /// behind and restores it (rebased to the current clock, re-railed
    /// to the new pattern) instead of replaying the program. The fast
    /// path only engages when it is provably equivalent: no timing
    /// guard, the target bank fully idle once pending closes drain, no
    /// probes attached, and the environment unchanged since capture.
    ///
    /// # Errors
    ///
    /// Fails when the address is out of range or the data width does not
    /// match the module row.
    pub fn write_row(&mut self, addr: RowAddr, bits: &[bool]) -> Result<()> {
        let (sub, local) = self.module.geometry().split_row(addr.row);
        let write_off = 1 + self.timing.t_rcd.value();
        let pre_off = write_off + 1 + self.timing.t_ras.value();
        let total_cycles = pre_off + 1 + self.timing.t_rp.value();
        if self.prefix_cache
            && bits.len() == self.module.row_bits()
            && self.module.write_fastpath_eligible(addr.bank, sub)
            // Snapshots assume a static analog environment across the
            // whole program. An injected excursion window overlapping
            // [t0, t0 + total) would shift what a live replay does (a
            // capture would also bake excursion state under the base
            // environment key), so both capture and restore are
            // disabled inside one — fall through to a plain replay.
            && self
                .module
                .fault_windows_clear(self.clock, self.clock + total_cycles)
            // A budget the program cannot meet must surface as the same
            // mid-program abort the live replay produces.
            && self.cycle_budget.is_none_or(|b| total_cycles <= b)
        {
            let t0 = self.clock;
            // Fire the bank's pending events at t0 — exactly where the
            // write program's ACT would have fired them lazily.
            self.module.drain_bank(addr.bank, t0);
            if self.module.bank_idle(addr.bank) {
                let key = (addr.bank, addr.row);
                let hit = match self.write_cache.get(&key) {
                    Some(e) => e.snap.environment() == self.module.environment(),
                    None => false,
                };
                if hit {
                    let entry = &self.write_cache[&key];
                    let t_write = t0 + entry.write_off;
                    self.module
                        .restore_write_snapshot(&entry.snap, t0, bits, t_write)?;
                    self.stats.record_kind(CommandKind::Activate);
                    self.stats.record_kind(CommandKind::Write);
                    self.stats.record_kind(CommandKind::Precharge);
                    if let Some(trace) = &mut self.trace {
                        let bank = addr.bank as u32;
                        let mut op = TraceOp {
                            kind: CommandKind::Activate,
                            bank,
                            row: addr.row as u32,
                            start_col: 0,
                            len: 0,
                        };
                        trace.record(t0, op);
                        op.kind = CommandKind::Write;
                        op.row = 0;
                        op.len = bits.len() as u32;
                        trace.record(t_write, op);
                        op.kind = CommandKind::Precharge;
                        op.len = 0;
                        trace.record(t0 + entry.pre_off, op);
                    }
                    self.clock = t0 + entry.total_cycles;
                    return Ok(());
                }
                // Miss (or stale environment): replay live, then capture
                // the state the program left for the next write.
                let program = self.write_row_program(addr, bits);
                debug_assert!(self.check(&program).is_empty());
                self.run(&program)?;
                let snap = self
                    .module
                    .capture_write_snapshot(addr.bank, sub, local, t0);
                debug_assert_eq!(self.clock, t0 + total_cycles);
                self.write_cache.insert(
                    key,
                    WriteCacheEntry {
                        snap,
                        write_off,
                        pre_off,
                        total_cycles,
                    },
                );
                return Ok(());
            }
        }
        let program = self.write_row_program(addr, bits);
        debug_assert!(self.check(&program).is_empty());
        self.run(&program)?;
        Ok(())
    }

    /// Reads a full row with legal timing.
    ///
    /// # Errors
    ///
    /// Fails when the address is out of range, or with
    /// [`ControllerError::MissingReadData`] if the read program produced
    /// no data.
    pub fn read_row(&mut self, addr: RowAddr) -> Result<Vec<bool>> {
        let program = self.read_row_program(addr);
        debug_assert!(self.check(&program).is_empty());
        self.run(&program)?.single_read()
    }

    /// [`MemoryController::read_row`] into a caller-provided buffer:
    /// the read lands in `out` (cleared and refilled) and the buffer
    /// `out` previously held is recycled into the controller's read
    /// pool, so a steady-state trial loop performs no read allocations
    /// at all.
    ///
    /// # Errors
    ///
    /// Same contract as [`MemoryController::read_row`].
    pub fn read_row_into(&mut self, addr: RowAddr, out: &mut Vec<bool>) -> Result<()> {
        let program = self.read_row_program(addr);
        debug_assert!(self.check(&program).is_empty());
        let outcome = self.run(&program)?;
        let got = outcome.reads.len();
        let mut filled = outcome
            .reads
            .into_iter()
            .next()
            .ok_or(ControllerError::MissingReadData { expected: 1, got })?;
        std::mem::swap(out, &mut filled);
        self.recycle_read_buffer(filled);
        Ok(())
    }

    /// Hands a spent read buffer back for reuse by later reads (a
    /// bounded pool; excess buffers are simply dropped).
    pub fn recycle_read_buffer(&mut self, buf: Vec<bool>) {
        if self.read_pool.len() < READ_POOL_CAP {
            self.read_pool.push(buf);
        }
    }

    /// Refreshes every bank (destroying all fractional values).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn refresh_all(&mut self) -> Result<()> {
        let banks = self.module.geometry().banks;
        for bank in 0..banks {
            let p = Program::builder()
                .refresh(bank)
                .delay(self.timing.t_rfc.value())
                .build();
            self.run(&p)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, GroupId, ModuleConfig};

    fn controller(group: GroupId) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            group,
            77,
            Geometry::tiny(),
        )))
    }

    #[test]
    fn write_read_roundtrip() {
        let mut mc = controller(GroupId::B);
        let width = mc.module().row_bits();
        let pattern: Vec<bool> = (0..width).map(|i| i % 4 != 2).collect();
        let addr = RowAddr::new(0, 7);
        mc.write_row(addr, &pattern).unwrap();
        assert_eq!(mc.read_row(addr).unwrap(), pattern);
    }

    #[test]
    fn clock_advances_by_program_length() {
        let mut mc = controller(GroupId::B);
        let t0 = mc.clock();
        let p = Program::builder().nop().delay(9).build();
        let outcome = mc.run(&p).unwrap();
        assert_eq!(outcome.cycles(), Cycles(10));
        assert_eq!(mc.clock(), t0 + 10);
    }

    #[test]
    fn run_checked_rejects_frac() {
        let mut mc = controller(GroupId::B);
        let frac = Program::builder()
            .act(RowAddr::new(0, 1))
            .pre(0)
            .delay(5)
            .build();
        let err = mc.run_checked(&frac).unwrap_err();
        assert!(matches!(err, ControllerError::TimingViolations(_)));
        // But run() executes it.
        mc.run(&frac).unwrap();
    }

    #[test]
    fn safe_helpers_are_jedec_clean() {
        let mc = controller(GroupId::B);
        let w = mc.write_row_program(RowAddr::new(0, 1), &[true; 64]);
        let r = mc.read_row_program(RowAddr::new(0, 1));
        assert!(mc.check(&w).is_empty(), "{:?}", mc.check(&w));
        assert!(mc.check(&r).is_empty(), "{:?}", mc.check(&r));
    }

    #[test]
    fn frac_program_changes_stored_charge_on_group_b() {
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 3);
        mc.write_row(addr, &[true; 64]).unwrap();
        // Ten Frac operations.
        for _ in 0..10 {
            let frac = Program::builder().act(addr).pre(0).delay(5).build();
            mc.run(&frac).unwrap();
        }
        // The stored values are now fractional: a read returns a mixture
        // decided by per-column sense offsets, not all ones.
        let bits = mc.read_row(addr).unwrap();
        let ones = bits.iter().filter(|&&b| b).count();
        assert!(ones > 0 && ones < 64, "ones = {ones}");
    }

    #[test]
    fn stats_count_commands() {
        let mut mc = controller(GroupId::B);
        mc.write_row(RowAddr::new(0, 1), &[false; 64]).unwrap();
        let s = *mc.stats();
        assert_eq!(s.activates, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.precharges, 1);
    }

    #[test]
    fn trace_is_opt_in() {
        let mut mc = controller(GroupId::B);
        mc.write_row(RowAddr::new(0, 1), &[false; 64]).unwrap();
        assert!(mc.take_trace().is_none());
        mc.enable_trace();
        mc.read_row(RowAddr::new(0, 1)).unwrap();
        let trace = mc.take_trace().unwrap();
        assert_eq!(trace.len(), 3); // ACT, RD, PRE
    }

    #[test]
    fn wait_seconds_moves_clock() {
        let mut mc = controller(GroupId::B);
        let t0 = mc.clock();
        mc.wait_seconds(Seconds(1.0));
        assert_eq!(mc.clock() - t0, 400_000_000);
    }

    #[test]
    fn retention_experiment_shape() {
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 2);
        mc.write_row(addr, &[true; 64]).unwrap();
        mc.wait_seconds(Seconds::from_hours(60.0));
        let bits = mc.read_row(addr).unwrap();
        let kept = bits.iter().filter(|&&b| b).count();
        assert!(kept < 64, "no leakage after 60 h");
        assert!(kept > 0, "total loss after 60 h");
    }

    #[test]
    fn partial_write_single_chip_ok_multichip_err() {
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 1);
        mc.write_row(addr, &[true; 64]).unwrap();
        let p = Program::builder()
            .act(addr)
            .delay(6)
            .write_at(0, 8, vec![false; 8])
            .delay(15)
            .pre(0)
            .delay(6)
            .build();
        mc.run(&p).unwrap();
        let bits = mc.read_row(addr).unwrap();
        assert!(bits[0] && !bits[8] && bits[16]);

        let mut mc8 = MemoryController::new(Module::new(ModuleConfig::rank(
            GroupId::B,
            5,
            Geometry::tiny(),
        )));
        mc8.write_row(RowAddr::new(0, 1), &vec![true; 512]).unwrap();
        let p = Program::builder()
            .act(RowAddr::new(0, 1))
            .delay(6)
            .write_at(0, 8, vec![false; 8])
            .build();
        assert!(matches!(
            mc8.run(&p),
            Err(ControllerError::PartialWriteUnsupported { .. })
        ));
    }

    #[test]
    fn intra_jobs_execution_is_byte_identical() {
        let rank = || {
            MemoryController::new(Module::new(ModuleConfig::rank(
                GroupId::B,
                5,
                Geometry::tiny(),
            )))
        };
        let mut seq = rank();
        let mut par = rank();
        par.set_intra_jobs(4);
        assert_eq!(par.intra_jobs(), 4);
        let addr = RowAddr::new(0, 3);
        let width = seq.module().row_bits();
        let pattern: Vec<bool> = (0..width).map(|i| i % 3 != 0).collect();
        let frac = Program::builder().act(addr).pre(0).delay(5).build();
        let mut reads = Vec::new();
        for mc in [&mut seq, &mut par] {
            mc.enable_trace();
            mc.write_row(addr, &pattern).unwrap();
            mc.run(&frac).unwrap();
            reads.push(mc.read_row(addr).unwrap());
            mc.refresh_all().unwrap();
            reads.push(mc.read_row(addr).unwrap());
        }
        assert_eq!(reads[0], reads[2]);
        assert_eq!(reads[1], reads[3]);
        assert_eq!(seq.clock(), par.clock());
        assert_eq!(seq.stats(), par.stats());
        // Event/draw counts must match exactly; wall-time counters
        // legitimately differ between runs.
        let strip_ns = |mut p: ModelPerf| {
            p.share_ns = 0;
            p.sense_ns = 0;
            p.close_ns = 0;
            p.leak_ns = 0;
            p.noise_ns = 0;
            p
        };
        assert_eq!(strip_ns(seq.model_perf()), strip_ns(par.model_perf()));
        assert_eq!(
            format!("{:?}", seq.take_trace().unwrap()),
            format!("{:?}", par.take_trace().unwrap())
        );
        for col in [0, 17, width - 1] {
            let t = seq.clock() + 1_000;
            assert_eq!(
                seq.module_mut().probe_cell_voltage(addr, col, t),
                par.module_mut().probe_cell_voltage(addr, col, t),
                "col {col}"
            );
        }
    }

    #[test]
    fn intra_jobs_budget_abort_matches_sequential() {
        let rank = || {
            let mut mc = MemoryController::new(Module::new(ModuleConfig::rank(
                GroupId::B,
                5,
                Geometry::tiny(),
            )));
            mc.set_cycle_budget(Some(10));
            mc
        };
        let mut seq = rank();
        let mut par = rank();
        par.set_intra_jobs(4);
        let p = Program::builder()
            .act(RowAddr::new(0, 1))
            .delay(6)
            .pre(0)
            .delay(20)
            .build();
        let a = seq.run(&p);
        let b = par.run(&p);
        assert!(matches!(a, Err(ControllerError::BudgetExceeded { .. })));
        assert!(matches!(b, Err(ControllerError::BudgetExceeded { .. })));
        assert_eq!(seq.clock(), par.clock());
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn single_read_errors_on_readless_program() {
        let mut mc = controller(GroupId::B);
        let p = Program::builder()
            .act(RowAddr::new(0, 1))
            .delay(20)
            .pre(0)
            .delay(6)
            .build();
        let err = mc.run(&p).unwrap().single_read().unwrap_err();
        assert!(matches!(
            err,
            ControllerError::MissingReadData {
                expected: 1,
                got: 0
            }
        ));
    }

    #[test]
    fn single_read_returns_first_read() {
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 7);
        mc.write_row(addr, &[true; 64]).unwrap();
        let p = mc.read_row_program(addr);
        let outcome = mc.run(&p).unwrap();
        assert_eq!(outcome.single_read().unwrap(), vec![true; 64]);
    }

    #[test]
    fn compiled_programs_are_cached_by_hash() {
        let mut mc = controller(GroupId::B);
        let frac = Program::builder()
            .act(RowAddr::new(0, 1))
            .pre(0)
            .delay(5)
            .build();
        mc.run(&frac).unwrap();
        mc.run(&frac).unwrap();
        // Rebuilt-but-identical program shares the same compiled entry.
        let rebuilt = Program::builder()
            .act(RowAddr::new(0, 1))
            .pre(0)
            .delay(5)
            .build();
        mc.run(&rebuilt).unwrap();
        assert_eq!(mc.compiled.len(), 1);
        // A different program compiles to a second entry; a write-bearing
        // program is compiled on the fly and never cached.
        mc.read_row(RowAddr::new(0, 1)).unwrap();
        mc.write_row(RowAddr::new(0, 2), &[true; 64]).unwrap();
        assert_eq!(mc.compiled.len(), 2);
    }

    /// The tentpole equivalence claim: a scheduled batch produces the
    /// same reads, clock, stats, and device state as running its
    /// programs back to back — with or without `--sched` — while the
    /// scheduler counters record the reclaimed bus occupancy.
    #[test]
    fn run_scheduled_matches_sequential_run() {
        let prep = |mc: &mut MemoryController| {
            mc.write_row(RowAddr::new(0, 1), &[true; 64]).unwrap();
            mc.write_row(RowAddr::new(1, 2), &[false; 64]).unwrap();
        };
        let batch = |mc: &MemoryController| {
            vec![
                mc.read_row_program(RowAddr::new(0, 1)),
                mc.read_row_program(RowAddr::new(1, 2)),
                Program::builder()
                    .act(RowAddr::new(0, 1))
                    .pre(0)
                    .delay(5)
                    .build(),
            ]
        };

        let mut scheduled = controller(GroupId::B);
        let mut sequential = controller(GroupId::B);
        let mut disabled = controller(GroupId::B);
        disabled.set_sched(false);
        assert!(!disabled.sched_enabled());
        for mc in [&mut scheduled, &mut sequential, &mut disabled] {
            prep(mc);
        }

        // Banks 0 and 1 are disjoint across the first two programs, but
        // program 3 shares bank 0 with program 1 → that batch must fall
        // back. Split so both paths are exercised.
        let programs = batch(&scheduled);
        let sched_out = scheduled.run_scheduled(&programs[..2]).unwrap();
        let sched_rest = scheduled.run_scheduled(&programs).unwrap();
        let mut seq_out = Vec::new();
        for p in &programs[..2] {
            seq_out.push(sequential.run(p).unwrap());
        }
        let mut seq_rest = Vec::new();
        for p in &programs {
            seq_rest.push(sequential.run(p).unwrap());
        }
        let dis_out = disabled.run_scheduled(&programs[..2]).unwrap();
        let dis_rest = disabled.run_scheduled(&programs).unwrap();

        assert_eq!(sched_out, seq_out);
        assert_eq!(sched_rest, seq_rest);
        assert_eq!(dis_out, seq_out);
        assert_eq!(dis_rest, seq_rest);
        assert_eq!(scheduled.clock(), sequential.clock());
        assert_eq!(scheduled.clock(), disabled.clock());
        assert_eq!(scheduled.stats(), sequential.stats());

        let p = scheduled.model_perf();
        assert_eq!(p.sched_merges, 1, "first batch merges");
        assert!(p.sched_overlapped_ticks > 0);
        assert_eq!(p.sched_fallbacks, 1, "second batch shares bank 0");
        let d = disabled.model_perf();
        assert_eq!((d.sched_merges, d.sched_fallbacks), (0, 0));
    }

    #[test]
    fn run_scheduled_falls_back_on_guarded_groups() {
        let mut mc = controller(GroupId::J);
        mc.write_row(RowAddr::new(0, 1), &[true; 64]).unwrap();
        mc.write_row(RowAddr::new(1, 1), &[true; 64]).unwrap();
        let programs = vec![
            mc.read_row_program(RowAddr::new(0, 1)),
            mc.read_row_program(RowAddr::new(1, 1)),
        ];
        mc.run_scheduled(&programs).unwrap();
        let p = mc.model_perf();
        assert_eq!(p.sched_merges, 0);
        assert_eq!(p.sched_fallbacks, 1);
    }

    #[test]
    fn read_row_into_recycles_buffers() {
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 7);
        let width = mc.module().row_bits();
        let pattern: Vec<bool> = (0..width).map(|i| i % 4 != 2).collect();
        mc.write_row(addr, &pattern).unwrap();

        let mut plain = controller(GroupId::B);
        plain.write_row(addr, &pattern).unwrap();

        let mut buf = Vec::new();
        mc.read_row_into(addr, &mut buf).unwrap();
        assert_eq!(buf, plain.read_row(addr).unwrap());
        // Round-trip again: the recycled buffer serves the next read.
        mc.read_row_into(addr, &mut buf).unwrap();
        assert_eq!(buf, plain.read_row(addr).unwrap());
        assert_eq!(mc.clock(), plain.clock());
        assert_eq!(mc.stats(), plain.stats());
    }

    #[test]
    fn run_checked_uses_cached_violations() {
        let mut mc = controller(GroupId::B);
        let frac = Program::builder()
            .act(RowAddr::new(0, 1))
            .pre(0)
            .delay(5)
            .build();
        mc.run(&frac).unwrap(); // populates the compile cache
        let err = mc.run_checked(&frac).unwrap_err();
        assert!(matches!(err, ControllerError::TimingViolations(_)));
    }

    /// The central equivalence claim behind the write-prefix cache: a
    /// controller that restores snapshots and one that replays every
    /// write program produce byte-identical device state, clocks, stats,
    /// and RNG streams.
    #[test]
    fn write_prefix_restore_matches_replay() {
        let mut cached = controller(GroupId::B);
        let mut live = controller(GroupId::B);
        live.set_prefix_caching(false);

        let addr = RowAddr::new(0, 3);
        let width = cached.module().row_bits();
        let pat_a: Vec<bool> = (0..width).map(|i| i % 3 != 0).collect();
        let pat_b: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
        let frac = Program::builder().act(addr).pre(0).delay(5).build();

        let mut reads = Vec::new();
        for mc in [&mut cached, &mut live] {
            // First write captures (or replays); later writes with
            // different data, interleaved with out-of-spec Fracs and
            // reads, exercise the restore path. (A write directly after
            // a Frac drains the bank's pending analog events at t0 —
            // exactly where the write program's ACT would fire them —
            // and then restores, so the orders stay aligned.)
            mc.write_row(addr, &pat_a).unwrap();
            mc.write_row(addr, &pat_b).unwrap();
            mc.run(&frac).unwrap();
            reads.push(mc.read_row(addr).unwrap());
            mc.write_row(addr, &pat_a).unwrap();
            mc.run(&frac).unwrap();
            reads.push(mc.read_row(addr).unwrap());
        }
        assert_eq!(reads[0], reads[2]);
        assert_eq!(reads[1], reads[3]);
        assert_eq!(cached.clock(), live.clock());
        assert_eq!(cached.stats(), live.stats());
        // The charge state itself is bit-identical, fractional cells
        // included.
        for col in [0, 7, 31, 63] {
            let a = cached.module_mut().probe_cell_voltage(addr, col, 50_000);
            let b = live.module_mut().probe_cell_voltage(addr, col, 50_000);
            assert_eq!(a, b, "col {col}");
        }
        let hits = cached.model_perf().snapshot_hits;
        assert!(hits >= 2, "expected restore hits, got {hits}");
        assert_eq!(live.model_perf().snapshot_hits, 0);
    }

    #[test]
    fn write_prefix_cache_respects_environment_changes() {
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 1);
        mc.write_row(addr, &[true; 64]).unwrap();
        let mut env = *mc.module().environment();
        env.temperature_c += 25.0;
        mc.module_mut().set_environment(env);
        mc.write_row(addr, &[false; 64]).unwrap();
        // The stale capture must not be restored under the new
        // environment.
        assert_eq!(mc.model_perf().snapshot_hits, 0);
        assert_eq!(mc.model_perf().snapshot_misses, 2);
        // And a third write under the stable environment hits again.
        mc.write_row(addr, &[true; 64]).unwrap();
        assert_eq!(mc.model_perf().snapshot_hits, 1);
    }

    #[test]
    fn trace_and_stats_identical_across_restore_and_replay() {
        let mut cached = controller(GroupId::B);
        let mut live = controller(GroupId::B);
        live.set_prefix_caching(false);
        let addr = RowAddr::new(1, 4);
        let mut traces = Vec::new();
        for mc in [&mut cached, &mut live] {
            mc.write_row(addr, &[true; 64]).unwrap();
            mc.enable_trace();
            mc.write_row(addr, &[false; 64]).unwrap();
            traces.push(mc.take_trace().unwrap());
        }
        assert!(cached.model_perf().snapshot_hits >= 1);
        assert_eq!(traces[0], traces[1]);
        assert_eq!(traces[0].to_string(), traces[1].to_string());
    }

    #[test]
    fn refresh_all_runs() {
        let mut mc = controller(GroupId::B);
        mc.write_row(RowAddr::new(1, 3), &[true; 64]).unwrap();
        mc.refresh_all().unwrap();
        assert_eq!(mc.read_row(RowAddr::new(1, 3)).unwrap(), vec![true; 64]);
    }

    #[test]
    fn cycle_budget_aborts_overlong_runs() {
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 1);
        // A short out-of-spec program fits in a small budget.
        mc.set_cycle_budget(Some(100));
        assert_eq!(mc.cycle_budget(), Some(100));
        let frac = Program::builder().act(addr).pre(0).delay(5).build();
        mc.run(&frac).unwrap();
        // A full write program does not fit in 10 cycles; the run aborts
        // mid-program with a typed error.
        mc.set_cycle_budget(Some(10));
        let err = mc.write_row(addr, &[true; 64]).unwrap_err();
        match err {
            ControllerError::BudgetExceeded { budget, spent } => {
                assert_eq!(budget, 10);
                assert!(spent > 10, "spent = {spent}");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // Clearing the budget restores normal operation.
        mc.set_cycle_budget(None);
        mc.write_row(addr, &[true; 64]).unwrap();
        assert_eq!(mc.read_row(addr).unwrap(), vec![true; 64]);
    }

    #[test]
    fn run_outcome_counts_fault_events() {
        use fracdram_model::FaultConfig;
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 1);
        mc.write_row(addr, &[true; 64]).unwrap();
        let p = mc.read_row_program(addr);
        // No plan installed: the counter stays zero.
        assert_eq!(mc.run(&p).unwrap().fault_events, 0);
        mc.module_mut().set_fault_config(&FaultConfig {
            sense_flip_rate: 0.2,
            ..FaultConfig::none()
        });
        // 64 columns at a ~0.2 mean flip rate: some flips are all but
        // certain, and they land in this run's outcome.
        let out = mc.run(&p).unwrap();
        assert!(out.fault_events > 0, "no fault events recorded");
        assert_eq!(mc.model_perf().fault_sense_flips, out.fault_events);
        // Back to a disabled config: the plan is dropped, counters stop.
        mc.module_mut().set_fault_config(&FaultConfig::none());
        assert_eq!(mc.run(&p).unwrap().fault_events, 0);
    }

    /// A snapshot captured before an excursion window must not be
    /// restored inside it: the fast path falls back to a live replay
    /// whenever the write program overlaps a window.
    #[test]
    fn write_prefix_cache_refuses_fault_windows() {
        use fracdram_model::FaultConfig;
        let mut mc = controller(GroupId::B);
        mc.module_mut().set_fault_config(&FaultConfig {
            excursions: 1,
            excursion_cycles: 5_000,
            excursion_span: 500_000,
            excursion_temp_delta: 25.0,
            ..FaultConfig::none()
        });
        let w = mc.module().chips()[0].fault_plan().unwrap().windows()[0];
        let addr = RowAddr::new(0, 1);
        // Capture strictly before the window opens.
        assert!(
            w.start > mc.clock() + 100,
            "seed placed the window too early for this test: {w:?}"
        );
        mc.write_row(addr, &[true; 64]).unwrap();
        assert_eq!(mc.model_perf().snapshot_misses, 1);
        // Inside the window the cached prefix must not be used (and no
        // capture may happen either).
        let now = mc.clock();
        mc.wait(Cycles(w.start - now));
        mc.write_row(addr, &[false; 64]).unwrap();
        assert_eq!(mc.model_perf().snapshot_hits, 0);
        assert_eq!(mc.model_perf().snapshot_misses, 1);
        // Past the window, the pre-window capture is valid again.
        let now = mc.clock();
        mc.wait(Cycles(w.end.saturating_sub(now)));
        mc.write_row(addr, &[true; 64]).unwrap();
        assert_eq!(mc.model_perf().snapshot_hits, 1);
    }

    /// The PR-3 equivalence claim must survive fault injection: with an
    /// identical fault plan installed, a snapshot-restoring controller
    /// and a replay-everything controller stay byte-identical through
    /// writes, Fracs, excursion windows, and reads.
    #[test]
    fn write_prefix_restore_matches_replay_under_faults() {
        use fracdram_model::FaultConfig;
        let cfg = FaultConfig {
            stuck_density: 0.02,
            weak_density: 0.05,
            sense_flip_rate: 0.01,
            excursions: 2,
            excursion_cycles: 3_000,
            excursion_span: 120_000,
            excursion_temp_delta: 20.0,
            excursion_vdd_delta: 0.05,
            ..FaultConfig::none()
        };
        let mut cached = controller(GroupId::B);
        let mut live = controller(GroupId::B);
        cached.module_mut().set_fault_config(&cfg);
        live.module_mut().set_fault_config(&cfg);
        live.set_prefix_caching(false);

        let addr = RowAddr::new(0, 3);
        let width = cached.module().row_bits();
        let pat_a: Vec<bool> = (0..width).map(|i| i % 3 != 0).collect();
        let pat_b: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
        let frac = Program::builder().act(addr).pre(0).delay(5).build();
        let windows: Vec<_> = cached.module().chips()[0]
            .fault_plan()
            .unwrap()
            .windows()
            .to_vec();

        let mut reads = Vec::new();
        for mc in [&mut cached, &mut live] {
            mc.write_row(addr, &pat_a).unwrap();
            mc.write_row(addr, &pat_b).unwrap();
            mc.run(&frac).unwrap();
            reads.push(mc.read_row(addr).unwrap());
            // March the clock through every excursion window, exercising
            // writes both inside (fast path refused) and after them.
            for w in &windows {
                let now = mc.clock();
                if w.start > now {
                    mc.wait(Cycles(w.start - now));
                }
                mc.write_row(addr, &pat_a).unwrap();
                mc.run(&frac).unwrap();
                reads.push(mc.read_row(addr).unwrap());
                let now = mc.clock();
                if w.end > now {
                    mc.wait(Cycles(w.end - now));
                }
                mc.write_row(addr, &pat_b).unwrap();
                reads.push(mc.read_row(addr).unwrap());
            }
        }
        let half = reads.len() / 2;
        for i in 0..half {
            assert_eq!(reads[i], reads[half + i], "read {i} diverged");
        }
        assert_eq!(cached.clock(), live.clock());
        assert_eq!(cached.stats(), live.stats());
        for col in [0, 7, 31, 63] {
            let t = cached.clock() + 1_000;
            let a = cached.module_mut().probe_cell_voltage(addr, col, t);
            let b = live.module_mut().probe_cell_voltage(addr, col, t);
            assert_eq!(a, b, "col {col}");
        }
        assert_eq!(live.model_perf().snapshot_hits, 0);
    }
}
