//! The software-controlled memory controller.
//!
//! [`MemoryController`] mirrors the role SoftMC plays in the paper's
//! platform (Fig. 5): the host composes [`Program`]s — command sequences
//! with explicit cycle spacing — and the controller issues them to the
//! DRAM module cycle-accurately, *without* enforcing JEDEC timing. A
//! separate checker ([`MemoryController::check`]) reports which
//! constraints a program violates.
//!
//! It also provides conventional, legally timed data-movement helpers
//! ([`MemoryController::write_row`], [`MemoryController::read_row`]) so
//! higher layers only hand-roll programs for the out-of-spec primitives.

use fracdram_model::{Cycles, ModelPerf, Module, RowAddr, Seconds};

use crate::command::DramCommand;
use crate::error::{ControllerError, Result};
use crate::program::Program;
use crate::timing::{check_program, TimingParams, TimingViolation};
use crate::trace::{CommandTrace, CycleStats};

/// Combined observability snapshot of one controller: the command-bus
/// cycle counters and the device-model kernel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunMetrics {
    /// Command counters (ACT/PRE/RD/WR/REF issued).
    pub cycles: CycleStats,
    /// Sub-array kernel counters summed over every chip of the module.
    pub model: ModelPerf,
}

/// Result of executing one program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOutcome {
    /// Data returned by each READ in the program, in issue order.
    pub reads: Vec<Vec<bool>>,
    /// Cycle at which the program started.
    pub start_cycle: u64,
    /// Cycle after the program's last instruction (including its idle
    /// gap) completed.
    pub end_cycle: u64,
}

impl RunOutcome {
    /// Total cycles the program occupied the command bus.
    pub fn cycles(&self) -> Cycles {
        Cycles(self.end_cycle - self.start_cycle)
    }

    /// Consumes the outcome and returns the data of its single READ.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::MissingReadData`] when the program
    /// issued no READ — a structural bug that previously surfaced as a
    /// silently empty row treated by per-column loops as width-0
    /// success.
    pub fn single_read(self) -> Result<Vec<bool>> {
        let got = self.reads.len();
        self.reads
            .into_iter()
            .next()
            .ok_or(ControllerError::MissingReadData { expected: 1, got })
    }
}

/// A cycle-accurate, violation-capable memory controller driving one
/// simulated DRAM module.
#[derive(Debug, Clone)]
pub struct MemoryController {
    module: Module,
    clock: u64,
    timing: TimingParams,
    stats: CycleStats,
    trace: Option<CommandTrace>,
}

impl MemoryController {
    /// Takes control of a module. The clock starts at a non-zero cycle so
    /// that "time zero" artifacts cannot hide bugs.
    pub fn new(module: Module) -> Self {
        MemoryController {
            module,
            clock: 1_000,
            timing: TimingParams::default(),
            stats: CycleStats::default(),
            trace: None,
        }
    }

    /// The controlled module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Mutable access to the module (environment changes, probes).
    pub fn module_mut(&mut self) -> &mut Module {
        &mut self.module
    }

    /// Releases the module.
    pub fn into_module(self) -> Module {
        self.module
    }

    /// Current cycle.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The JEDEC timing table used for checking and for the safe helpers.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Always-on command counters.
    pub fn stats(&self) -> &CycleStats {
        &self.stats
    }

    /// Kernel performance counters of the controlled module.
    pub fn model_perf(&self) -> ModelPerf {
        self.module.model_perf()
    }

    /// Snapshot of both counter families for experiment reports.
    pub fn metrics(&self) -> RunMetrics {
        RunMetrics {
            cycles: self.stats,
            model: self.module.model_perf(),
        }
    }

    /// Starts recording a full command trace.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(CommandTrace::new());
        }
    }

    /// Stops tracing and returns the recorded trace (if any).
    pub fn take_trace(&mut self) -> Option<CommandTrace> {
        self.trace.take()
    }

    /// Lets `cycles` pass with no commands on the bus.
    pub fn wait(&mut self, cycles: Cycles) {
        self.clock += cycles.value();
    }

    /// Lets wall-clock time pass (rounded up to whole cycles) — how
    /// retention experiments "stop sending any memory commands in order
    /// to let the charge leak out of the cell" (§V-A).
    pub fn wait_seconds(&mut self, s: Seconds) {
        self.clock += Cycles::from_seconds_ceil(s).value();
    }

    /// Checks a program against JEDEC timing without executing it.
    pub fn check(&self, program: &Program) -> Vec<TimingViolation> {
        check_program(&self.timing, program)
    }

    /// Executes a program with its exact specified timing, violations and
    /// all — the SoftMC contract.
    ///
    /// # Errors
    ///
    /// Fails only on *structural* problems (bad addresses, reads from a
    /// closed bank); timing violations execute with their (defined by the
    /// model, undefined by JEDEC) analog consequences.
    pub fn run(&mut self, program: &Program) -> Result<RunOutcome> {
        let start_cycle = self.clock;
        let mut reads = Vec::new();
        for inst in program.instructions() {
            let t = self.clock;
            self.stats.record(&inst.command);
            if let Some(trace) = &mut self.trace {
                trace.record(t, inst.command.clone());
            }
            match &inst.command {
                DramCommand::Activate(addr) => self.module.activate(*addr, t)?,
                DramCommand::Precharge { bank } => self.module.precharge(*bank, t)?,
                DramCommand::Read { bank } => reads.push(self.module.read(*bank, t)?),
                DramCommand::Write {
                    bank,
                    start_col,
                    bits,
                } => self.execute_write(*bank, *start_col, bits, t)?,
                DramCommand::Refresh { bank } => self.module.refresh(*bank, t)?,
                DramCommand::Nop => {}
            }
            self.clock = t + 1 + inst.idle_after.value();
        }
        Ok(RunOutcome {
            reads,
            start_cycle,
            end_cycle: self.clock,
        })
    }

    /// Executes a program only if it is fully JEDEC-compliant.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::TimingViolations`] when the program is
    /// out-of-spec, otherwise behaves like [`MemoryController::run`].
    pub fn run_checked(&mut self, program: &Program) -> Result<RunOutcome> {
        let violations = self.check(program);
        if !violations.is_empty() {
            return Err(ControllerError::TimingViolations(violations));
        }
        self.run(program)
    }

    fn execute_write(
        &mut self,
        bank: usize,
        start_col: usize,
        bits: &[bool],
        t: u64,
    ) -> Result<()> {
        if start_col == 0 && bits.len() == self.module.row_bits() {
            self.module.write(bank, bits, t)?;
            return Ok(());
        }
        if self.module.chips().len() == 1 {
            self.module.chip_mut(0).write(bank, start_col, bits, t)?;
            return Ok(());
        }
        Err(ControllerError::PartialWriteUnsupported {
            chips: self.module.chips().len(),
        })
    }

    // ------------------------------------------------------------------
    // Legally timed data movement
    // ------------------------------------------------------------------

    /// A JEDEC-compliant program that writes a full row.
    pub fn write_row_program(&self, addr: RowAddr, bits: Vec<bool>) -> Program {
        let t = &self.timing;
        Program::builder()
            .act(addr)
            .delay(t.t_rcd.value())
            .write(addr.bank, bits)
            .delay(t.t_ras.value()) // generous: covers tWR and tRAS
            .pre(addr.bank)
            .delay(t.t_rp.value())
            .build()
    }

    /// A JEDEC-compliant program that reads a full row.
    pub fn read_row_program(&self, addr: RowAddr) -> Program {
        let t = &self.timing;
        Program::builder()
            .act(addr)
            .delay(t.t_rcd.value())
            .read(addr.bank)
            .delay(t.t_ras.value())
            .pre(addr.bank)
            .delay(t.t_rp.value())
            .build()
    }

    /// Writes a full row with legal timing.
    ///
    /// # Errors
    ///
    /// Fails when the address is out of range or the data width does not
    /// match the module row.
    pub fn write_row(&mut self, addr: RowAddr, bits: &[bool]) -> Result<()> {
        let program = self.write_row_program(addr, bits.to_vec());
        debug_assert!(self.check(&program).is_empty());
        self.run(&program)?;
        Ok(())
    }

    /// Reads a full row with legal timing.
    ///
    /// # Errors
    ///
    /// Fails when the address is out of range, or with
    /// [`ControllerError::MissingReadData`] if the read program produced
    /// no data.
    pub fn read_row(&mut self, addr: RowAddr) -> Result<Vec<bool>> {
        let program = self.read_row_program(addr);
        debug_assert!(self.check(&program).is_empty());
        self.run(&program)?.single_read()
    }

    /// Refreshes every bank (destroying all fractional values).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn refresh_all(&mut self) -> Result<()> {
        let banks = self.module.geometry().banks;
        for bank in 0..banks {
            let p = Program::builder()
                .refresh(bank)
                .delay(self.timing.t_rfc.value())
                .build();
            self.run(&p)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, GroupId, ModuleConfig};

    fn controller(group: GroupId) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            group,
            77,
            Geometry::tiny(),
        )))
    }

    #[test]
    fn write_read_roundtrip() {
        let mut mc = controller(GroupId::B);
        let width = mc.module().row_bits();
        let pattern: Vec<bool> = (0..width).map(|i| i % 4 != 2).collect();
        let addr = RowAddr::new(0, 7);
        mc.write_row(addr, &pattern).unwrap();
        assert_eq!(mc.read_row(addr).unwrap(), pattern);
    }

    #[test]
    fn clock_advances_by_program_length() {
        let mut mc = controller(GroupId::B);
        let t0 = mc.clock();
        let p = Program::builder().nop().delay(9).build();
        let outcome = mc.run(&p).unwrap();
        assert_eq!(outcome.cycles(), Cycles(10));
        assert_eq!(mc.clock(), t0 + 10);
    }

    #[test]
    fn run_checked_rejects_frac() {
        let mut mc = controller(GroupId::B);
        let frac = Program::builder()
            .act(RowAddr::new(0, 1))
            .pre(0)
            .delay(5)
            .build();
        let err = mc.run_checked(&frac).unwrap_err();
        assert!(matches!(err, ControllerError::TimingViolations(_)));
        // But run() executes it.
        mc.run(&frac).unwrap();
    }

    #[test]
    fn safe_helpers_are_jedec_clean() {
        let mc = controller(GroupId::B);
        let w = mc.write_row_program(RowAddr::new(0, 1), vec![true; 64]);
        let r = mc.read_row_program(RowAddr::new(0, 1));
        assert!(mc.check(&w).is_empty(), "{:?}", mc.check(&w));
        assert!(mc.check(&r).is_empty(), "{:?}", mc.check(&r));
    }

    #[test]
    fn frac_program_changes_stored_charge_on_group_b() {
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 3);
        mc.write_row(addr, &[true; 64]).unwrap();
        // Ten Frac operations.
        for _ in 0..10 {
            let frac = Program::builder().act(addr).pre(0).delay(5).build();
            mc.run(&frac).unwrap();
        }
        // The stored values are now fractional: a read returns a mixture
        // decided by per-column sense offsets, not all ones.
        let bits = mc.read_row(addr).unwrap();
        let ones = bits.iter().filter(|&&b| b).count();
        assert!(ones > 0 && ones < 64, "ones = {ones}");
    }

    #[test]
    fn stats_count_commands() {
        let mut mc = controller(GroupId::B);
        mc.write_row(RowAddr::new(0, 1), &[false; 64]).unwrap();
        let s = *mc.stats();
        assert_eq!(s.activates, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.precharges, 1);
    }

    #[test]
    fn trace_is_opt_in() {
        let mut mc = controller(GroupId::B);
        mc.write_row(RowAddr::new(0, 1), &[false; 64]).unwrap();
        assert!(mc.take_trace().is_none());
        mc.enable_trace();
        mc.read_row(RowAddr::new(0, 1)).unwrap();
        let trace = mc.take_trace().unwrap();
        assert_eq!(trace.len(), 3); // ACT, RD, PRE
    }

    #[test]
    fn wait_seconds_moves_clock() {
        let mut mc = controller(GroupId::B);
        let t0 = mc.clock();
        mc.wait_seconds(Seconds(1.0));
        assert_eq!(mc.clock() - t0, 400_000_000);
    }

    #[test]
    fn retention_experiment_shape() {
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 2);
        mc.write_row(addr, &[true; 64]).unwrap();
        mc.wait_seconds(Seconds::from_hours(60.0));
        let bits = mc.read_row(addr).unwrap();
        let kept = bits.iter().filter(|&&b| b).count();
        assert!(kept < 64, "no leakage after 60 h");
        assert!(kept > 0, "total loss after 60 h");
    }

    #[test]
    fn partial_write_single_chip_ok_multichip_err() {
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 1);
        mc.write_row(addr, &[true; 64]).unwrap();
        let p = Program::builder()
            .act(addr)
            .delay(6)
            .write_at(0, 8, vec![false; 8])
            .delay(15)
            .pre(0)
            .delay(6)
            .build();
        mc.run(&p).unwrap();
        let bits = mc.read_row(addr).unwrap();
        assert!(bits[0] && !bits[8] && bits[16]);

        let mut mc8 = MemoryController::new(Module::new(ModuleConfig::rank(
            GroupId::B,
            5,
            Geometry::tiny(),
        )));
        mc8.write_row(RowAddr::new(0, 1), &vec![true; 512]).unwrap();
        let p = Program::builder()
            .act(RowAddr::new(0, 1))
            .delay(6)
            .write_at(0, 8, vec![false; 8])
            .build();
        assert!(matches!(
            mc8.run(&p),
            Err(ControllerError::PartialWriteUnsupported { .. })
        ));
    }

    #[test]
    fn single_read_errors_on_readless_program() {
        let mut mc = controller(GroupId::B);
        let p = Program::builder()
            .act(RowAddr::new(0, 1))
            .delay(20)
            .pre(0)
            .delay(6)
            .build();
        let err = mc.run(&p).unwrap().single_read().unwrap_err();
        assert!(matches!(
            err,
            ControllerError::MissingReadData {
                expected: 1,
                got: 0
            }
        ));
    }

    #[test]
    fn single_read_returns_first_read() {
        let mut mc = controller(GroupId::B);
        let addr = RowAddr::new(0, 7);
        mc.write_row(addr, &[true; 64]).unwrap();
        let p = mc.read_row_program(addr);
        let outcome = mc.run(&p).unwrap();
        assert_eq!(outcome.single_read().unwrap(), vec![true; 64]);
    }

    #[test]
    fn refresh_all_runs() {
        let mut mc = controller(GroupId::B);
        mc.write_row(RowAddr::new(1, 3), &[true; 64]).unwrap();
        mc.refresh_all().unwrap();
        assert_eq!(mc.read_row(RowAddr::new(1, 3)).unwrap(), vec![true; 64]);
    }
}
