//! # fracdram-softmc — software-controlled memory controller
//!
//! A SoftMC-style controller for the simulated DRAM of
//! [`fracdram_model`]: programs are explicit command sequences with exact
//! cycle spacing, issued verbatim — including spacings that violate the
//! JEDEC DDR3 standard, which is precisely how FracDRAM's primitives
//! work. A standalone checker reports which constraints a program breaks.
//!
//! ## Example
//!
//! ```
//! use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, RowAddr};
//! use fracdram_softmc::{MemoryController, Program};
//!
//! # fn main() -> Result<(), fracdram_softmc::ControllerError> {
//! let module = Module::new(ModuleConfig::single_chip(GroupId::B, 1, Geometry::tiny()));
//! let mut mc = MemoryController::new(module);
//!
//! let addr = RowAddr::new(0, 1);
//! mc.write_row(addr, &vec![true; 64])?;
//!
//! // The paper's Frac primitive is just a 7-cycle program:
//! let frac = Program::builder().act(addr).pre(0).delay(5).build();
//! assert!(!mc.check(&frac).is_empty(), "frac is out-of-spec by design");
//! mc.run(&frac)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod command;
pub mod compiled;
pub mod controller;
pub mod encoding;
pub mod error;
pub mod program;
pub mod sched;
pub mod timing;
pub mod trace;

pub use command::{CommandKind, DramCommand};
pub use compiled::{CompiledInst, CompiledProgram};
pub use controller::{MemoryController, RunMetrics, RunOutcome};
pub use encoding::{decode, encode, DecodeError};
pub use error::{ControllerError, Result};
pub use program::{Instruction, Program, ProgramBuilder};
pub use sched::{Schedule, ScheduleEntry, ScheduledSlot};
pub use timing::{TimingParams, TimingRule, TimingViolation};
pub use trace::{CommandTrace, CycleStats, TraceEntry, TraceOp};
