//! JEDEC DDR3 timing constraints and violation detection.
//!
//! The JEDEC standard (JESD79-3) specifies minimum gaps between DRAM
//! commands; it is "the MC's responsibility to issue DRAM commands with
//! enough idle cycles in between" (§II-B of the paper). FracDRAM's whole
//! mechanism is *violating* these constraints, so the checker here only
//! reports violations — the controller still executes the program. The
//! report is useful to (a) prove that a primitive really is out-of-spec
//! and (b) verify that the "safe" data-movement helpers are in-spec.

use std::fmt;

use fracdram_model::Cycles;

use crate::command::DramCommand;
use crate::program::Program;

/// Minimum command spacings in memory cycles (2.5 ns each).
///
/// Defaults correspond to DDR3-1333 (the speed grade of the paper's group
/// B modules) expressed in 2.5 ns SoftMC cycles, rounded up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// ACTIVATE → READ/WRITE to the same bank (row to column delay).
    pub t_rcd: Cycles,
    /// ACTIVATE → PRECHARGE to the same bank (row active time).
    pub t_ras: Cycles,
    /// PRECHARGE → ACTIVATE to the same bank (row precharge time).
    pub t_rp: Cycles,
    /// ACTIVATE → ACTIVATE to the same bank (row cycle time).
    pub t_rc: Cycles,
    /// WRITE → PRECHARGE to the same bank (write recovery).
    pub t_wr: Cycles,
    /// REFRESH → any command to the same bank (refresh cycle time).
    pub t_rfc: Cycles,
}

impl Default for TimingParams {
    fn default() -> Self {
        // DDR3-1333: tRCD = tRP = 13.5 ns, tRAS = 36 ns, tRC = 49.5 ns,
        // tWR = 15 ns, tRFC = 160 ns; at 2.5 ns/cycle.
        TimingParams {
            t_rcd: Cycles(6),
            t_ras: Cycles(15),
            t_rp: Cycles(6),
            t_rc: Cycles(20),
            t_wr: Cycles(6),
            t_rfc: Cycles(64),
        }
    }
}

/// Which JEDEC rule a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingRule {
    /// tRCD: column command too soon after ACTIVATE.
    Rcd,
    /// tRAS: PRECHARGE too soon after ACTIVATE.
    Ras,
    /// tRP: ACTIVATE too soon after PRECHARGE.
    Rp,
    /// tRC: ACTIVATE too soon after the previous ACTIVATE.
    Rc,
    /// tWR: PRECHARGE too soon after WRITE.
    Wr,
    /// tRFC: command too soon after REFRESH.
    Rfc,
}

impl fmt::Display for TimingRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TimingRule::Rcd => "tRCD",
            TimingRule::Ras => "tRAS",
            TimingRule::Rp => "tRP",
            TimingRule::Rc => "tRC",
            TimingRule::Wr => "tWR",
            TimingRule::Rfc => "tRFC",
        };
        f.write_str(s)
    }
}

/// One detected timing violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingViolation {
    /// Index of the offending instruction within the program.
    pub instruction: usize,
    /// The violated rule.
    pub rule: TimingRule,
    /// Minimum required gap.
    pub required: Cycles,
    /// Actual gap in the program.
    pub actual: Cycles,
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instruction {}: {} requires {} but got {}",
            self.instruction, self.rule, self.required, self.actual
        )
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankHistory {
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_wr: Option<u64>,
    last_ref: Option<u64>,
}

/// Checks a program against the JEDEC constraints, assuming the first
/// command issues at cycle 0 on an idle device. Returns every violation
/// found (empty = fully in-spec).
pub fn check_program(params: &TimingParams, program: &Program) -> Vec<TimingViolation> {
    let mut violations = Vec::new();
    // Bank histories, grown on demand.
    let mut banks: Vec<BankHistory> = Vec::new();
    let mut t: u64 = 0;
    for (idx, inst) in program.instructions().iter().enumerate() {
        if let Some(bank) = inst.command.bank() {
            if banks.len() <= bank {
                banks.resize(bank + 1, BankHistory::default());
            }
            let h = &mut banks[bank];
            let mut require = |rule: TimingRule, since: Option<u64>, min: Cycles| {
                if let Some(s) = since {
                    let gap = Cycles(t - s);
                    if gap < min {
                        violations.push(TimingViolation {
                            instruction: idx,
                            rule,
                            required: min,
                            actual: gap,
                        });
                    }
                }
            };
            match &inst.command {
                DramCommand::Activate(_) => {
                    require(TimingRule::Rp, h.last_pre, params.t_rp);
                    require(TimingRule::Rc, h.last_act, params.t_rc);
                    require(TimingRule::Rfc, h.last_ref, params.t_rfc);
                    h.last_act = Some(t);
                }
                DramCommand::Precharge { .. } => {
                    require(TimingRule::Ras, h.last_act, params.t_ras);
                    require(TimingRule::Wr, h.last_wr, params.t_wr);
                    require(TimingRule::Rfc, h.last_ref, params.t_rfc);
                    h.last_pre = Some(t);
                }
                DramCommand::Read { .. } => {
                    require(TimingRule::Rcd, h.last_act, params.t_rcd);
                    require(TimingRule::Rfc, h.last_ref, params.t_rfc);
                }
                DramCommand::Write { .. } => {
                    require(TimingRule::Rcd, h.last_act, params.t_rcd);
                    require(TimingRule::Rfc, h.last_ref, params.t_rfc);
                    h.last_wr = Some(t);
                }
                DramCommand::Refresh { .. } => {
                    require(TimingRule::Rp, h.last_pre, params.t_rp);
                    h.last_ref = Some(t);
                }
                DramCommand::Nop => {}
            }
        }
        t += 1 + inst.idle_after.value();
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::RowAddr;

    fn addr(row: usize) -> RowAddr {
        RowAddr::new(0, row)
    }

    #[test]
    fn legal_read_sequence_is_clean() {
        let t = TimingParams::default();
        let p = Program::builder()
            .act(addr(1))
            .delay(t.t_rcd.value())
            .read(0)
            .delay(t.t_ras.value()) // generous
            .pre(0)
            .delay(t.t_rp.value())
            .build();
        assert!(check_program(&t, &p).is_empty());
    }

    #[test]
    fn frac_violates_t_ras() {
        let t = TimingParams::default();
        let frac = Program::builder().act(addr(1)).pre(0).delay(5).build();
        let v = check_program(&t, &frac);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, TimingRule::Ras);
        assert_eq!(v[0].actual, Cycles(1));
        assert_eq!(v[0].required, Cycles(15));
    }

    #[test]
    fn multirow_activation_violates_ras_and_rp() {
        let t = TimingParams::default();
        let p = Program::builder().act(addr(1)).pre(0).act(addr(2)).build();
        let v = check_program(&t, &p);
        let rules: Vec<TimingRule> = v.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&TimingRule::Ras), "{rules:?}");
        assert!(rules.contains(&TimingRule::Rp), "{rules:?}");
        assert!(rules.contains(&TimingRule::Rc), "{rules:?}");
    }

    #[test]
    fn early_read_violates_t_rcd() {
        let t = TimingParams::default();
        let p = Program::builder().act(addr(1)).read(0).build();
        let v = check_program(&t, &p);
        assert!(v.iter().any(|x| x.rule == TimingRule::Rcd));
    }

    #[test]
    fn banks_are_independent() {
        let t = TimingParams::default();
        // Back-to-back ACTs to *different* banks are legal (we do not
        // model tRRD).
        let p = Program::builder()
            .act(RowAddr::new(0, 1))
            .act(RowAddr::new(1, 1))
            .build();
        assert!(check_program(&t, &p).is_empty());
    }

    #[test]
    fn write_recovery_checked() {
        let t = TimingParams::default();
        let p = Program::builder()
            .act(addr(1))
            .delay(t.t_rcd.value())
            .write(0, vec![true; 4])
            .pre(0) // too soon after WR (and fine for RAS: 7 < 15 - also RAS)
            .build();
        let v = check_program(&t, &p);
        assert!(v.iter().any(|x| x.rule == TimingRule::Wr));
    }

    #[test]
    fn violation_display() {
        let v = TimingViolation {
            instruction: 1,
            rule: TimingRule::Ras,
            required: Cycles(15),
            actual: Cycles(1),
        };
        assert_eq!(
            v.to_string(),
            "instruction 1: tRAS requires 15 cycles but got 1 cycles"
        );
    }
}
