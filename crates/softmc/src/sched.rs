//! Cross-bank program scheduler.
//!
//! DRAM banks are independent state machines behind one shared command
//! bus: while one bank sits out its tRCD/tRP/tRAS gap, the bus is free
//! to issue commands to any other bank (`timing::check_program` keeps
//! per-bank histories for exactly this reason — see its
//! `banks_are_independent` test). [`merge`] exploits that slack: it
//! interleaves N independent [`CompiledProgram`]s into one command
//! stream, sliding each whole program forward by a per-program start
//! offset until no two instructions claim the same bus cycle.
//!
//! Correctness rests on two invariants, both enforced structurally:
//!
//! 1. **Intra-program deltas are preserved.** A program is only ever
//!    shifted as a rigid unit, so the gap between any two of its
//!    commands — and therefore every per-bank JEDEC relation — is
//!    byte-for-byte what it was standalone.
//! 2. **Programs are bank-disjoint.** [`merge`] refuses (returns
//!    `None`) when two programs in the same bank namespace touch a
//!    common bank, so no bank's history ever interleaves commands from
//!    two programs.
//!
//! Together these imply the merged stream's per-bank timing profile is
//! identical to running each program alone; [`audit`] re-derives that
//! from first principles (replaying `check_program`'s bank-history
//! logic over the merged stream) rather than trusting the argument.
//!
//! Determinism: placement order is a stable sort on each entry's
//! `(space, order)` key — callers pass `(die, seq)` — so the interleave
//! is a pure function of the request log, never of host timing. That is
//! what lets the serve layer keep its replay byte-identity with
//! scheduling enabled.

use std::collections::BTreeSet;

use crate::command::CommandKind;
use crate::compiled::{CompiledInst, CompiledProgram};
use crate::timing::{TimingParams, TimingRule, TimingViolation};
use fracdram_model::Cycles;

/// One program offered to [`merge`], tagged with its interleave key.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleEntry<'a> {
    /// Bank namespace. Banks only conflict within a namespace; callers
    /// scheduling across dies pass the die id so different dies never
    /// collide on "bank 0".
    pub space: u64,
    /// Stable tiebreak within the merge (per-die sequence number).
    /// Entries are placed in ascending `(space, order)`.
    pub order: u64,
    /// The validated program to place.
    pub program: &'a CompiledProgram,
}

/// One issued instruction of a merged stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledSlot {
    /// Index of the owning entry in the input slice.
    pub entry: usize,
    /// Instruction index within that entry's program.
    pub inst: usize,
    /// Absolute issue cycle in the merged stream.
    pub time: u64,
}

/// A merged command stream: per-entry start offsets plus the flattened,
/// time-sorted slot list.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Issue slots sorted by time (ties impossible: one bus, one
    /// command per cycle).
    pub slots: Vec<ScheduledSlot>,
    /// Start offset of each input entry (indexed like the input slice).
    pub starts: Vec<u64>,
    /// Cycles the merged stream occupies end to end.
    pub total_cycles: u64,
    /// Cycles the same programs occupy back to back (the baseline the
    /// overlap is measured against).
    pub sequential_cycles: u64,
}

impl Schedule {
    /// Idle ticks reclaimed by interleaving: sequential minus merged
    /// occupancy.
    pub fn overlapped_ticks(&self) -> u64 {
        self.sequential_cycles.saturating_sub(self.total_cycles)
    }
}

/// Issue offset of every instruction when the program starts at cycle
/// 0 — the same cascade `check_program` and the controller interpreter
/// walk (`t += 1 + idle_after`).
fn issue_offsets(program: &CompiledProgram) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(program.insts().len());
    let mut t = 0u64;
    for inst in program.insts() {
        offsets.push(t);
        t += 1 + inst.idle_after;
    }
    offsets
}

/// Banks an instruction occupies for conflict purposes (NOPs target no
/// bank).
fn inst_bank(inst: &CompiledInst) -> Option<u32> {
    match inst.kind {
        CommandKind::Nop => None,
        _ => Some(inst.bank),
    }
}

/// The set of `(space, bank)` pairs a program touches.
fn banks_of(space: u64, program: &CompiledProgram) -> BTreeSet<(u64, u32)> {
    program
        .insts()
        .iter()
        .filter_map(inst_bank)
        .map(|b| (space, b))
        .collect()
}

/// Merges independent programs into one interleaved stream.
///
/// Entries are placed in ascending `(space, order)`: the first program
/// starts at cycle 0, and each subsequent one slides to the smallest
/// start offset where none of its issue cycles collides with an
/// already-placed instruction (the command bus carries one command per
/// cycle; idle gaps are free).
///
/// Returns `None` — the caller's cue to fall back to sequential
/// execution — when the entry set is empty or when two entries in the
/// same namespace touch a common bank (interleaving them would weave
/// two command histories through one bank's state machine, which the
/// correctness argument does not cover).
pub fn merge(entries: &[ScheduleEntry]) -> Option<Schedule> {
    if entries.is_empty() {
        return None;
    }
    // Bank-disjointness across the whole set.
    let mut claimed: BTreeSet<(u64, u32)> = BTreeSet::new();
    for entry in entries {
        let banks = banks_of(entry.space, entry.program);
        if banks.iter().any(|b| claimed.contains(b)) {
            return None;
        }
        claimed.extend(banks);
    }

    // Stable placement order: ascending (space, order), input index as
    // the final tiebreak so duplicate keys stay deterministic.
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by_key(|&i| (entries[i].space, entries[i].order, i));

    let mut occupied: BTreeSet<u64> = BTreeSet::new();
    let mut starts = vec![0u64; entries.len()];
    let mut slots: Vec<ScheduledSlot> = Vec::new();
    let mut total_cycles = 0u64;
    let mut sequential_cycles = 0u64;
    for &idx in &order {
        let program = entries[idx].program;
        let offsets = issue_offsets(program);
        let mut start = 0u64;
        // The scan terminates: past the largest occupied cycle every
        // slot is free.
        while offsets.iter().any(|o| occupied.contains(&(start + o))) {
            start += 1;
        }
        for (inst, o) in offsets.iter().enumerate() {
            occupied.insert(start + o);
            slots.push(ScheduledSlot {
                entry: idx,
                inst,
                time: start + o,
            });
        }
        starts[idx] = start;
        total_cycles = total_cycles.max(start + program.total_cycles());
        sequential_cycles += program.total_cycles();
    }
    slots.sort_by_key(|s| s.time);
    Some(Schedule {
        slots,
        starts,
        total_cycles,
        sequential_cycles,
    })
}

/// Replays the JEDEC checker over a merged stream and reports every
/// violation **introduced by the interleave**: a violation the owning
/// program also commits standalone (a Frac's deliberate short tRAS,
/// say) is expected and filtered out; anything left means the schedule
/// broke a constraint the programs respected on their own. An empty
/// result is the timing-audit pass.
pub fn audit(
    timing: &TimingParams,
    entries: &[ScheduleEntry],
    schedule: &Schedule,
) -> Vec<(usize, TimingViolation)> {
    #[derive(Clone, Copy, Default)]
    struct BankHistory {
        last_act: Option<u64>,
        last_pre: Option<u64>,
        last_wr: Option<u64>,
        last_ref: Option<u64>,
    }
    let mut banks: std::collections::BTreeMap<(u64, u32), BankHistory> =
        std::collections::BTreeMap::new();
    let mut fresh = Vec::new();
    for slot in &schedule.slots {
        let entry = &entries[slot.entry];
        let inst = &entry.program.insts()[slot.inst];
        let Some(bank) = inst_bank(inst) else {
            continue;
        };
        let t = slot.time;
        let h = banks.entry((entry.space, bank)).or_default();
        let mut violations: Vec<(TimingRule, Cycles)> = Vec::new();
        let mut require = |rule: TimingRule, since: Option<u64>, min: Cycles| {
            if let Some(s) = since {
                if Cycles(t - s) < min {
                    violations.push((rule, min));
                }
            }
        };
        match inst.kind {
            CommandKind::Activate => {
                require(TimingRule::Rp, h.last_pre, timing.t_rp);
                require(TimingRule::Rc, h.last_act, timing.t_rc);
                require(TimingRule::Rfc, h.last_ref, timing.t_rfc);
                h.last_act = Some(t);
            }
            CommandKind::Precharge => {
                require(TimingRule::Ras, h.last_act, timing.t_ras);
                require(TimingRule::Wr, h.last_wr, timing.t_wr);
                require(TimingRule::Rfc, h.last_ref, timing.t_rfc);
                h.last_pre = Some(t);
            }
            CommandKind::Read => {
                require(TimingRule::Rcd, h.last_act, timing.t_rcd);
                require(TimingRule::Rfc, h.last_ref, timing.t_rfc);
            }
            CommandKind::Write => {
                require(TimingRule::Rcd, h.last_act, timing.t_rcd);
                require(TimingRule::Rfc, h.last_ref, timing.t_rfc);
                h.last_wr = Some(t);
            }
            CommandKind::Refresh => {
                require(TimingRule::Rp, h.last_pre, timing.t_rp);
                h.last_ref = Some(t);
            }
            CommandKind::Nop => {}
        }
        for (rule, required) in violations {
            let standalone = entry
                .program
                .violations()
                .iter()
                .any(|v| v.instruction == slot.inst && v.rule == rule);
            if !standalone {
                let start = schedule.starts[slot.entry];
                fresh.push((
                    slot.entry,
                    TimingViolation {
                        instruction: slot.inst,
                        rule,
                        required,
                        actual: Cycles(t - start),
                    },
                ));
            }
        }
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use fracdram_model::RowAddr;

    fn timing() -> TimingParams {
        TimingParams::default()
    }

    fn compile(p: &Program) -> CompiledProgram {
        CompiledProgram::compile(&timing(), p)
    }

    fn safe_read(bank: usize, row: usize) -> Program {
        let t = timing();
        Program::builder()
            .act(RowAddr::new(bank, row))
            .delay(t.t_rcd.value())
            .read(bank)
            .delay(t.t_ras.value())
            .pre(bank)
            .delay(t.t_rp.value())
            .build()
    }

    fn frac(bank: usize, row: usize) -> Program {
        Program::builder()
            .act(RowAddr::new(bank, row))
            .pre(bank)
            .delay(5)
            .build()
    }

    fn entries<'a>(programs: &'a [CompiledProgram]) -> Vec<ScheduleEntry<'a>> {
        programs
            .iter()
            .enumerate()
            .map(|(i, p)| ScheduleEntry {
                space: 0,
                order: i as u64,
                program: p,
            })
            .collect()
    }

    #[test]
    fn merge_overlaps_disjoint_banks() {
        let programs = [compile(&safe_read(0, 1)), compile(&safe_read(1, 1))];
        let schedule = merge(&entries(&programs)).unwrap();
        assert!(
            schedule.total_cycles < schedule.sequential_cycles,
            "two bank-disjoint reads must overlap"
        );
        assert!(schedule.overlapped_ticks() > 0);
        // The second program starts inside the first one's tRCD gap.
        assert!(schedule.starts[1] > 0);
        assert!(schedule.starts[1] < programs[0].total_cycles());
        assert!(audit(&timing(), &entries(&programs), &schedule).is_empty());
    }

    #[test]
    fn merge_refuses_shared_banks() {
        let programs = [compile(&safe_read(0, 1)), compile(&safe_read(0, 2))];
        assert!(merge(&entries(&programs)).is_none());
        assert!(merge(&[]).is_none());
    }

    #[test]
    fn namespaces_keep_same_bank_numbers_apart() {
        let programs = [compile(&safe_read(0, 1)), compile(&safe_read(0, 2))];
        let tagged = [
            ScheduleEntry {
                space: 3,
                order: 0,
                program: &programs[0],
            },
            ScheduleEntry {
                space: 7,
                order: 0,
                program: &programs[1],
            },
        ];
        let schedule = merge(&tagged).unwrap();
        assert!(schedule.overlapped_ticks() > 0);
        assert!(audit(&timing(), &tagged, &schedule).is_empty());
    }

    #[test]
    fn single_program_schedules_verbatim() {
        let programs = [compile(&safe_read(0, 1))];
        let schedule = merge(&entries(&programs)).unwrap();
        assert_eq!(schedule.starts, vec![0]);
        assert_eq!(schedule.total_cycles, programs[0].total_cycles());
        assert_eq!(schedule.overlapped_ticks(), 0);
        let offsets: Vec<u64> = schedule.slots.iter().map(|s| s.time).collect();
        assert_eq!(offsets, issue_offsets(&programs[0]));
    }

    #[test]
    fn placement_is_a_function_of_the_key_not_input_order() {
        let programs = [compile(&safe_read(0, 1)), compile(&safe_read(1, 1))];
        let forward = [
            ScheduleEntry {
                space: 0,
                order: 0,
                program: &programs[0],
            },
            ScheduleEntry {
                space: 0,
                order: 1,
                program: &programs[1],
            },
        ];
        let reversed = [forward[1], forward[0]];
        let a = merge(&forward).unwrap();
        let b = merge(&reversed).unwrap();
        // Same keys → same absolute placement, however the slice is
        // ordered; only the entry indices swap.
        assert_eq!(a.starts[0], b.starts[1]);
        assert_eq!(a.starts[1], b.starts[0]);
        assert_eq!(a.total_cycles, b.total_cycles);
        let times = |s: &Schedule| s.slots.iter().map(|x| x.time).collect::<Vec<_>>();
        assert_eq!(times(&a), times(&b));
    }

    #[test]
    fn deliberate_violations_survive_the_audit_fresh_ones_do_not() {
        // A Frac program violates tRAS on purpose; merging two of them
        // on different banks must not report those as scheduler bugs.
        let programs = [compile(&frac(0, 1)), compile(&frac(1, 1))];
        let schedule = merge(&entries(&programs)).unwrap();
        assert!(audit(&timing(), &entries(&programs), &schedule).is_empty());

        // A hand-built bogus schedule that squeezes a clean program's
        // ACT→PRE gap must be caught.
        let clean = [compile(&safe_read(0, 1))];
        let e = entries(&clean);
        let mut bogus = merge(&e).unwrap();
        // Slide the PRE (instruction 2) to one cycle after the ACT.
        for slot in &mut bogus.slots {
            if slot.inst == 2 {
                slot.time = 1;
            }
        }
        bogus.slots.sort_by_key(|s| s.time);
        let fresh = audit(&timing(), &e, &bogus);
        assert!(fresh.iter().any(|(_, v)| v.rule == TimingRule::Ras));
    }

    #[test]
    fn many_programs_fill_each_others_gaps() {
        // Four banks' worth of safe reads: the merged stream should be
        // dramatically shorter than the sequential baseline, and the
        // audit must stay clean.
        let programs: Vec<CompiledProgram> =
            (0..4).map(|b| compile(&safe_read(b, b + 1))).collect();
        let e = entries(&programs);
        let schedule = merge(&e).unwrap();
        assert!(audit(&timing(), &e, &schedule).is_empty());
        assert!(
            schedule.total_cycles <= schedule.sequential_cycles / 2,
            "4-way interleave should reclaim at least half the idle: {} vs {}",
            schedule.total_cycles,
            schedule.sequential_cycles
        );
        // One command per bus cycle.
        let mut times: Vec<u64> = schedule.slots.iter().map(|s| s.time).collect();
        let n = times.len();
        times.dedup();
        assert_eq!(times.len(), n, "bus slot collision");
    }
}
