//! Compiled command programs.
//!
//! [`Program`] is the authoring representation: a `Vec` of owned
//! [`DramCommand`]s, convenient to build but expensive to interpret —
//! every run re-walks the enum, and recording a trace used to clone each
//! command (including a WRITE's payload vector). A [`CompiledProgram`]
//! is the execution representation: JEDEC validation happens once at
//! compile time, every instruction is flattened into a `Copy` record
//! with its operands pre-decoded, and write payloads live in one shared
//! bit pool. The controller caches compiled programs keyed by
//! [`program_hash`] (a hash of the wire encoding), so the experiment
//! loops that rebuild the same Frac/Half-m program thousands of times
//! validate and flatten it exactly once.

use fracdram_model::variation::splitmix64;

use crate::command::{CommandKind, DramCommand};
use crate::program::Program;
use crate::timing::{check_program, TimingParams, TimingViolation};
use crate::trace::TraceOp;

/// One flattened, pre-decoded instruction. Operand fields are only
/// meaningful for the kinds that use them (`row` for ACT, `start_col`
/// and the pool range for WR); the rest are zero.
#[derive(Debug, Clone, Copy)]
pub struct CompiledInst {
    /// Command discriminant.
    pub kind: CommandKind,
    /// Target bank (0 for NOP).
    pub bank: u32,
    /// Target row (ACTIVATE only).
    pub row: u32,
    /// First written column (WRITE only).
    pub start_col: u32,
    /// Offset of this WRITE's payload in the program's bit pool.
    pub data_offset: u32,
    /// Payload length in bits (WRITE only).
    pub data_len: u32,
    /// Idle cycles after the command issues.
    pub idle_after: u64,
}

impl CompiledInst {
    /// The compact trace record for this instruction.
    pub fn trace_op(&self) -> TraceOp {
        TraceOp {
            kind: self.kind,
            bank: self.bank,
            row: self.row,
            start_col: self.start_col,
            len: self.data_len,
        }
    }
}

/// A validated, flattened program ready for zero-allocation execution.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    insts: Vec<CompiledInst>,
    pool: Vec<bool>,
    total_cycles: u64,
    violations: Vec<TimingViolation>,
    reads: usize,
    cacheable: bool,
}

impl CompiledProgram {
    /// Validates `program` against `timing` and flattens it. The
    /// violation report is retained so `run_checked` never re-validates
    /// a cached program.
    pub fn compile(timing: &TimingParams, program: &Program) -> Self {
        let violations = check_program(timing, program);
        let mut insts = Vec::with_capacity(program.len());
        let mut pool = Vec::new();
        let mut reads = 0usize;
        for inst in program.instructions() {
            let idle_after = inst.idle_after.value();
            let mut c = CompiledInst {
                kind: inst.command.kind(),
                bank: inst.command.bank().unwrap_or(0) as u32,
                row: 0,
                start_col: 0,
                data_offset: 0,
                data_len: 0,
                idle_after,
            };
            match &inst.command {
                DramCommand::Activate(addr) => c.row = addr.row as u32,
                DramCommand::Read { .. } => reads += 1,
                DramCommand::Write {
                    start_col, bits, ..
                } => {
                    c.start_col = *start_col as u32;
                    c.data_offset = pool.len() as u32;
                    c.data_len = bits.len() as u32;
                    pool.extend_from_slice(bits);
                }
                _ => {}
            }
            insts.push(c);
        }
        CompiledProgram {
            insts,
            cacheable: pool.is_empty(),
            pool,
            total_cycles: program.total_cycles().value(),
            violations,
            reads,
        }
    }

    /// The flattened instruction stream.
    pub fn insts(&self) -> &[CompiledInst] {
        &self.insts
    }

    /// The write payload of `inst` (empty for non-writes).
    pub fn payload(&self, inst: &CompiledInst) -> &[bool] {
        &self.pool[inst.data_offset as usize..(inst.data_offset + inst.data_len) as usize]
    }

    /// Total cycles the program occupies (matches
    /// `Program::total_cycles`).
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// The JEDEC violations recorded at compile time.
    pub fn violations(&self) -> &[TimingViolation] {
        &self.violations
    }

    /// Number of READ instructions (sizes the read-back buffer).
    pub fn reads(&self) -> usize {
        self.reads
    }

    /// Whether the program is data-free and therefore worth caching:
    /// WRITE payloads would pin arbitrary amounts of data in the cache
    /// and rarely repeat byte-for-byte.
    pub fn cacheable(&self) -> bool {
        self.cacheable
    }

    /// Cheap collision sanity check: a cache hit must agree with the
    /// probing program on shape.
    pub fn matches(&self, program: &Program) -> bool {
        self.insts.len() == program.len() && self.total_cycles == program.total_cycles().value()
    }
}

/// Hash of a program's wire encoding, without materializing it: each
/// word that [`crate::encoding::encode`] would emit is folded through
/// splitmix64.
pub fn program_hash(timing_free_program: &Program) -> u64 {
    let mut h: u64 = 0xA076_1D64_78BD_642F;
    let mix = |h: &mut u64, w: u64| *h = splitmix64(*h ^ w);
    for inst in timing_free_program.instructions() {
        let idle = inst.idle_after.value() & 0xFFFF;
        let (op, row, bank, aux): (u64, u64, u64, u64) = match &inst.command {
            DramCommand::Nop => (0, 0, 0, 0),
            DramCommand::Activate(addr) => (1, addr.row as u64, addr.bank as u64, 0),
            DramCommand::Precharge { bank } => (2, 0, *bank as u64, 0),
            DramCommand::Read { bank } => (3, 0, *bank as u64, 0),
            DramCommand::Write {
                bank, start_col, ..
            } => (4, 0, *bank as u64, *start_col as u64),
            DramCommand::Refresh { bank } => (5, 0, *bank as u64, 0),
        };
        mix(
            &mut h,
            (op << 56)
                | (idle << 40)
                | ((row & 0xFFFF) << 24)
                | ((bank & 0xFF) << 16)
                | (aux & 0xFFFF),
        );
        if let DramCommand::Write { bits, .. } = &inst.command {
            mix(&mut h, bits.len() as u64);
            for chunk in bits.chunks(64) {
                let mut word = 0u64;
                for (i, &b) in chunk.iter().enumerate() {
                    if b {
                        word |= 1 << i;
                    }
                }
                mix(&mut h, word);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use fracdram_model::RowAddr;

    fn timing() -> TimingParams {
        TimingParams::default()
    }

    fn safe_read(row: usize) -> Program {
        let t = timing();
        Program::builder()
            .act(RowAddr::new(0, row))
            .delay(t.t_rcd.value())
            .read(0)
            .delay(t.t_ras.value())
            .pre(0)
            .delay(t.t_rp.value())
            .build()
    }

    #[test]
    fn compile_preserves_shape_and_validation() {
        let t = timing();
        let p = safe_read(3);
        let c = CompiledProgram::compile(&t, &p);
        assert_eq!(c.insts().len(), p.len());
        assert_eq!(c.total_cycles(), p.total_cycles().value());
        assert!(c.violations().is_empty());
        assert_eq!(c.reads(), 1);
        assert!(c.cacheable());
        assert!(c.matches(&p));

        let frac = Program::builder().act(RowAddr::new(0, 3)).pre(0).build();
        let cf = CompiledProgram::compile(&t, &frac);
        assert!(!cf.violations().is_empty(), "frac is out-of-spec");
    }

    #[test]
    fn write_payloads_share_one_pool() {
        let t = timing();
        let bits = vec![true, false, true, true];
        let p = Program::builder()
            .act(RowAddr::new(0, 1))
            .delay(t.t_rcd.value())
            .write(0, bits.clone())
            .delay(t.t_ras.value())
            .pre(0)
            .build();
        let c = CompiledProgram::compile(&t, &p);
        assert!(!c.cacheable(), "write programs are not cached");
        let wr = c
            .insts()
            .iter()
            .find(|i| i.kind == CommandKind::Write)
            .copied()
            .unwrap();
        assert_eq!(c.payload(&wr), &bits[..]);
        assert_eq!(wr.start_col, 0);
        assert_eq!(wr.trace_op().to_string(), "WR(0, 0+4)");
    }

    #[test]
    fn program_hash_discriminates() {
        let a = safe_read(3);
        let b = safe_read(4);
        assert_eq!(program_hash(&a), program_hash(&safe_read(3)));
        assert_ne!(program_hash(&a), program_hash(&b));

        // Same commands, different spacing → different hash.
        let frac5 = Program::builder()
            .act(RowAddr::new(0, 1))
            .pre(0)
            .delay(5)
            .build();
        let frac6 = Program::builder()
            .act(RowAddr::new(0, 1))
            .pre(0)
            .delay(6)
            .build();
        assert_ne!(program_hash(&frac5), program_hash(&frac6));

        // Different payload bits → different hash.
        let w = |bits: Vec<bool>| {
            Program::builder()
                .act(RowAddr::new(0, 1))
                .delay(6)
                .write(0, bits)
                .build()
        };
        assert_ne!(
            program_hash(&w(vec![true, false])),
            program_hash(&w(vec![false, true]))
        );
    }
}
