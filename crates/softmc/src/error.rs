//! Controller error type.

use std::error::Error as StdError;
use std::fmt;

use fracdram_model::ModelError;

use crate::timing::TimingViolation;

/// Errors reported by the memory controller.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerError {
    /// The device model rejected a command (address/width problems, or a
    /// data command to a closed bank).
    Model(ModelError),
    /// A checked run refused a program containing timing violations.
    TimingViolations(Vec<TimingViolation>),
    /// A partial-row WRITE was attempted on a multi-chip module (byte-lane
    /// striping makes partial writes ambiguous; use a single-chip module
    /// or a full-row write).
    PartialWriteUnsupported {
        /// Number of chips on the module.
        chips: usize,
    },
    /// A program finished without producing the READ data the caller
    /// required. Previously this yielded a silently empty row that
    /// downstream per-column loops treated as width-0 success.
    MissingReadData {
        /// READs the caller expected the program to issue.
        expected: usize,
        /// READs the program actually issued.
        got: usize,
    },
    /// A run exceeded the controller's per-run cycle budget. The run is
    /// aborted mid-program; device state reflects the instructions that
    /// executed before the budget tripped.
    BudgetExceeded {
        /// Configured per-run cycle budget.
        budget: u64,
        /// Cycles consumed when the budget check fired.
        spent: u64,
    },
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerError::Model(e) => write!(f, "device error: {e}"),
            ControllerError::TimingViolations(v) => {
                write!(f, "program violates {} JEDEC timing constraint(s)", v.len())
            }
            ControllerError::PartialWriteUnsupported { chips } => write!(
                f,
                "partial-row write is unsupported on a {chips}-chip module"
            ),
            ControllerError::MissingReadData { expected, got } => write!(
                f,
                "program produced {got} READ result(s), caller requires {expected}"
            ),
            ControllerError::BudgetExceeded { budget, spent } => write!(
                f,
                "run exceeded the {budget}-cycle budget ({spent} cycles spent)"
            ),
        }
    }
}

impl StdError for ControllerError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ControllerError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ControllerError {
    fn from(e: ModelError) -> Self {
        ControllerError::Model(e)
    }
}

/// Convenience result alias for controller operations.
pub type Result<T> = std::result::Result<T, ControllerError>;

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::Cycles;

    #[test]
    fn display_and_source() {
        let e = ControllerError::Model(ModelError::BankClosed { bank: 2 });
        assert!(e.to_string().contains("bank 2"));
        assert!(e.source().is_some());

        let v = ControllerError::TimingViolations(vec![TimingViolation {
            instruction: 0,
            rule: crate::timing::TimingRule::Ras,
            required: Cycles(15),
            actual: Cycles(1),
        }]);
        assert!(v.to_string().contains("1 JEDEC"));

        let m = ControllerError::MissingReadData {
            expected: 1,
            got: 0,
        };
        assert!(m.to_string().contains("0 READ result(s)"));
        assert!(m.source().is_none());

        let b = ControllerError::BudgetExceeded {
            budget: 100,
            spent: 108,
        };
        assert!(b.to_string().contains("100-cycle budget"));
        assert!(b.to_string().contains("108 cycles"));
        assert!(b.source().is_none());
    }

    #[test]
    fn from_model_error() {
        let e: ControllerError = ModelError::BankClosed { bank: 0 }.into();
        assert!(matches!(e, ControllerError::Model(_)));
    }
}
