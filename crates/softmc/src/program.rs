//! SoftMC-style command programs.
//!
//! A [`Program`] is an ordered list of DRAM commands, each followed by an
//! explicit number of idle cycles. This mirrors how SoftMC exposes the
//! command bus to software: the host composes an instruction sequence with
//! exact inter-command spacing, ships it to the FPGA, and the hardware
//! issues it cycle-accurately. All FracDRAM primitives are just programs
//! with particular (out-of-spec) spacings.

use std::fmt;

use fracdram_model::{Cycles, RowAddr};

use crate::command::DramCommand;

/// One program slot: a command plus the idle gap after it.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The command to issue.
    pub command: DramCommand,
    /// Idle cycles inserted *after* the command before the next one.
    pub idle_after: Cycles,
}

/// An executable command sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Starts building a program fluently.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder {
            program: Program::new(),
        }
    }

    /// The instructions in issue order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Total duration: every command occupies one bus cycle plus its idle
    /// gap. This is the figure the paper quotes when it says a Frac
    /// operation takes 7 memory cycles (2 command cycles + 5 idle).
    pub fn total_cycles(&self) -> Cycles {
        self.instructions
            .iter()
            .map(|i| Cycles::ONE + i.idle_after)
            .sum()
    }

    /// Appends an instruction.
    pub fn push(&mut self, command: DramCommand, idle_after: Cycles) {
        self.instructions.push(Instruction {
            command,
            idle_after,
        });
    }

    /// Appends all instructions of another program.
    pub fn extend_from(&mut self, other: &Program) {
        self.instructions.extend(other.instructions.iter().cloned());
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.instructions.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", inst.command)?;
            if inst.idle_after.value() > 0 {
                write!(f, " <{}>", inst.idle_after.value())?;
            }
        }
        Ok(())
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Program {
            instructions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

/// Fluent builder for [`Program`].
///
/// Commands default to zero idle cycles after them — back-to-back issue,
/// the FracDRAM regime. Use [`ProgramBuilder::delay`] to insert idle
/// cycles after the most recent command.
///
/// # Examples
///
/// The paper's Frac primitive (§III-A): ACTIVATE then PRECHARGE
/// back-to-back, then wait out the precharge — 7 cycles total.
///
/// ```
/// use fracdram_softmc::Program;
/// use fracdram_model::RowAddr;
///
/// let frac = Program::builder()
///     .act(RowAddr::new(0, 1))
///     .pre(0)
///     .delay(5)
///     .build();
/// assert_eq!(frac.total_cycles().value(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Appends an ACTIVATE.
    pub fn act(mut self, addr: RowAddr) -> Self {
        self.program.push(DramCommand::Activate(addr), Cycles::ZERO);
        self
    }

    /// Appends a PRECHARGE.
    pub fn pre(mut self, bank: usize) -> Self {
        self.program
            .push(DramCommand::Precharge { bank }, Cycles::ZERO);
        self
    }

    /// Appends a READ.
    pub fn read(mut self, bank: usize) -> Self {
        self.program.push(DramCommand::Read { bank }, Cycles::ZERO);
        self
    }

    /// Appends a WRITE of `bits` starting at column 0.
    pub fn write(self, bank: usize, bits: Vec<bool>) -> Self {
        self.write_at(bank, 0, bits)
    }

    /// Appends a WRITE of `bits` starting at `start_col`.
    pub fn write_at(mut self, bank: usize, start_col: usize, bits: Vec<bool>) -> Self {
        self.program.push(
            DramCommand::Write {
                bank,
                start_col,
                bits,
            },
            Cycles::ZERO,
        );
        self
    }

    /// Appends a REFRESH.
    pub fn refresh(mut self, bank: usize) -> Self {
        self.program
            .push(DramCommand::Refresh { bank }, Cycles::ZERO);
        self
    }

    /// Appends an explicit NOP bus cycle.
    pub fn nop(mut self) -> Self {
        self.program.push(DramCommand::Nop, Cycles::ZERO);
        self
    }

    /// Adds `cycles` idle cycles after the most recent command.
    ///
    /// # Panics
    ///
    /// Panics if no command has been appended yet (an initial delay is
    /// meaningless — programs start when their first command issues).
    pub fn delay(mut self, cycles: u64) -> Self {
        let last = self
            .program
            .instructions
            .last_mut()
            .expect("delay requires a preceding command");
        last.idle_after += Cycles(cycles);
        self
    }

    /// Finishes building.
    pub fn build(self) -> Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frac_program_is_seven_cycles() {
        let p = Program::builder()
            .act(RowAddr::new(0, 1))
            .pre(0)
            .delay(5)
            .build();
        assert_eq!(p.total_cycles(), Cycles(7));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn multirow_activation_program() {
        // ACT(R1)-PRE-ACT(R2) with no idle cycles: 3 cycles of commands.
        let p = Program::builder()
            .act(RowAddr::new(0, 1))
            .pre(0)
            .act(RowAddr::new(0, 2))
            .build();
        assert_eq!(p.total_cycles(), Cycles(3));
    }

    #[test]
    fn delay_accumulates() {
        let p = Program::builder().nop().delay(3).delay(4).build();
        assert_eq!(p.total_cycles(), Cycles(8));
    }

    #[test]
    #[should_panic(expected = "preceding command")]
    fn leading_delay_panics() {
        let _ = Program::builder().delay(1);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Program::builder().nop().build();
        let b = Program::builder().pre(0).delay(5).build();
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total_cycles(), Cycles(7));
    }

    #[test]
    fn display_shows_gaps() {
        let p = Program::builder()
            .act(RowAddr::new(0, 1))
            .pre(0)
            .delay(5)
            .build();
        assert_eq!(p.to_string(), "ACT(0, 1) PRE(0) <5>");
    }

    #[test]
    fn collect_from_instructions() {
        let p: Program = vec![Instruction {
            command: DramCommand::Nop,
            idle_after: Cycles(2),
        }]
        .into_iter()
        .collect();
        assert_eq!(p.total_cycles(), Cycles(3));
    }
}
