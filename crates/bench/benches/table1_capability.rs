//! Table I bench: the per-module capability survey (Frac probe +
//! canonical multi-row activation probes) across representative groups.

use fracdram::multirow::survey;
use fracdram_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig};
use fracdram_softmc::MemoryController;

fn geometry() -> Geometry {
    Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 256,
    }
}

fn bench_survey(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/survey");
    group.sample_size(20);
    for g in [GroupId::B, GroupId::C, GroupId::F, GroupId::J] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter(|| {
                let mut mc =
                    MemoryController::new(Module::new(ModuleConfig::single_chip(g, 1, geometry())));
                survey(&mut mc).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_survey);
criterion_main!(benches);
