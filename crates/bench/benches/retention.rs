//! Retention-profiling benches (Fig. 6): one full five-probe bucket
//! measurement of a row, with and without Frac operations, plus the
//! classification pass.

use fracdram::retention::{classify_cells, measure_row};
use fracdram_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, RowAddr};
use fracdram_softmc::MemoryController;

fn controller() -> MemoryController {
    let geometry = Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 512,
    };
    MemoryController::new(Module::new(ModuleConfig::single_chip(
        GroupId::B,
        11,
        geometry,
    )))
}

fn bench_retention(c: &mut Criterion) {
    let mut group = c.benchmark_group("retention");
    group.sample_size(20);
    let mut mc = controller();
    let row = RowAddr::new(0, 7);
    for ops in [0usize, 5] {
        group.bench_with_input(BenchmarkId::new("measure_row", ops), &ops, |b, &ops| {
            b.iter(|| measure_row(&mut mc, row, ops).unwrap());
        });
    }
    let per_count: Vec<_> = (0..=5)
        .map(|n| measure_row(&mut mc, row, n).unwrap())
        .collect();
    group.bench_function("classify_cells", |b| {
        b.iter(|| classify_cells(&per_count));
    });
    group.finish();
}

criterion_group!(benches, bench_retention);
criterion_main!(benches);
