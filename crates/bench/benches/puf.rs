//! Frac-PUF benches (Figs. 11-12): one challenge evaluation at two
//! response widths, the intra-HD comparison, and the whitening pass.

use fracdram::puf::{challenge_set, evaluate, whitened_stream, Challenge};
use fracdram_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig};
use fracdram_softmc::MemoryController;
use fracdram_stats::hamming::normalized_distance;

fn controller(columns: usize) -> MemoryController {
    let geometry = Geometry {
        banks: 4,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns,
    };
    MemoryController::new(Module::new(ModuleConfig::single_chip(
        GroupId::B,
        13,
        geometry,
    )))
}

fn bench_puf(c: &mut Criterion) {
    let mut group = c.benchmark_group("puf/evaluate");
    for cols in [512usize, 4096] {
        let mut mc = controller(cols);
        let challenge = Challenge::new(0, 9);
        group.bench_with_input(BenchmarkId::from_parameter(cols), &cols, |b, _| {
            b.iter(|| evaluate(&mut mc, challenge).unwrap());
        });
    }
    group.finish();

    let mut mc = controller(1024);
    let geometry = *mc.module().geometry();
    let challenges = challenge_set(&geometry, 16, 1);
    let responses: Vec<_> = challenges
        .iter()
        .map(|&ch| evaluate(&mut mc, ch).unwrap())
        .collect();
    c.bench_function("puf/intra_hd", |b| {
        b.iter(|| normalized_distance(&responses[0], &responses[1]));
    });
    c.bench_function("puf/whitened_stream_16_responses", |b| {
        b.iter(|| whitened_stream(&responses));
    });
}

criterion_group!(benches, bench_puf);
criterion_main!(benches);
