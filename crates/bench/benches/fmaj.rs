//! F-MAJ benches (Figs. 9-10): one majority through the four-row
//! activation (including the fractional-row preparation) and the
//! six-combination coverage scan, on groups B and C.

use fracdram::fmaj::{combo_breakdown, fmaj, FmajConfig};
use fracdram::rowsets::Quad;
use fracdram_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, SubarrayAddr};
use fracdram_softmc::MemoryController;

fn controller(group: GroupId) -> MemoryController {
    let geometry = Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 512,
    };
    MemoryController::new(Module::new(ModuleConfig::single_chip(group, 7, geometry)))
}

fn bench_fmaj(c: &mut Criterion) {
    let mut group_bench = c.benchmark_group("fmaj/single_operation");
    for g in [GroupId::B, GroupId::C, GroupId::D] {
        let mut mc = controller(g);
        let geometry = *mc.module().geometry();
        let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), g).unwrap();
        let config = FmajConfig::best_for(g);
        let width = mc.module().row_bits();
        let a: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
        let b_op: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
        let c_op: Vec<bool> = (0..width).map(|i| i % 5 == 0).collect();
        group_bench.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, _| {
            b.iter(|| fmaj(&mut mc, &quad, &config, [&a, &b_op, &c_op]).unwrap());
        });
    }
    group_bench.finish();

    let mut slow = c.benchmark_group("fmaj/slow");
    slow.sample_size(10);
    let mut mc = controller(GroupId::C);
    let geometry = *mc.module().geometry();
    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::C).unwrap();
    let config = FmajConfig::best_for(GroupId::C);
    slow.bench_function("coverage_six_combos", |b| {
        b.iter(|| combo_breakdown(&mut mc, &quad, &config).unwrap());
    });
    slow.finish();
}

criterion_group!(benches, bench_fmaj);
criterion_main!(benches);
