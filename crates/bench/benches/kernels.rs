//! Sub-array event-kernel microbenches plus the fig10/fig11 fleet task
//! bodies — the measurements the column-kernel rewrite is judged by.
//!
//! The kernel benches drive one [`Subarray`] directly through the same
//! command sequences the paper's primitives use, so each iteration fires
//! a known set of internal events over a known column count:
//!
//! - `share_kernel/frac`: interrupted single-row activation — one
//!   charge-share plus one word-line close per iteration;
//! - `share_kernel/halfm`: interrupted **multi-row** activation — one
//!   weighted four-row share plus the asymmetric Half-m closure;
//! - `sense_kernel`: a full activate → sense → restore → close cycle;
//! - `leak_kernel`: a millisecond leakage step over the whole row.
//!
//! The task-body benches run the actual fleet task bodies of the two
//! heaviest figures (`fig10` F-MAJ stability, `fig11` PUF evaluation),
//! which is where the acceptance speedup is measured:
//!
//! ```text
//! cargo bench -p fracdram-bench --bench kernels -- --json BENCH_kernels.json
//! ```

use fracdram::fmaj::FmajConfig;
use fracdram::puf::{challenge_set, evaluate};
use fracdram::rowsets::Quad;
use fracdram_bench::{black_box, criterion_group, criterion_main, Criterion};
use fracdram_experiments::{setup, tasks};
use fracdram_model::faults::{FaultConfig, FaultPlan};
use fracdram_model::subarray::{Ctx, Subarray};
use fracdram_model::variation::NoiseEngine;
use fracdram_model::{DeviceParams, Environment, GroupId, InternalTiming, SubarrayAddr};
use fracdram_stats::rng::Rng;

const COLS: usize = 1024;

/// A sub-array bench fixture: silicon, environment, and one open clock.
struct Fixture {
    silicon: fracdram_model::silicon::Silicon,
    env: Environment,
    timing: InternalTiming,
    noise: NoiseEngine,
    perf: fracdram_model::ModelPerf,
    cache: fracdram_model::MaterializeCache,
    sub: Subarray,
    now: u64,
}

impl Fixture {
    fn new() -> Self {
        Fixture {
            silicon: fracdram_model::silicon::Silicon::new(
                0xF00D,
                DeviceParams::default(),
                GroupId::B.profile(),
            ),
            env: Environment::nominal(),
            timing: InternalTiming::default(),
            noise: NoiseEngine::new(7),
            perf: fracdram_model::ModelPerf::default(),
            cache: fracdram_model::MaterializeCache::new(0xF00D),
            sub: Subarray::new(0, 0, 32, COLS),
            now: 100,
        }
    }

    /// Runs `f` with a fresh [`Ctx`] borrowing the fixture's parts.
    fn with_ctx<R>(&mut self, f: impl FnOnce(&mut Subarray, &mut Ctx<'_>, u64) -> R) -> R {
        let mut ctx = Ctx {
            silicon: &self.silicon,
            env: &self.env,
            timing: &self.timing,
            noise: &self.noise,
            perf: &mut self.perf,
            cache: &mut self.cache,
        };
        f(&mut self.sub, &mut ctx, self.now)
    }

    fn write_row(&mut self, row: usize, bits: &[bool]) {
        let end = self.with_ctx(|sub, ctx, t| {
            sub.activate(ctx, row, t).unwrap();
            sub.write(ctx, t + 10, 0, bits).unwrap();
            sub.precharge(ctx, t + 20);
            sub.advance(ctx, t + 30);
            t + 30
        });
        self.now = end;
    }
}

fn bench_share_kernel(c: &mut Criterion) {
    let mut fx = Fixture::new();
    fx.write_row(3, &vec![true; COLS]);
    c.bench_function("kernels/share_kernel/frac", |b| {
        b.iter(|| {
            let end = fx.with_ctx(|sub, ctx, t| {
                sub.activate(ctx, 3, t).unwrap();
                sub.precharge(ctx, t + 1);
                sub.advance(ctx, t + 7);
                t + 7
            });
            fx.now = end;
        })
    });

    // Twin of share_kernel/frac with fault injection explicitly armed
    // then disarmed: the kernels' fault hooks must be free when no plan
    // is installed (guarded <5% vs the twin in BENCH_kernels.json).
    let mut fx = Fixture::new();
    fx.silicon
        .set_faults(Some(FaultPlan::new(0xF00D, FaultConfig::none())));
    fx.write_row(3, &vec![true; COLS]);
    c.bench_function("kernels/share_kernel/frac_faults_off", |b| {
        b.iter(|| {
            let end = fx.with_ctx(|sub, ctx, t| {
                sub.activate(ctx, 3, t).unwrap();
                sub.precharge(ctx, t + 1);
                sub.advance(ctx, t + 7);
                t + 7
            });
            fx.now = end;
        })
    });

    let mut fx = Fixture::new();
    for row in [8usize, 0, 1, 9] {
        fx.write_row(row, &vec![row % 2 == 0; COLS]);
    }
    c.bench_function("kernels/share_kernel/halfm", |b| {
        b.iter(|| {
            let end = fx.with_ctx(|sub, ctx, t| {
                sub.activate(ctx, 8, t).unwrap();
                sub.precharge(ctx, t + 1);
                sub.activate(ctx, 1, t + 2).unwrap();
                sub.precharge(ctx, t + 3);
                sub.advance(ctx, t + 10);
                t + 10
            });
            fx.now = end;
        })
    });
}

fn bench_sense_kernel(c: &mut Criterion) {
    let mut fx = Fixture::new();
    fx.write_row(5, &vec![true; COLS]);
    c.bench_function("kernels/sense_kernel", |b| {
        b.iter(|| {
            let end = fx.with_ctx(|sub, ctx, t| {
                sub.activate(ctx, 5, t).unwrap();
                sub.precharge(ctx, t + 20);
                sub.advance(ctx, t + 30);
                t + 30
            });
            fx.now = end;
        })
    });
}

fn bench_leak_kernel(c: &mut Criterion) {
    let mut fx = Fixture::new();
    fx.write_row(6, &vec![true; COLS]);
    // One millisecond of simulated time per step: far above the
    // sub-microsecond skip threshold, so every column's exponential runs.
    const STEP: u64 = 400_000;
    c.bench_function("kernels/leak_kernel", |b| {
        b.iter(|| {
            fx.now += STEP;
            let v = fx.with_ctx(|sub, ctx, t| sub.cell_voltage(ctx, 6, 0, t));
            black_box(v)
        })
    });
}

fn bench_controller_caches(c: &mut Criterion) {
    use fracdram_model::{Geometry, Module, ModuleConfig, RowAddr};
    use fracdram_softmc::MemoryController;

    // Write-prefix snapshot restore: after the first (capturing) write,
    // every repeated full-row write to the same row is a restore.
    let mut mc = MemoryController::new(Module::new(ModuleConfig::single_chip(
        GroupId::B,
        0xBEEF,
        Geometry {
            banks: 2,
            subarrays_per_bank: 4,
            rows_per_subarray: 8,
            columns: COLS,
        },
    )));
    let addr = RowAddr::new(0, 3);
    let bits = vec![true; mc.module().row_bits()];
    mc.write_row(addr, &bits).unwrap();
    c.bench_function("kernels/snapshot_restore", |b| {
        b.iter(|| mc.write_row(addr, &bits).unwrap())
    });

    // Compiled-program cache: running an already-compiled data-free
    // program measures hash + interpreter dispatch without model events
    // (NOPs only touch the clock).
    let mut mc = MemoryController::new(Module::new(ModuleConfig::single_chip(
        GroupId::B,
        0xBEEF,
        Geometry::tiny(),
    )));
    let program = {
        let mut b = fracdram_softmc::Program::builder();
        for _ in 0..64 {
            b = b.nop().delay(2);
        }
        b.build()
    };
    mc.run(&program).unwrap();
    c.bench_function("kernels/compiled_program", |b| {
        b.iter(|| mc.run(&program).unwrap())
    });

    // Cross-bank schedule accounting: a four-program, bank-disjoint
    // read batch per iteration — compile-cache lookup, merge, and the
    // batch dispatch on top of the reads themselves.
    let mut mc = MemoryController::new(Module::new(ModuleConfig::single_chip(
        GroupId::B,
        0xBEEF,
        Geometry {
            banks: 4,
            subarrays_per_bank: 2,
            rows_per_subarray: 8,
            columns: COLS,
        },
    )));
    let programs: Vec<fracdram_softmc::Program> = (0..4)
        .map(|bank| mc.read_row_program(RowAddr::new(bank, bank)))
        .collect();
    mc.run_scheduled(&programs).unwrap();
    c.bench_function("kernels/compiled_sched", |b| {
        b.iter(|| mc.run_scheduled(&programs).unwrap())
    });
}

fn bench_task_bodies(c: &mut Criterion) {
    // fig10: one F-MAJ stability trial (3 row writes + the F-MAJ program).
    let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), 7);
    let geometry = *mc.module().geometry();
    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::B).expect("quad");
    let config = FmajConfig::best_for(GroupId::B);
    let mut rng = Rng::seed_from_u64(1);
    c.bench_function("tasks/fig10_body", |b| {
        b.iter(|| tasks::stability_fmaj(&mut mc, &quad, &config, 1, &mut rng))
    });

    // Twin with fault injection armed-then-disarmed through the module
    // API (guarded <5% vs fig10_body in BENCH_kernels.json).
    let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), 7);
    mc.module_mut()
        .set_fault_config(&fracdram_model::FaultConfig::none());
    let mut rng = Rng::seed_from_u64(1);
    c.bench_function("tasks/fig10_body_faults_off", |b| {
        b.iter(|| tasks::stability_fmaj(&mut mc, &quad, &config, 1, &mut rng))
    });

    // fig11: one PUF challenge evaluation on a 1024-column row.
    let geometry = setup::puf_geometry(1024);
    let mut mc = setup::controller(GroupId::B, geometry, 11);
    let challenges = challenge_set(&geometry, 4, 11);
    let mut next = 0usize;
    c.bench_function("tasks/fig11_body", |b| {
        b.iter(|| {
            let ch = challenges[next % challenges.len()];
            next += 1;
            evaluate(&mut mc, ch).expect("puf").hamming_weight()
        })
    });
}

criterion_group!(
    benches,
    bench_share_kernel,
    bench_sense_kernel,
    bench_leak_kernel,
    bench_controller_caches,
    bench_task_bodies
);
criterion_main!(benches);
