//! Primitive-operation benches: Frac (Fig. 3), Half-m (Fig. 4), the
//! glitch sequence, the in-DRAM row copy, and plain row traffic as the
//! baseline — simulator throughput for each command program.

use fracdram::frac::frac_program;
use fracdram::halfm::halfm_program;
use fracdram::multirow::glitch_program;
use fracdram::rowcopy::copy_program;
use fracdram::rowsets::Quad;
use fracdram_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, RowAddr, SubarrayAddr};
use fracdram_softmc::MemoryController;

fn controller() -> MemoryController {
    let geometry = Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 512,
    };
    MemoryController::new(Module::new(ModuleConfig::single_chip(
        GroupId::B,
        3,
        geometry,
    )))
}

fn bench_row_traffic(c: &mut Criterion) {
    let mut mc = controller();
    let width = mc.module().row_bits();
    let pattern: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
    let addr = RowAddr::new(0, 4);
    c.bench_function("primitives/write_row", |b| {
        b.iter(|| mc.write_row(addr, &pattern).unwrap());
    });
    mc.write_row(addr, &pattern).unwrap();
    c.bench_function("primitives/read_row", |b| {
        b.iter(|| mc.read_row(addr).unwrap());
    });
}

fn bench_frac(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/frac");
    let mut mc = controller();
    let addr = RowAddr::new(0, 4);
    let width = mc.module().row_bits();
    mc.write_row(addr, &vec![true; width]).unwrap();
    for ops in [1usize, 5, 10] {
        let program = frac_program(addr, ops);
        group.bench_with_input(BenchmarkId::from_parameter(ops), &program, |b, p| {
            b.iter(|| mc.run(p).unwrap());
        });
    }
    group.finish();
}

fn bench_copy_glitch_halfm(c: &mut Criterion) {
    let mut mc = controller();
    let geometry = *mc.module().geometry();
    let width = mc.module().row_bits();
    mc.write_row(RowAddr::new(0, 1), &vec![true; width])
        .unwrap();
    let copy = copy_program(RowAddr::new(0, 1), RowAddr::new(0, 5));
    c.bench_function("primitives/row_copy", |b| {
        b.iter(|| mc.run(&copy).unwrap());
    });
    let glitch = {
        let mut p = glitch_program(RowAddr::new(0, 1), RowAddr::new(0, 2));
        p.extend_from(
            &fracdram_softmc::Program::builder()
                .nop()
                .delay(8)
                .pre(0)
                .delay(5)
                .build(),
        );
        p
    };
    c.bench_function("primitives/three_row_glitch", |b| {
        b.iter(|| mc.run(&glitch).unwrap());
    });
    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::B).unwrap();
    let halfm = halfm_program(&quad, &geometry);
    c.bench_function("primitives/halfm_sequence", |b| {
        b.iter(|| mc.run(&halfm).unwrap());
    });
}

criterion_group!(
    benches,
    bench_row_traffic,
    bench_frac,
    bench_copy_glitch_halfm
);
criterion_main!(benches);
