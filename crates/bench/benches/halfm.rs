//! Half-m benches (Figs. 4 and 8): the masked ternary write (four row
//! stores + the interrupted four-row activation) and its read-back.

use fracdram::halfm::{halfm_all, halfm_masked, read_back};
use fracdram::rowsets::Quad;
use fracdram_bench::{criterion_group, criterion_main, Criterion};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, SubarrayAddr};
use fracdram_softmc::MemoryController;

fn controller() -> MemoryController {
    let geometry = Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 512,
    };
    MemoryController::new(Module::new(ModuleConfig::single_chip(
        GroupId::B,
        9,
        geometry,
    )))
}

fn bench_halfm(c: &mut Criterion) {
    let mut mc = controller();
    let geometry = *mc.module().geometry();
    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::B).unwrap();
    let width = mc.module().row_bits();
    let data: Vec<bool> = (0..width).map(|i| i % 4 < 2).collect();
    let mask: Vec<bool> = (0..width).map(|i| i % 8 == 0).collect();

    c.bench_function("halfm/masked_ternary_write", |b| {
        b.iter(|| halfm_masked(&mut mc, &quad, &data, &mask).unwrap());
    });
    c.bench_function("halfm/all_columns", |b| {
        b.iter(|| halfm_all(&mut mc, &quad).unwrap());
    });
    halfm_masked(&mut mc, &quad, &data, &mask).unwrap();
    c.bench_function("halfm/read_back", |b| {
        b.iter(|| {
            halfm_masked(&mut mc, &quad, &data, &mask).unwrap();
            read_back(&mut mc, &quad, 2).unwrap()
        });
    });
}

criterion_group!(benches, bench_halfm);
criterion_main!(benches);
