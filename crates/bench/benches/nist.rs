//! NIST SP 800-22 benches (§VI-B2): the full 15-test suite on a 100k-bit
//! stream, plus the three heaviest individual tests.

use fracdram_bench::{criterion_group, criterion_main, Criterion};
use fracdram_stats::bits::BitVec;
use fracdram_stats::nist;

/// Deterministic SplitMix64 bits (same generator the suite's own unit
/// tests use).
fn random_bits(n: usize, seed: u64) -> BitVec {
    let mut v = BitVec::with_capacity(n);
    let mut state = seed;
    let mut word = 0u64;
    for i in 0..n {
        if i % 64 == 0 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            word = z ^ (z >> 31);
        }
        v.push((word >> (i % 64)) & 1 == 1);
    }
    v
}

fn bench_nist(c: &mut Criterion) {
    let bits = random_bits(100_000, 0xFACE);
    let mut group = c.benchmark_group("nist");
    group.sample_size(10);
    group.bench_function("full_suite_100k", |b| {
        b.iter(|| nist::run_all(&bits));
    });
    group.bench_function("spectral_dft_100k", |b| {
        b.iter(|| nist::spectral(&bits));
    });
    group.bench_function("linear_complexity_100k", |b| {
        b.iter(|| nist::linear_complexity(&bits, 500));
    });
    group.bench_function("serial_m14_100k", |b| {
        b.iter(|| nist::serial(&bits, 14));
    });
    group.finish();
}

criterion_group!(benches, bench_nist);
criterion_main!(benches);
