//! MAJ3 benches (Fig. 7 verification / baseline of Figs. 9-10): one
//! in-memory majority, the six-combination coverage scan, and the
//! two-majority fractional verification.

use fracdram::maj3::{maj3, maj3_coverage};
use fracdram::rowsets::Triplet;
use fracdram::verify::{verify_fractional, FracPlacement, VerifySetup};
use fracdram_bench::{criterion_group, criterion_main, Criterion};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, SubarrayAddr};
use fracdram_softmc::MemoryController;

fn controller() -> MemoryController {
    let geometry = Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 512,
    };
    MemoryController::new(Module::new(ModuleConfig::single_chip(
        GroupId::B,
        5,
        geometry,
    )))
}

fn bench_maj3(c: &mut Criterion) {
    let mut mc = controller();
    let geometry = *mc.module().geometry();
    let triplet = Triplet::first(&geometry, SubarrayAddr::new(0, 0));
    let width = mc.module().row_bits();
    let a: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
    let b_op: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
    let c_op: Vec<bool> = (0..width).map(|i| i % 5 == 0).collect();
    c.bench_function("maj3/single_operation", |b| {
        b.iter(|| maj3(&mut mc, &triplet, [&a, &b_op, &c_op]).unwrap());
    });

    let mut group = c.benchmark_group("maj3/slow");
    group.sample_size(10);
    group.bench_function("coverage_six_combos", |b| {
        b.iter(|| maj3_coverage(&mut mc, &triplet).unwrap());
    });
    let setup = VerifySetup {
        placement: FracPlacement::R1R2,
        init_ones: true,
        frac_ops: 3,
    };
    group.bench_function("fractional_verification", |b| {
        b.iter(|| verify_fractional(&mut mc, &triplet, &setup).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_maj3);
criterion_main!(benches);
