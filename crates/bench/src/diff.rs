//! Bench-baseline comparison: parse `--json` dumps and diff them.
//!
//! `BENCH_*.json` files record the per-bench median of a full run (see
//! the crate docs). This module reads two such dumps — a committed
//! baseline and a fresh measurement — and flags regressions beyond a
//! tolerance factor, so CI can catch a perf cliff without failing on
//! ordinary scheduler noise.

use crate::Record;

/// Parses a `--json` dump produced by [`crate::format_records`].
///
/// The format is one `{"bench","median_ns","iters"}` object per line
/// inside a JSON array; array brackets and blank lines are skipped.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_records(text: &str) -> Result<Vec<Record>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        let body = line
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| format!("line {}: not a JSON object: {raw}", lineno + 1))?;
        let field = |key: &str| -> Result<&str, String> {
            let tag = format!("\"{key}\":");
            let start = body
                .find(&tag)
                .ok_or_else(|| format!("line {}: missing {key}", lineno + 1))?
                + tag.len();
            let rest = &body[start..];
            Ok(rest.split(',').next().unwrap_or(rest))
        };
        let bench = field("bench")?.trim().trim_matches('"').to_string();
        let median_ns: f64 = field("median_ns")?
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad median_ns: {e}", lineno + 1))?;
        let iters: u64 = field("iters")?
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad iters: {e}", lineno + 1))?;
        out.push(Record {
            bench,
            median_ns,
            iters,
        });
    }
    Ok(out)
}

/// One bench present in both dumps.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// Full bench label.
    pub bench: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: f64,
    /// Fresh median, nanoseconds.
    pub current_ns: f64,
}

impl DiffLine {
    /// `current / baseline` — above 1.0 means slower than the baseline.
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns.max(f64::MIN_POSITIVE)
    }
}

/// Result of comparing a fresh dump against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Benches present in both dumps, in baseline order.
    pub lines: Vec<DiffLine>,
    /// Baseline benches absent from the fresh dump (treated as
    /// regressions: a deleted bench must be removed from the baseline).
    pub missing: Vec<String>,
    /// Fresh benches absent from the baseline (informational).
    pub added: Vec<String>,
    /// Allowed slowdown factor, e.g. `0.30` for ±30 %.
    pub tolerance: f64,
}

impl DiffReport {
    /// Benches slower than `baseline * (1 + tolerance)`.
    pub fn regressions(&self) -> Vec<&DiffLine> {
        self.lines
            .iter()
            .filter(|l| l.ratio() > 1.0 + self.tolerance)
            .collect()
    }

    /// Whether the comparison should fail a gating run.
    pub fn is_regressed(&self) -> bool {
        !self.regressions().is_empty() || !self.missing.is_empty()
    }

    /// One-line aggregate of the comparison: how many benches were
    /// compared, the geometric-mean speed change across them (the right
    /// average for ratios — a 2× slowdown and a 2× speedup cancel), and
    /// the best/worst movers. Missing and added benches are counted but
    /// excluded from the mean.
    pub fn summary(&self) -> String {
        if self.lines.is_empty() {
            return format!(
                "bench_diff: 0 bench(es) compared, {} missing, {} added",
                self.missing.len(),
                self.added.len()
            );
        }
        let log_sum: f64 = self
            .lines
            .iter()
            .map(|l| l.ratio().max(f64::MIN_POSITIVE).ln())
            .sum();
        let geomean = (log_sum / self.lines.len() as f64).exp();
        let best = self
            .lines
            .iter()
            .min_by(|a, b| a.ratio().total_cmp(&b.ratio()))
            .expect("non-empty lines");
        let worst = self
            .lines
            .iter()
            .max_by(|a, b| a.ratio().total_cmp(&b.ratio()))
            .expect("non-empty lines");
        format!(
            "bench_diff: {} bench(es), geomean {:+.1}%, best {} ({:+.1}%), \
             worst {} ({:+.1}%), {} regressed, {} missing, {} added",
            self.lines.len(),
            (geomean - 1.0) * 100.0,
            best.bench,
            (best.ratio() - 1.0) * 100.0,
            worst.bench,
            (worst.ratio() - 1.0) * 100.0,
            self.regressions().len(),
            self.missing.len(),
            self.added.len(),
        )
    }

    /// Human-readable table of the comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            let ratio = l.ratio();
            let verdict = if ratio > 1.0 + self.tolerance {
                "REGRESSED"
            } else if ratio < 1.0 - self.tolerance {
                "faster"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{:<44} {:>12.1} ns -> {:>12.1} ns  ({:+6.1}%)  {verdict}\n",
                l.bench,
                l.baseline_ns,
                l.current_ns,
                (ratio - 1.0) * 100.0,
            ));
        }
        for m in &self.missing {
            out.push_str(&format!("{m:<44} missing from current run  REGRESSED\n"));
        }
        for a in &self.added {
            out.push_str(&format!("{a:<44} new (no baseline)\n"));
        }
        out
    }
}

/// Renders bench records as append-only history lines — one
/// `{"bench","median_ns","rev"}` JSON object per line, suitable for
/// `BENCH_history.jsonl`. The file is a measurement log: every baseline
/// refresh appends one generation, so perf over revisions can be
/// plotted without archaeology through git history.
pub fn history_lines(records: &[Record], rev: &str) -> String {
    records
        .iter()
        .map(|r| {
            format!(
                "{{\"bench\":\"{}\",\"median_ns\":{:.1},\"rev\":\"{}\"}}\n",
                r.bench, r.median_ns, rev
            )
        })
        .collect()
}

/// Compares `current` against `baseline` with the given slowdown
/// tolerance (`0.30` = a bench may be up to 30 % slower before it
/// counts as a regression).
pub fn compare(baseline: &[Record], current: &[Record], tolerance: f64) -> DiffReport {
    let lines = baseline
        .iter()
        .filter_map(|b| {
            let c = current.iter().find(|c| c.bench == b.bench)?;
            Some(DiffLine {
                bench: b.bench.clone(),
                baseline_ns: b.median_ns,
                current_ns: c.median_ns,
            })
        })
        .collect();
    let missing = baseline
        .iter()
        .filter(|b| !current.iter().any(|c| c.bench == b.bench))
        .map(|b| b.bench.clone())
        .collect();
    let added = current
        .iter()
        .filter(|c| !baseline.iter().any(|b| b.bench == c.bench))
        .map(|c| c.bench.clone())
        .collect();
    DiffReport {
        lines,
        missing,
        added,
        tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format_records;

    fn rec(bench: &str, ns: f64) -> Record {
        Record {
            bench: bench.into(),
            median_ns: ns,
            iters: 100,
        }
    }

    #[test]
    fn parse_roundtrips_format() {
        let records = vec![rec("kernels/share_kernel/frac", 57153.6), rec("a/b", 7.0)];
        let parsed = parse_records(&format_records(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_records("not json").is_err());
        assert!(parse_records("{\"bench\":\"x\"}").is_err());
    }

    #[test]
    fn within_tolerance_is_ok() {
        let report = compare(&[rec("k", 1000.0)], &[rec("k", 1250.0)], 0.30);
        assert!(!report.is_regressed());
        assert!(report.render().contains("ok"));
    }

    #[test]
    fn beyond_tolerance_regresses() {
        let report = compare(&[rec("k", 1000.0)], &[rec("k", 1400.0)], 0.30);
        assert!(report.is_regressed());
        assert_eq!(report.regressions().len(), 1);
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn faster_is_not_a_regression() {
        let report = compare(&[rec("k", 1000.0)], &[rec("k", 500.0)], 0.30);
        assert!(!report.is_regressed());
        assert!(report.render().contains("faster"));
    }

    #[test]
    fn history_lines_are_one_object_per_record() {
        let lines = history_lines(&[rec("k/a", 1234.56), rec("k/b", 7.0)], "abc1234");
        assert_eq!(
            lines,
            "{\"bench\":\"k/a\",\"median_ns\":1234.6,\"rev\":\"abc1234\"}\n\
             {\"bench\":\"k/b\",\"median_ns\":7.0,\"rev\":\"abc1234\"}\n"
        );
    }

    #[test]
    fn summary_reports_geomean_and_extremes() {
        // Ratios 2.0 and 0.5: the geometric mean is exactly 1.0.
        let report = compare(
            &[rec("slow", 100.0), rec("fast", 100.0), rec("gone", 1.0)],
            &[rec("slow", 200.0), rec("fast", 50.0), rec("new", 1.0)],
            0.30,
        );
        let summary = report.summary();
        assert!(summary.contains("2 bench(es)"), "{summary}");
        assert!(summary.contains("geomean +0.0%"), "{summary}");
        assert!(summary.contains("best fast (-50.0%)"), "{summary}");
        assert!(summary.contains("worst slow (+100.0%)"), "{summary}");
        assert!(summary.contains("1 regressed"), "{summary}");
        assert!(summary.contains("1 missing, 1 added"), "{summary}");
    }

    #[test]
    fn summary_with_no_overlap_counts_only() {
        let report = compare(&[rec("a", 1.0)], &[rec("b", 1.0)], 0.30);
        assert_eq!(
            report.summary(),
            "bench_diff: 0 bench(es) compared, 1 missing, 1 added"
        );
    }

    #[test]
    fn missing_bench_regresses_and_new_bench_informs() {
        let report = compare(
            &[rec("gone", 10.0), rec("kept", 10.0)],
            &[rec("kept", 10.0), rec("fresh", 10.0)],
            0.30,
        );
        assert!(report.is_regressed());
        assert_eq!(report.missing, vec!["gone".to_string()]);
        assert_eq!(report.added, vec!["fresh".to_string()]);
    }
}
