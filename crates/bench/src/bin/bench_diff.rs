//! Compares a fresh bench `--json` dump against a committed baseline.
//!
//! ```text
//! bench_diff BASELINE.json CURRENT.json [--tolerance 0.30] [--warn-only]
//!            [--history PATH --rev REV]
//! ```
//!
//! Exits nonzero when any bench is slower than `baseline * (1 +
//! tolerance)` or has disappeared, unless `--warn-only` is given.
//!
//! `--history PATH` appends the CURRENT records (one
//! `{"bench","median_ns","rev"}` object per line) to an append-only
//! measurement log. Every record of one invocation is stamped with the
//! same revision: `--rev REV` when given, otherwise `git rev-parse
//! --short HEAD` (with a `-dirty` suffix and a warning when the tree
//! has uncommitted changes — dirty measurements don't reproduce from
//! the stamped commit). Use it whenever the committed baseline is
//! refreshed, so `BENCH_history.jsonl` keeps one generation per
//! baseline change.

use fracdram_bench::diff::{compare, history_lines, parse_records};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff BASELINE.json CURRENT.json [--tolerance FRAC] [--warn-only] \
         [--history PATH [--rev REV]]"
    );
    std::process::exit(2);
}

/// Output of `git` in the working directory, trimmed; `None` when git is
/// unavailable or exits nonzero.
fn git(args: &[&str]) -> Option<String> {
    let out = std::process::Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
}

/// The revision to stamp history records with: the current short HEAD,
/// suffixed `-dirty` (with a warning) when the tree has uncommitted
/// changes. One invocation stamps all its records with this one value.
fn head_rev() -> String {
    let Some(head) = git(&["rev-parse", "--short", "HEAD"]) else {
        eprintln!("bench_diff: cannot resolve HEAD; pass --rev explicitly");
        std::process::exit(2);
    };
    match git(&["status", "--porcelain"]) {
        Some(status) if status.is_empty() => head,
        _ => format!("{head}-dirty"),
    }
}

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut tolerance = 0.30f64;
    let mut warn_only = false;
    let mut history: Option<String> = None;
    let mut rev: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--warn-only" => warn_only = true,
            "--history" => history = Some(args.next().unwrap_or_else(|| usage())),
            "--rev" => rev = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => paths.push(a),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        usage();
    };

    let read = |path: &str| -> Vec<fracdram_bench::Record> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse_records(&text).unwrap_or_else(|e| {
            eprintln!("bench_diff: {path}: {e}");
            std::process::exit(2);
        })
    };

    let current = read(current_path);
    let report = compare(&read(baseline_path), &current, tolerance);
    print!("{}", report.render());
    println!("{}", report.summary());
    if let Some(history_path) = &history {
        let rev = rev.unwrap_or_else(head_rev);
        if rev.ends_with("-dirty") {
            eprintln!(
                "bench_diff: warning: working tree is dirty; stamping history \
                 records as {rev} (they will not reproduce from that commit)"
            );
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(history_path)
            .unwrap_or_else(|e| {
                eprintln!("bench_diff: cannot open {history_path}: {e}");
                std::process::exit(2);
            });
        use std::io::Write;
        file.write_all(history_lines(&current, &rev).as_bytes())
            .unwrap_or_else(|e| {
                eprintln!("bench_diff: cannot append to {history_path}: {e}");
                std::process::exit(2);
            });
        eprintln!(
            "bench_diff: appended {} record(s) at rev {rev} to {history_path}",
            current.len()
        );
    }
    println!(
        "bench_diff: {} bench(es), {} regression(s), tolerance ±{:.0}%{}",
        report.lines.len(),
        report.regressions().len() + report.missing.len(),
        tolerance * 100.0,
        if warn_only { " (warn-only)" } else { "" },
    );
    if report.is_regressed() && !warn_only {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
