//! Compares a fresh bench `--json` dump against a committed baseline.
//!
//! ```text
//! bench_diff BASELINE.json CURRENT.json [--tolerance 0.30] [--warn-only]
//! ```
//!
//! Exits nonzero when any bench is slower than `baseline * (1 +
//! tolerance)` or has disappeared, unless `--warn-only` is given (the CI
//! smoke mode: 1-core runners are too noisy to gate on).

use fracdram_bench::diff::{compare, parse_records};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: bench_diff BASELINE.json CURRENT.json [--tolerance FRAC] [--warn-only]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut tolerance = 0.30f64;
    let mut warn_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--warn-only" => warn_only = true,
            "--help" | "-h" => usage(),
            _ => paths.push(a),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        usage();
    };

    let read = |path: &str| -> Vec<fracdram_bench::Record> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse_records(&text).unwrap_or_else(|e| {
            eprintln!("bench_diff: {path}: {e}");
            std::process::exit(2);
        })
    };

    let report = compare(&read(baseline_path), &read(current_path), tolerance);
    print!("{}", report.render());
    println!(
        "bench_diff: {} bench(es), {} regression(s), tolerance ±{:.0}%{}",
        report.lines.len(),
        report.regressions().len() + report.missing.len(),
        tolerance * 100.0,
        if warn_only { " (warn-only)" } else { "" },
    );
    if report.is_regressed() && !warn_only {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
