//! A minimal, dependency-free benchmark harness with a criterion-shaped
//! API.
//!
//! The workspace builds in fully offline environments, so the benches
//! cannot pull in the real `criterion` crate. This module provides the
//! subset the bench files use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple warmup + timed-batch
//! measurement loop. Reported numbers are mean wall time per iteration;
//! good enough to track order-of-magnitude trajectories across PRs,
//! not a statistics engine.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from
/// deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver: runs each registered benchmark and
/// prints one line per measurement.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the minimum number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.measurement, &mut f);
        self
    }

    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of measurements sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of measured iterations for the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    /// Measures one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.measurement,
            &mut f,
        );
        self
    }

    /// Measures one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.measurement,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (accepted for criterion API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally carrying a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] runs and times
/// the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement: Duration,
    f: &mut F,
) {
    // Warmup + calibration: find an iteration count that fills the
    // measurement window.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let target = measurement.as_nanos() / per_iter.as_nanos().max(1);
    let iters = target.clamp(sample_size as u128, 1_000_000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
    println!(
        "bench: {label:<44} {:>12}/iter  ({} iters)",
        human(ns),
        bencher.iters
    );
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Registers benchmark functions under a group name (criterion parity).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $fun(&mut c); )+
        }
    };
}

/// Generates `main` running the registered groups (criterion parity).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(5);
        let mut ran = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                ran += 1;
                black_box(2u64 + 2)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| {
                total += n;
                black_box(total)
            })
        });
        group.finish();
        assert!(total >= 3);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 7).0, "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).contains("ns"));
        assert!(human(12_000.0).contains("µs"));
        assert!(human(12_000_000.0).contains("ms"));
        assert!(human(2e9).contains('s'));
    }
}
