//! A minimal, dependency-free benchmark harness with a criterion-shaped
//! API.
//!
//! The workspace builds in fully offline environments, so the benches
//! cannot pull in the real `criterion` crate. This module provides the
//! subset the bench files use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple warmup + timed-batch
//! measurement loop. Each measurement runs several timed batches and
//! reports the **median** per-iteration wall time; good enough to track
//! trajectories across PRs, not a statistics engine.
//!
//! Two bench-binary flags (passed after `cargo bench ... --`):
//!
//! - `--json PATH` writes every measurement as a
//!   `{"bench", "median_ns", "iters"}` record (one JSON array per run),
//!   so PRs can record `BENCH_*.json` baselines and compare trajectories;
//! - `--measure-ms N` shrinks/grows the per-measurement window (default
//!   300 ms) — CI smoke runs use a small window.

#![warn(missing_docs)]

pub mod diff;

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished measurement, as written to the `--json` dump.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Full bench label (`group/function/param`).
    pub bench: String,
    /// Median wall time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Total measured iterations across all batches.
    pub iters: u64,
}

/// Measurements collected by every `run_one` call in this process.
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Returns the value following `--flag` in the process arguments, if any.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Writes all collected measurements to the path given via `--json PATH`
/// (no-op when the flag is absent). Called by the `criterion_main!`
/// generated `main` after every group has run.
///
/// # Panics
///
/// Panics when the dump file cannot be written — a bench run asked to
/// record a baseline must not silently drop it.
pub fn write_json_if_requested() {
    let Some(path) = arg_value("--json") else {
        return;
    };
    let records = RECORDS.lock().unwrap();
    std::fs::write(&path, format_records(&records))
        .unwrap_or_else(|e| panic!("cannot write --json {path}: {e}"));
    eprintln!("bench: wrote {} record(s) to {path}", records.len());
}

/// Formats records as the `--json` dump: a JSON array with one
/// `{"bench", "median_ns", "iters"}` object per line.
pub fn format_records(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"bench\":\"{}\",\"median_ns\":{:.1},\"iters\":{}}}",
            r.bench, r.median_ns, r.iters
        ));
    }
    out.push_str("\n]\n");
    out
}

/// An opaque identity function that prevents the optimizer from
/// deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver: runs each registered benchmark and
/// prints one line per measurement.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure_ms = arg_value("--measure-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            sample_size: 50,
            measurement: Duration::from_millis(measure_ms),
        }
    }
}

impl Criterion {
    /// Sets the minimum number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.measurement, &mut f);
        self
    }

    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of measurements sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of measured iterations for the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    /// Measures one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.measurement,
            &mut f,
        );
        self
    }

    /// Measures one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.measurement,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (accepted for criterion API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally carrying a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] runs and times
/// the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Timed batches per measurement; the reported number is their median.
const BATCHES: usize = 5;

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement: Duration,
    f: &mut F,
) {
    // Warmup + calibration: find an iteration count that fills the
    // measurement window.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let target = measurement.as_nanos() / per_iter.as_nanos().max(1);
    let iters = target.clamp(sample_size as u128, 1_000_000) as u64;
    let batch_iters = (iters / BATCHES as u64).max(1);

    let mut per_batch_ns = [0.0f64; BATCHES];
    let mut total_iters = 0u64;
    for slot in &mut per_batch_ns {
        let mut bencher = Bencher {
            iters: batch_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        *slot = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
        total_iters += bencher.iters;
    }
    per_batch_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_batch_ns[BATCHES / 2];
    println!(
        "bench: {label:<44} {:>12}/iter  ({total_iters} iters, median of {BATCHES})",
        human(median),
    );
    RECORDS.lock().unwrap().push(Record {
        bench: label.to_string(),
        median_ns: median,
        iters: total_iters,
    });
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Registers benchmark functions under a group name (criterion parity).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $fun(&mut c); )+
        }
    };
}

/// Generates `main` running the registered groups (criterion parity),
/// then writes the `--json` record dump when requested.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(5);
        let mut ran = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                ran += 1;
                black_box(2u64 + 2)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| {
                total += n;
                black_box(total)
            })
        });
        group.finish();
        assert!(total >= 3);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 7).0, "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }

    #[test]
    fn measurements_are_recorded() {
        let mut c = Criterion::default();
        c.sample_size(5);
        c.bench_function("record/smoke", |b| b.iter(|| black_box(1u64 + 1)));
        let records = RECORDS.lock().unwrap();
        let rec = records
            .iter()
            .find(|r| r.bench == "record/smoke")
            .expect("measurement not recorded");
        assert!(rec.median_ns > 0.0);
        assert!(rec.iters >= 5);
    }

    #[test]
    fn json_records_format() {
        let records = vec![
            Record {
                bench: "kernels/share_kernel".into(),
                median_ns: 1234.56,
                iters: 1000,
            },
            Record {
                bench: "kernels/leak_kernel".into(),
                median_ns: 7.0,
                iters: 50,
            },
        ];
        let text = format_records(&records);
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        assert!(
            text.contains(r#"{"bench":"kernels/share_kernel","median_ns":1234.6,"iters":1000}"#)
        );
        assert!(text.contains(r#"{"bench":"kernels/leak_kernel","median_ns":7.0,"iters":50}"#));
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).contains("ns"));
        assert!(human(12_000.0).contains("µs"));
        assert!(human(12_000_000.0).contains("ms"));
        assert!(human(2e9).contains('s'));
    }
}
