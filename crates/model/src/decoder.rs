//! Row-decoder glitch model for multi-row activation.
//!
//! Under nominal timing the decoder drives exactly one word-line. The
//! out-of-spec sequence `ACTIVATE(R1) - PRECHARGE - ACTIVATE(R2)` with no
//! idle cycles catches the decoder mid-transition and implicitly raises
//! additional word-lines (§II-D, §VI-A1 of the paper; also observed by
//! ComputeDRAM and QUAC-TRNG).
//!
//! The paper's exploration on groups C and D found:
//!
//! * only `2^k` rows can be opened simultaneously;
//! * every pair `(R1, R2)` that opens `2^k` rows differs in exactly `k`
//!   address bits — the opened set is the *span* of the differing bits;
//! * **not** every pair with `k` differing bits actually opens `2^k` rows.
//!
//! Group B additionally opens *three* rows for pairs of the ComputeDRAM
//! pattern `(4k+1, 4k+2)`, which is what makes the original MAJ3 possible
//! there and nowhere else.

use crate::variation::{ParamId, VariationSampler};

/// How a chip's row decoder responds to the glitch sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoderBehavior {
    /// No multi-row activation: the second ACTIVATE simply wins and only
    /// `R2` ends up open (groups A, E–I; also J–L, whose timing guard
    /// prevents the sequence from ever reaching the decoder).
    SingleOnly,
    /// Group B: ComputeDRAM-style pairs `(4k+1, 4k+2)` open three rows
    /// `{4k, 4k+1, 4k+2}`; pairs differing in two non-adjacent bits can
    /// open the four-row span.
    TriQuad,
    /// Groups C and D: only power-of-two row sets can open; three rows are
    /// impossible.
    PowerOfTwo,
}

impl DecoderBehavior {
    /// Whether this decoder can ever open exactly three rows.
    pub fn can_open_three(self) -> bool {
        matches!(self, DecoderBehavior::TriQuad)
    }

    /// Whether this decoder can ever open four rows.
    pub fn can_open_four(self) -> bool {
        matches!(self, DecoderBehavior::TriQuad | DecoderBehavior::PowerOfTwo)
    }
}

/// The set of local rows (within one sub-array) left open by the glitch
/// sequence, in *activation-role order* `[R1, R2, R3, R4, ...]`: the
/// explicitly activated rows first, then the implicitly opened ones in
/// ascending order. Role order matters because charge-sharing weights are
/// assigned per role (the "primary row" asymmetry).
pub fn glitch_rows(
    behavior: DecoderBehavior,
    r1: usize,
    r2: usize,
    rows_in_subarray: usize,
    sampler: &VariationSampler,
) -> Vec<usize> {
    debug_assert!(r1 < rows_in_subarray && r2 < rows_in_subarray);
    if r1 == r2 {
        return vec![r2];
    }
    match behavior {
        DecoderBehavior::SingleOnly => vec![r2],
        DecoderBehavior::TriQuad => {
            if let Some(base) = computedram_triplet(r1, r2) {
                if base + 2 < rows_in_subarray {
                    // Role order: R1, R2, then the implicit row.
                    let implicit = base; // base = 4k, rows are {4k, 4k+1, 4k+2}
                    return vec![r1, r2, implicit];
                }
            }
            span_or_fallback(r1, r2, rows_in_subarray, sampler)
        }
        DecoderBehavior::PowerOfTwo => span_or_fallback(r1, r2, rows_in_subarray, sampler),
    }
}

/// Returns `Some(4k)` when `(r1, r2)` is a ComputeDRAM three-row pair
/// `{4k+1, 4k+2}` (in either order).
fn computedram_triplet(r1: usize, r2: usize) -> Option<usize> {
    let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
    if lo % 4 == 1 && hi == lo + 1 {
        Some(lo - 1)
    } else {
        None
    }
}

/// Power-of-two span activation: if the pair differs in `k` bits and the
/// pair-specific gate is open, the whole `2^k` span opens; otherwise the
/// decoder recovers and only `R2` stays open.
fn span_or_fallback(
    r1: usize,
    r2: usize,
    rows_in_subarray: usize,
    sampler: &VariationSampler,
) -> Vec<usize> {
    let diff = r1 ^ r2;
    let k = diff.count_ones();
    if k == 0 || k > 4 {
        return vec![r2];
    }
    if !pair_gate_open(r1, r2, sampler) {
        return vec![r2];
    }
    let span = span_rows(r1, diff);
    if span.iter().any(|&r| r >= rows_in_subarray) {
        return vec![r2];
    }
    // Role order: R1, R2, then implicit rows ascending.
    let mut out = vec![r1, r2];
    for r in span {
        if r != r1 && r != r2 {
            out.push(r);
        }
    }
    out
}

/// All rows sharing the non-differing address bits of `base`: the set
/// `{ (base & !diff) | s : s subset of diff }`, ascending.
pub fn span_rows(base: usize, diff: usize) -> Vec<usize> {
    let fixed = base & !diff;
    let mut rows = Vec::with_capacity(1 << diff.count_ones());
    // Iterate over subsets of `diff` in ascending numeric order.
    let mut s = 0usize;
    loop {
        rows.push(fixed | s);
        if s == diff {
            break;
        }
        s = (s.wrapping_sub(diff)) & diff; // next subset
    }
    rows.sort_unstable();
    rows
}

/// Whether a specific `(R1, R2)` pair actually triggers the span glitch.
///
/// The paper observes that canonical low-address pairs (the ones it uses
/// for Half-m and F-MAJ: 1↔2 and 8↔1) work reliably, while arbitrary
/// pairs with the same bit-difference count often do not. We model that
/// as: two-bit differences confined to the low four address bits always
/// glitch; other pairs glitch with a fixed per-pair (chip-specific)
/// probability.
fn pair_gate_open(r1: usize, r2: usize, sampler: &VariationSampler) -> bool {
    let diff = r1 ^ r2;
    let k = diff.count_ones();
    if k == 2 && diff < 16 {
        return true;
    }
    let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
    let p = match k {
        1 => 0.9,
        2 => 0.55,
        3 => 0.3,
        _ => 0.15,
    };
    sampler.bernoulli(ParamId::GlitchPairGate, &[lo as u64, hi as u64], p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> VariationSampler {
        VariationSampler::new(0xF00D)
    }

    #[test]
    fn single_only_opens_just_r2() {
        assert_eq!(
            glitch_rows(DecoderBehavior::SingleOnly, 1, 2, 64, &sampler()),
            vec![2]
        );
    }

    #[test]
    fn group_b_computedram_pair_opens_three() {
        // ACT(1)-PRE-ACT(2) opens rows {0,1,2} with roles [R1=1, R2=2, R3=0].
        let rows = glitch_rows(DecoderBehavior::TriQuad, 1, 2, 64, &sampler());
        assert_eq!(rows, vec![1, 2, 0]);
        // Higher-aligned triplets too: (5, 6) -> {4,5,6}.
        let rows = glitch_rows(DecoderBehavior::TriQuad, 5, 6, 64, &sampler());
        assert_eq!(rows, vec![5, 6, 4]);
        // Order-insensitive.
        let rows = glitch_rows(DecoderBehavior::TriQuad, 2, 1, 64, &sampler());
        assert_eq!(rows, vec![2, 1, 0]);
    }

    #[test]
    fn group_b_quad_pair_opens_four() {
        // The paper's Half-m pair: ACT(8)-PRE-ACT(1) opens {0,1,8,9} with
        // roles [R1=8, R2=1, R3=0, R4=9].
        let rows = glitch_rows(DecoderBehavior::TriQuad, 8, 1, 64, &sampler());
        assert_eq!(rows, vec![8, 1, 0, 9]);
    }

    #[test]
    fn power_of_two_canonical_pair() {
        // The paper's F-MAJ pair for groups C/D: {R1,R2} = {1,2} opens
        // {0,1,2,3} with roles [R1=1, R2=2, R3=0, R4=3].
        let rows = glitch_rows(DecoderBehavior::PowerOfTwo, 1, 2, 64, &sampler());
        assert_eq!(rows, vec![1, 2, 0, 3]);
    }

    #[test]
    fn power_of_two_never_opens_three() {
        let s = sampler();
        for r1 in 0..32 {
            for r2 in 0..32 {
                if r1 == r2 {
                    continue;
                }
                let n = glitch_rows(DecoderBehavior::PowerOfTwo, r1, r2, 32, &s).len();
                assert!(n.is_power_of_two(), "({r1},{r2}) opened {n} rows");
            }
        }
    }

    #[test]
    fn span_size_is_two_to_the_k() {
        let s = sampler();
        for r1 in 0..64 {
            for r2 in 0..64 {
                if r1 == r2 {
                    continue;
                }
                let rows = glitch_rows(DecoderBehavior::PowerOfTwo, r1, r2, 64, &s);
                let k = (r1 ^ r2).count_ones();
                let n = rows.len();
                // Either the gate stayed shut (1 row) or the full span opened.
                assert!(
                    n == 1 || n == (1 << k),
                    "({r1},{r2}): k={k} but {n} rows opened"
                );
                // Any opened span has all rows agreeing on common bits.
                if n > 1 {
                    for &r in &rows {
                        assert_eq!(r & !(r1 ^ r2), r1 & !(r1 ^ r2));
                    }
                }
            }
        }
    }

    #[test]
    fn not_all_k_bit_pairs_glitch() {
        // The paper: "not all combinations of R1 and R2 that have k
        // different bits can open 2^k rows". With enough high-bit pairs,
        // some must fall back.
        let s = sampler();
        let mut opened = 0;
        let mut total = 0;
        for base in 0..16 {
            let r1 = base * 16; // keep diff in high bits (>= 16)
            let r2 = r1 ^ 0b11_0000;
            if r2 < 256 {
                total += 1;
                if glitch_rows(DecoderBehavior::PowerOfTwo, r1, r2, 256, &s).len() == 4 {
                    opened += 1;
                }
            }
        }
        assert!(opened > 0, "no high pair ever glitches");
        assert!(opened < total, "every high pair glitches");
    }

    #[test]
    fn span_rows_enumerates_subsets() {
        assert_eq!(span_rows(8, 9), vec![0, 1, 8, 9]);
        assert_eq!(span_rows(1, 3), vec![0, 1, 2, 3]);
        assert_eq!(span_rows(5, 0), vec![5]);
    }

    #[test]
    fn out_of_range_span_falls_back() {
        // (3, 9) differ in bits {1, 3}: span {1, 3, 9, 11} does not fit a
        // 10-row sub-array, so only R2 opens.
        let rows = glitch_rows(DecoderBehavior::PowerOfTwo, 3, 9, 10, &sampler());
        assert_eq!(rows, vec![9]);
    }

    #[test]
    fn same_row_twice_is_single() {
        assert_eq!(
            glitch_rows(DecoderBehavior::TriQuad, 5, 5, 64, &sampler()),
            vec![5]
        );
    }
}
