//! Error type of the device model.

use std::error::Error as StdError;
use std::fmt;

/// Errors reported by the device model.
///
/// The model only rejects *structurally* invalid requests (addresses out
/// of range, malformed data lengths). Out-of-spec command *timing* is
/// never an error here — producing defined behavior for undefined timing
/// is the whole point of the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A bank index exceeded the chip geometry.
    BankOutOfRange {
        /// Requested bank.
        bank: usize,
        /// Number of banks in the chip.
        banks: usize,
    },
    /// A row number exceeded the bank size.
    RowOutOfRange {
        /// Requested row.
        row: usize,
        /// Rows per bank.
        rows: usize,
    },
    /// A data buffer did not match the row width.
    WidthMismatch {
        /// Provided length in bits.
        got: usize,
        /// Expected length in bits.
        expected: usize,
    },
    /// A command that requires an open row found the bank closed (e.g.
    /// READ or WRITE with no prior sensed ACTIVATE).
    BankClosed {
        /// Bank the command targeted.
        bank: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range (chip has {banks} banks)")
            }
            ModelError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (bank has {rows} rows)")
            }
            ModelError::WidthMismatch { got, expected } => {
                write!(f, "data width {got} does not match row width {expected}")
            }
            ModelError::BankClosed { bank } => {
                write!(f, "bank {bank} has no sensed open row")
            }
        }
    }
}

impl StdError for ModelError {}

/// Convenience result alias for model operations.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let msgs = [
            ModelError::BankOutOfRange { bank: 9, banks: 8 }.to_string(),
            ModelError::RowOutOfRange { row: 99, rows: 64 }.to_string(),
            ModelError::WidthMismatch {
                got: 3,
                expected: 64,
            }
            .to_string(),
            ModelError::BankClosed { bank: 1 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: StdError + Send + Sync + 'static>() {}
        assert_traits::<ModelError>();
    }
}
