//! Per-coordinate static silicon parameters.
//!
//! [`Silicon`] combines a chip's [`VariationSampler`] with the group-wide
//! [`DeviceParams`] and [`VendorProfile`] to answer questions like "what
//! is the leakage time constant of cell (bank 3, sub-array 1, row 40,
//! column 17)?". Every answer is a pure function of the chip seed and the
//! coordinates — identical across calls, distinct across chips.

use crate::faults::FaultPlan;
use crate::params::DeviceParams;
use crate::units::{Femtofarads, Seconds, Volts};
use crate::variation::{ParamId, VariationSampler};
use crate::vendor::VendorProfile;

/// Static parameter oracle for one chip.
#[derive(Debug, Clone)]
pub struct Silicon {
    sampler: VariationSampler,
    params: DeviceParams,
    profile: VendorProfile,
    faults: Option<FaultPlan>,
}

impl Silicon {
    /// Creates the oracle for a chip with the given seed, parameters, and
    /// vendor profile.
    pub fn new(seed: u64, params: DeviceParams, profile: VendorProfile) -> Self {
        Silicon {
            sampler: VariationSampler::new(seed),
            params,
            profile,
            faults: None,
        }
    }

    /// Installs (or removes) a fault plan. Weak-cell factors fold into
    /// the capacitance/leakage oracles below; the kernels query the plan
    /// directly for stuck cells, sense flips, and decoder dropouts.
    pub fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan.filter(|p| p.enabled());
    }

    /// The installed fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Whether any *cell*-level fault class (stuck or weak) is active —
    /// the hot-path gate for the kernels' pinning hooks.
    pub fn cell_faults_enabled(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|p| p.config().cell_faults())
    }

    /// The rail a cell is pinned to by a stuck-at fault, or `None`.
    pub fn stuck_at(&self, bank: usize, sub: usize, row: usize, col: usize) -> Option<bool> {
        self.faults.as_ref()?.stuck_at(bank, sub, row, col)
    }

    /// The chip-level variation sampler (used by the decoder gate).
    pub fn sampler(&self) -> &VariationSampler {
        &self.sampler
    }

    /// Device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Vendor profile.
    pub fn profile(&self) -> &VendorProfile {
        &self.profile
    }

    /// Capacitance of one cell.
    pub fn cell_capacitance(&self, bank: usize, sub: usize, row: usize, col: usize) -> Femtofarads {
        let rel = self.sampler.normal(
            ParamId::CellCapacitance,
            &[bank as u64, sub as u64, row as u64, col as u64],
            1.0,
            self.params.cell_cap_rel_sigma,
        );
        // Clamp: capacitance cannot be negative or wildly off.
        let cap = self.params.cell_cap * rel.clamp(0.5, 1.5);
        match &self.faults {
            Some(p) if p.is_weak(bank, sub, row, col) => cap * p.config().weak_cap_factor,
            _ => cap,
        }
    }

    /// Leakage time constant of one cell at 20 °C (before environmental
    /// scaling), including the group's retention flavor.
    pub fn leak_tau(&self, bank: usize, sub: usize, row: usize, col: usize) -> Seconds {
        let tau = self.sampler.lognormal(
            ParamId::LeakageTau,
            &[bank as u64, sub as u64, row as u64, col as u64],
            self.params.leak_tau_median.value(),
            self.params.leak_tau_sigma_ln,
        );
        let scaled = tau * self.profile.leak_tau_scale;
        match &self.faults {
            Some(p) if p.is_weak(bank, sub, row, col) => {
                Seconds(scaled * p.config().weak_tau_factor)
            }
            _ => Seconds(scaled),
        }
    }

    /// Whether the cell exhibits variable retention time.
    pub fn is_vrt(&self, bank: usize, sub: usize, row: usize, col: usize) -> bool {
        self.sampler.bernoulli(
            ParamId::VrtFlag,
            &[bank as u64, sub as u64, row as u64, col as u64],
            self.params.vrt_fraction,
        )
    }

    /// The leakage tau effective for a VRT cell during the epoch that
    /// contains `at`: randomly either the nominal tau or the much shorter
    /// alternate tau, re-drawn per epoch.
    pub fn vrt_effective_tau(
        &self,
        bank: usize,
        sub: usize,
        row: usize,
        col: usize,
        nominal: Seconds,
        at: Seconds,
    ) -> Seconds {
        let epoch = (at.value() / self.params.vrt_epoch.value()).floor() as u64;
        let fast = self.sampler.bernoulli(
            ParamId::VrtPhase,
            &[bank as u64, sub as u64, row as u64, col as u64, epoch],
            0.5,
        );
        if fast {
            Seconds(nominal.value() * self.params.vrt_tau_ratio)
        } else {
            nominal
        }
    }

    /// Static input-referred offset of a column's sense amplifier,
    /// including the group-wide bias that shapes the PUF Hamming weight.
    pub fn sense_offset(&self, bank: usize, sub: usize, col: usize) -> Volts {
        Volts(self.sampler.normal(
            ParamId::SenseOffset,
            &[bank as u64, sub as u64, col as u64],
            self.profile.sense_offset_mean.value(),
            self.params.sense_offset_sigma.value(),
        ))
    }

    /// Temperature coefficient of a column's sense offset (V per °C).
    pub fn sense_temp_coeff(&self, bank: usize, sub: usize, col: usize) -> f64 {
        self.sampler.normal(
            ParamId::SenseTempCoeff,
            &[bank as u64, sub as u64, col as u64],
            0.0,
            self.params.sense_temp_coeff_sigma,
        )
    }

    /// Charge-sharing weight of activation-role `slot` (0 = R1, 1 = R2,
    /// ...) for a column during multi-row activation. Values below 0.05
    /// are clamped; a word-line cannot contribute negative charge.
    pub fn share_weight(&self, bank: usize, sub: usize, slot: usize, col: usize) -> f64 {
        let mean = self
            .profile
            .row_weight_means
            .get(slot)
            .copied()
            .unwrap_or(1.0);
        self.sampler
            .normal(
                ParamId::RowShareWeight,
                &[bank as u64, sub as u64, slot as u64, col as u64],
                mean,
                self.params.share_weight_sigma,
            )
            .max(0.05)
    }

    /// Static charge-injection offset of one cell (cell-level volts):
    /// access-transistor mismatch perturbs the charge the cell delivers
    /// to the bit-line. Per (bank, sub-array, row, column) — the
    /// row-dependent entropy of the Frac-PUF.
    pub fn cell_inject(&self, bank: usize, sub: usize, row: usize, col: usize) -> Volts {
        Volts(self.sampler.normal(
            ParamId::CellInject,
            &[bank as u64, sub as u64, row as u64, col as u64],
            0.0,
            self.params.cell_inject_sigma.value(),
        ))
    }

    /// Whether a column of a sub-array is wired as anti-cells (cells on
    /// the reference side of the sense amplifier; physical `Vdd` reads as
    /// logical zero).
    pub fn is_anti_column(&self, bank: usize, sub: usize, col: usize) -> bool {
        self.sampler.bernoulli(
            ParamId::Polarity,
            &[bank as u64, sub as u64, col as u64],
            self.params.anti_cell_fraction,
        )
    }

    /// Residual per-cell asymmetry the Half-m operation leaves on the
    /// "Half" columns (most columns do not land exactly at `Vdd/2`; the
    /// paper finds only ~16 % produce a clean distinguishable Half value).
    pub fn halfm_asymmetry(&self, bank: usize, sub: usize, col: usize) -> Volts {
        Volts(self.sampler.normal(
            ParamId::HalfmAsymmetry,
            &[bank as u64, sub as u64, col as u64],
            0.0,
            self.params.halfm_asym_sigma.value(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::GroupId;

    fn silicon(seed: u64) -> Silicon {
        Silicon::new(seed, DeviceParams::default(), GroupId::B.profile())
    }

    #[test]
    fn parameters_are_stable_per_chip() {
        let s = silicon(1);
        assert_eq!(s.leak_tau(0, 0, 5, 9), s.leak_tau(0, 0, 5, 9));
        assert_eq!(s.sense_offset(1, 0, 3), s.sense_offset(1, 0, 3));
        assert_eq!(s.share_weight(0, 0, 1, 7), s.share_weight(0, 0, 1, 7));
    }

    #[test]
    fn different_chips_differ() {
        let a = silicon(1);
        let b = silicon(2);
        assert_ne!(a.sense_offset(0, 0, 0), b.sense_offset(0, 0, 0));
        assert_ne!(a.leak_tau(0, 0, 0, 0), b.leak_tau(0, 0, 0, 0));
    }

    #[test]
    fn cell_capacitance_is_clamped_positive() {
        let s = silicon(3);
        for col in 0..500 {
            let c = s.cell_capacitance(0, 0, 0, col);
            assert!(c.value() > 0.0);
            assert!(c.value() >= DeviceParams::default().cell_cap.value() * 0.5);
            assert!(c.value() <= DeviceParams::default().cell_cap.value() * 1.5);
        }
    }

    #[test]
    fn vrt_fraction_is_small() {
        let s = silicon(4);
        let n = 20_000;
        let vrt = (0..n).filter(|&c| s.is_vrt(0, 0, 0, c)).count();
        let frac = vrt as f64 / n as f64;
        assert!(frac < 0.02, "VRT fraction {frac} too large");
        assert!(frac > 0.0005, "VRT fraction {frac} suspiciously small");
    }

    #[test]
    fn vrt_tau_flips_between_epochs() {
        let s = silicon(5);
        // Find a VRT cell.
        let col = (0..50_000)
            .find(|&c| s.is_vrt(0, 0, 0, c))
            .expect("no VRT cell found");
        let nominal = s.leak_tau(0, 0, 0, col);
        let taus: Vec<Seconds> = (0..40)
            .map(|e| {
                s.vrt_effective_tau(
                    0,
                    0,
                    0,
                    col,
                    nominal,
                    Seconds(e as f64 * DeviceParams::default().vrt_epoch.value() + 1.0),
                )
            })
            .collect();
        assert!(taus.contains(&nominal), "never nominal");
        assert!(taus.iter().any(|&t| t != nominal), "never fast");
    }

    #[test]
    fn group_b_primary_slot_weight_is_heavier() {
        let s = silicon(6);
        let n = 3000;
        let mean_slot =
            |slot: usize| (0..n).map(|c| s.share_weight(0, 0, slot, c)).sum::<f64>() / n as f64;
        let w1 = mean_slot(1); // R2: group B primary
        let w2 = mean_slot(2);
        assert!(w1 > w2 + 0.3, "primary {w1} vs other {w2}");
    }

    #[test]
    fn share_weight_never_negative() {
        let s = silicon(7);
        for c in 0..2000 {
            assert!(s.share_weight(0, 0, 3, c) >= 0.05);
        }
    }

    #[test]
    fn anti_columns_about_half() {
        let s = silicon(8);
        let n = 10_000;
        let anti = (0..n).filter(|&c| s.is_anti_column(0, 0, c)).count();
        let frac = anti as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "anti fraction {frac}");
    }

    #[test]
    fn weak_cells_shrink_cap_and_tau() {
        use crate::faults::{FaultConfig, FaultPlan};
        let healthy = silicon(21);
        let mut faulty = silicon(21);
        faulty.set_faults(Some(FaultPlan::new(
            21,
            FaultConfig {
                weak_density: 0.2,
                weak_cap_factor: 0.5,
                weak_tau_factor: 0.1,
                ..FaultConfig::none()
            },
        )));
        let plan = faulty.faults().unwrap().clone();
        let mut weak_seen = 0;
        for col in 0..512 {
            let (c0, c1) = (
                healthy.cell_capacitance(0, 0, 3, col),
                faulty.cell_capacitance(0, 0, 3, col),
            );
            let (t0, t1) = (
                healthy.leak_tau(0, 0, 3, col),
                faulty.leak_tau(0, 0, 3, col),
            );
            if plan.is_weak(0, 0, 3, col) {
                weak_seen += 1;
                assert!((c1.value() - c0.value() * 0.5).abs() < 1e-9);
                assert!((t1.value() - t0.value() * 0.1).abs() < 1e-9);
            } else {
                assert_eq!(c0, c1);
                assert_eq!(t0, t1);
            }
        }
        assert!(weak_seen > 0, "no weak cell in 512 at density 0.2");
    }

    #[test]
    fn disabled_plan_is_dropped() {
        use crate::faults::{FaultConfig, FaultPlan};
        let mut s = silicon(22);
        s.set_faults(Some(FaultPlan::new(22, FaultConfig::none())));
        assert!(s.faults().is_none());
        assert!(!s.cell_faults_enabled());
        assert_eq!(s.stuck_at(0, 0, 0, 0), None);
    }

    #[test]
    fn group_a_offset_bias_is_positive() {
        let s = Silicon::new(11, DeviceParams::default(), GroupId::A.profile());
        let n = 5000;
        let mean: f64 = (0..n).map(|c| s.sense_offset(0, 0, c).value()).sum::<f64>() / n as f64;
        // Group A's profile biases the offset up, which makes most bits
        // read zero (Hamming weight ~0.21 in Fig. 11).
        assert!(mean > 0.01, "mean offset {mean}");
    }
}
