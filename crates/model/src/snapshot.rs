//! Snapshot/restore of sub-array dynamic state.
//!
//! The paper's experiments repeat the same init/write prefix thousands of
//! times per (group, sub-array) cell before the one command sequence that
//! actually varies (the Frac/Half-m/F-MAJ fire). A [`SubArrayState`] is a
//! memcpy-style capture of everything a full-row write program leaves
//! behind — charge vectors, bit-line levels, the open-row set, `charged`
//! flags, and the not-yet-fired close event — stored with *relative* time
//! offsets so the controller can replay the capture at any later clock.
//!
//! **Determinism argument.** A restore is byte-identical to re-executing
//! the captured program because (a) after a full-row write the sub-array
//! state is a pure function of the written pattern and the command
//! offsets, (b) temporal noise is a pure function of each event's fire
//! time and coordinates — not of how many draws happened before it — so
//! suffix events after a restore see exactly the noise a live replay
//! would, and (c) all absolute times are rebased onto the new anchor,
//! which is exactly where the replayed program would have put them.

use crate::env::Environment;

/// Captured dynamic state of one row (voltages plus leak bookkeeping),
/// with `last` stored relative to the snapshot anchor.
#[derive(Debug, Clone)]
pub struct RowCapture {
    pub(crate) row: usize,
    pub(crate) v: Box<[f64]>,
    pub(crate) last_off: u64,
    pub(crate) charged: bool,
}

/// Captured dynamic state of one sub-array, relative to an anchor cycle.
///
/// Produced by `Subarray::snapshot` and reimposed by `Subarray::restore`;
/// the static silicon parameters are *not* captured — they are pure seed
/// hashes served by the materialize cache.
#[derive(Debug, Clone)]
pub struct SubArrayState {
    pub(crate) bank: usize,
    pub(crate) index: usize,
    pub(crate) bl: Box<[f64]>,
    pub(crate) sensed_bits: Box<[bool]>,
    pub(crate) open: Vec<usize>,
    pub(crate) sensed: bool,
    pub(crate) multi_row: bool,
    pub(crate) pending_share_off: Option<u64>,
    pub(crate) pending_sense_off: Option<u64>,
    pub(crate) pending_close_off: Option<u64>,
    pub(crate) rows: Vec<RowCapture>,
}

impl SubArrayState {
    /// Bank the capture belongs to.
    pub fn bank(&self) -> usize {
        self.bank
    }

    /// Sub-array index within the bank.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Approximate size of the captured payload in bytes (the
    /// `snapshot_bytes` perf counter).
    pub fn bytes(&self) -> u64 {
        let mut bytes = (self.bl.len() * 8 + self.sensed_bits.len() + self.open.len() * 8) as u64;
        for rc in &self.rows {
            bytes += (rc.v.len() * 8 + 16) as u64;
        }
        bytes
    }
}

/// A module-wide write-prefix capture: one [`SubArrayState`] per chip for
/// the written sub-array, and the environment the program ran under.
#[derive(Debug, Clone)]
pub struct ModuleWriteSnapshot {
    pub(crate) states: Vec<SubArrayState>,
    pub(crate) env: Environment,
}

impl ModuleWriteSnapshot {
    /// The environment the captured program executed under; a restore is
    /// only valid while the module environment is unchanged.
    pub fn environment(&self) -> &Environment {
        &self.env
    }

    /// Total captured bytes across all chips.
    pub fn bytes(&self) -> u64 {
        self.states.iter().map(SubArrayState::bytes).sum()
    }
}
