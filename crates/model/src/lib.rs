//! # fracdram-model — charge-level DRAM device simulator
//!
//! This crate is the hardware substrate of the FracDRAM reproduction
//! (Gao, Tziantzioulis, Wentzlaff — MICRO 2022): a behavioral, charge-level
//! simulator of commodity DDR3 chips that produces *defined* behavior for
//! the out-of-spec command timings the paper exploits.
//!
//! The model is mechanistic, not tabular: cell capacitors share charge
//! with bit-lines, sense amplifiers compare against per-column offset
//! thresholds, cells leak with per-cell log-normal time constants, and
//! the row decoder glitches into multi-row activation when an ACTIVATE
//! lands during an in-flight PRECHARGE. The paper's primitives (Frac,
//! Half-m), its verification methods (retention profiling, MAJ3 with
//! fractional operands), and its use cases (F-MAJ, the Frac-PUF) all
//! *emerge* from these mechanisms.
//!
//! ## Example
//!
//! ```
//! use fracdram_model::{Chip, ChipConfig, Geometry, GroupId, RowAddr};
//!
//! # fn main() -> Result<(), fracdram_model::ModelError> {
//! let mut chip = Chip::new(ChipConfig::new(GroupId::B, 42, Geometry::tiny()));
//! let addr = RowAddr::new(0, 3);
//!
//! // A normal, legally timed write...
//! chip.activate(addr, 100)?;
//! chip.write(0, 0, &vec![true; 64], 110)?;
//! chip.precharge(0, 130)?;
//!
//! // ...then the paper's Frac sequence: ACTIVATE and PRECHARGE
//! // back-to-back, which interrupts the row activation and leaves a
//! // fractional voltage in every cell of the row (the cell started at a
//! // full rail — 0 V or 1.5 V depending on the column's polarity — and
//! // moved toward Vdd/2).
//! chip.activate(addr, 200)?;
//! chip.precharge(0, 201)?;
//!
//! let v = chip.probe_cell_voltage(addr, 0, 300);
//! assert!(v.value() > 0.1 && v.value() < 1.4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitline;
pub mod cell;
pub mod chip;
pub mod decoder;
pub mod env;
pub mod error;
pub mod faults;
pub mod geometry;
pub mod materialize;
pub mod module;
pub mod params;
pub mod perf;
pub mod sense_amp;
pub mod silicon;
pub mod snapshot;
pub mod subarray;
pub mod units;
pub mod variation;
pub mod vendor;

pub use chip::{Chip, ChipConfig};
pub use env::Environment;
pub use error::{ModelError, Result};
pub use faults::{EnvWindow, FaultConfig, FaultPlan};
pub use geometry::{Geometry, RowAddr, SubarrayAddr};
pub use materialize::MaterializeCache;
pub use module::{BroadcastOp, Module, ModuleConfig};
pub use params::{DeviceParams, InternalTiming};
pub use perf::ModelPerf;
pub use subarray::{ProbeEvent, ProbeSample};
pub use units::{Cycles, Femtofarads, Seconds, Volts};
pub use vendor::{GroupId, VendorProfile};
