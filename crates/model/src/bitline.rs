//! Bit-line charge-sharing math.
//!
//! Raising a word-line connects a row of cell capacitors to the bit-lines.
//! Charge redistributes until cell and bit-line sit at a common voltage —
//! the capacitance-weighted mean of the participants. Because the bit-line
//! capacitance is several times the cell's, a single cell only nudges the
//! bit-line slightly away from its precharged `Vdd/2` (Fig. 3 of the
//! paper); several simultaneously opened cells pull it further (Fig. 4),
//! which is what makes in-memory majority possible.

use crate::units::{Femtofarads, Volts};

/// One participant in a charge-sharing event: a cell at voltage `v` with
/// effective capacitance `cap` scaled by the activation-role `weight`
/// (the "primary row" of a multi-row activation couples more strongly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingCell {
    /// Cell voltage before the event.
    pub v: Volts,
    /// Physical cell capacitance.
    pub cap: Femtofarads,
    /// Coupling weight (1.0 = nominal; the primary row is heavier).
    pub weight: f64,
}

/// Computes the equilibrium bit-line voltage after charge sharing between
/// a bit-line (`bl_v`, `bl_cap`) and a set of cells.
///
/// Returns `bl_v` unchanged when `cells` is empty.
pub fn share(bl_v: Volts, bl_cap: Femtofarads, cells: &[SharingCell]) -> Volts {
    if cells.is_empty() {
        return bl_v;
    }
    let mut num = bl_cap.value() * bl_v.value();
    let mut den = bl_cap.value();
    for c in cells {
        let eff = c.cap.value() * c.weight;
        num += eff * c.v.value();
        den += eff;
    }
    Volts(num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CC: Femtofarads = Femtofarads(22.0);
    const CB: Femtofarads = Femtofarads(88.0);

    fn cell(v: f64) -> SharingCell {
        SharingCell {
            v: Volts(v),
            cap: CC,
            weight: 1.0,
        }
    }

    #[test]
    fn empty_share_is_identity() {
        assert_eq!(share(Volts(0.75), CB, &[]), Volts(0.75));
    }

    #[test]
    fn single_cell_nudges_bitline_up() {
        // Vdd cell against a Vdd/2 bit-line, 4:1 capacitance ratio:
        // equilibrium = (4*0.75 + 1.5) / 5 = 0.9.
        let v = share(Volts(0.75), CB, &[cell(1.5)]);
        assert!((v.value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn single_cell_nudges_bitline_down() {
        let v = share(Volts(0.75), CB, &[cell(0.0)]);
        assert!((v.value() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_is_closer_to_bitline() {
        // "The equilibrium voltage is closer to the initial bit-line
        // voltage because the bit-line capacitance is much larger than
        // the cell's" (§III-A).
        let v = share(Volts(0.75), CB, &[cell(1.5)]);
        assert!((v.value() - 0.75).abs() < (v.value() - 1.5).abs());
    }

    #[test]
    fn three_cells_majority_direction() {
        // Two ones, one zero: bit-line ends above Vdd/2.
        let v = share(Volts(0.75), CB, &[cell(1.5), cell(1.5), cell(0.0)]);
        assert!(v.value() > 0.75);
        // Two zeros, one one: below Vdd/2.
        let v = share(Volts(0.75), CB, &[cell(0.0), cell(0.0), cell(1.5)]);
        assert!(v.value() < 0.75);
    }

    #[test]
    fn balanced_four_cells_stay_at_half() {
        let v = share(
            Volts(0.75),
            CB,
            &[cell(1.5), cell(0.0), cell(1.5), cell(0.0)],
        );
        assert!((v.value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn heavier_weight_dominates() {
        let heavy = SharingCell {
            v: Volts(0.0),
            cap: CC,
            weight: 3.0,
        };
        // One heavy zero vs two nominal ones: the heavy cell wins even
        // though it is outnumbered — the "primary row" failure mode of
        // the original MAJ3 (§VI-A2).
        let v = share(Volts(0.75), CB, &[heavy, cell(1.5), cell(1.5)]);
        assert!(v.value() < 0.75, "v = {v}");
    }

    #[test]
    fn share_is_order_independent() {
        let cells = [cell(1.5), cell(0.0), cell(1.5)];
        let mut rev = cells;
        rev.reverse();
        assert_eq!(share(Volts(0.75), CB, &cells), share(Volts(0.75), CB, &rev));
    }

    #[test]
    fn conservation_bound() {
        // Result always lies within [min, max] of participants.
        let v = share(Volts(0.75), CB, &[cell(1.5), cell(0.3)]);
        assert!(v.value() <= 1.5 && v.value() >= 0.3);
    }
}
