//! The sub-array state machine: word-lines, bit-lines, sense amplifiers,
//! and the out-of-spec interactions between ACTIVATE and PRECHARGE.
//!
//! This is where the paper's primitives physically happen:
//!
//! * a PRECHARGE landing between word-line raise and sense-amplifier
//!   enable disconnects the cells mid-charge-share, leaving a *fractional
//!   value* in them (**Frac**, Fig. 3);
//! * an ACTIVATE landing while a PRECHARGE is still in flight cancels the
//!   closure and glitches the row decoder into opening extra rows
//!   (**multi-row activation**, §II-D);
//! * a trailing PRECHARGE after a four-row activation freezes the shared
//!   charge into all four rows (**Half-m**, Fig. 4).
//!
//! Commands arrive with absolute cycle timestamps. Internal consequences
//! (word-line raise, charge share, sense enable, word-line close) are
//! *scheduled events* fired lazily, in fire-time order, before the next
//! command is processed — so the semantics depend only on command timing,
//! exactly like real silicon.

use std::time::Instant;

use crate::bitline::{self, SharingCell};
use crate::cell;
use crate::decoder::glitch_rows;
use crate::env::Environment;
use crate::error::{ModelError, Result};
use crate::materialize::{MaterializeCache, RowStatics};
use crate::params::InternalTiming;
use crate::perf::ModelPerf;
use crate::sense_amp;
use crate::silicon::Silicon;
use crate::snapshot::{RowCapture, SubArrayState};
use crate::units::{Femtofarads, Seconds, Volts, CYCLE_SECONDS};
use crate::variation::{NoiseEngine, NoisePurpose};

/// Mutable execution context threaded through command processing.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// Static silicon parameter oracle of the owning chip.
    pub silicon: &'a Silicon,
    /// Ambient conditions during this command.
    pub env: &'a Environment,
    /// Internal device latencies.
    pub timing: &'a InternalTiming,
    /// Counter-keyed temporal noise source of the owning chip
    /// (stateless: shared borrows suffice).
    pub noise: &'a NoiseEngine,
    /// Kernel counters of the owning chip.
    pub perf: &'a mut ModelPerf,
    /// Materialized silicon statics of the owning chip.
    pub cache: &'a mut MaterializeCache,
}

/// Materialized *dynamic* state of one row; every static per-cell
/// parameter lives in the [`MaterializeCache`] instead.
#[derive(Debug, Clone)]
struct RowState {
    /// Cell voltages in volts.
    v: Vec<f64>,
    /// Cycle at which leakage was last applied.
    last: u64,
    /// Whether any kernel ever drove charge into the row. A row that was
    /// never driven holds exactly 0 V everywhere, and decay of zero is
    /// zero — `leak_row` skips it wholesale.
    charged: bool,
}

/// A voltage probe recording the analog trajectory of one cell and its
/// bit-line — how Fig. 3 and Fig. 4 of the paper are regenerated.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSample {
    /// Cycle at which the sample was taken.
    pub cycle: u64,
    /// Cell voltage.
    pub cell_v: Volts,
    /// Bit-line voltage.
    pub bitline_v: Volts,
    /// Which internal event produced the sample.
    pub event: ProbeEvent,
}

/// Internal events visible to a voltage probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// Bit-lines equalized to `Vdd/2`.
    Precharged,
    /// Word-line raised; charge sharing completed.
    ChargeShared,
    /// Sense amplifier enabled; full-rail restore.
    Sensed,
    /// Word-lines dropped; cells disconnected.
    Closed,
}

#[derive(Debug, Clone)]
struct Probe {
    row: usize,
    col: usize,
    samples: Vec<ProbeSample>,
}

/// One sub-array: a grid of rows × columns sharing bit-lines and sense
/// amplifiers, plus the transient activation state.
#[derive(Debug, Clone)]
pub struct Subarray {
    bank: usize,
    index: usize,
    rows: usize,
    cols: usize,
    data: Vec<Option<Box<RowState>>>,
    /// Bit-line voltages (transient; meaningful between share and close).
    bl: Vec<f64>,
    /// Physical bits latched by the last sense.
    sensed_bits: Vec<bool>,
    /// Role-ordered open rows (index 0 = R1).
    open: Vec<usize>,
    sensed: bool,
    multi_row: bool,
    pending_share: Option<u64>,
    pending_sense: Option<u64>,
    pending_close: Option<u64>,
    /// Reusable per-column scratch buffer (Half-m closure asymmetry);
    /// kept on the struct so `fire_close` allocates nothing per event.
    scratch: Vec<f64>,
    /// Reusable per-column temporal-noise buffer: each kernel event
    /// batch-fills it from the counter-keyed engine before its column
    /// loop, so the hot loop reads contiguous precomputed noise.
    noise_buf: Vec<f64>,
    /// Reusable per-(slot, column) weight-jitter buffer for multi-row
    /// shares (stride = `cols`, one stripe per glitch slot).
    weight_noise: Vec<f64>,
    probes: Vec<Probe>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    // Variant order defines the tie-break at equal fire times: charge
    // sharing precedes sensing precedes closing.
    Share,
    Sense,
    Close,
}

impl Subarray {
    /// Creates an empty (never-written) sub-array.
    pub fn new(bank: usize, index: usize, rows: usize, cols: usize) -> Self {
        Subarray {
            bank,
            index,
            rows,
            cols,
            data: vec![None; rows],
            bl: vec![0.0; cols],
            sensed_bits: vec![false; cols],
            open: Vec::new(),
            sensed: false,
            multi_row: false,
            pending_share: None,
            pending_sense: None,
            pending_close: None,
            scratch: vec![0.0; cols],
            noise_buf: vec![0.0; cols],
            weight_noise: Vec::new(),
            probes: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the sub-array has neither open rows nor scheduled events.
    pub fn is_idle(&self) -> bool {
        self.open.is_empty()
            && self.pending_share.is_none()
            && self.pending_sense.is_none()
            && self.pending_close.is_none()
    }

    /// Currently open rows in activation-role order.
    pub fn open_rows(&self) -> &[usize] {
        &self.open
    }

    /// Whether the sense amplifiers latched for the current activation.
    pub fn is_sensed(&self) -> bool {
        self.sensed
    }

    /// Whether the column is wired as anti-cells.
    pub fn is_anti_column(&mut self, ctx: &mut Ctx<'_>, col: usize) -> bool {
        ctx.cache.ensure_cols(
            ctx.silicon,
            &mut *ctx.perf,
            self.bank,
            self.index,
            self.cols,
        );
        ctx.cache.cols(self.bank, self.index).anti[col]
    }

    /// Attaches a voltage probe to `(row, col)`; samples accumulate until
    /// taken with [`Subarray::take_probe_samples`].
    pub fn attach_probe(&mut self, row: usize, col: usize) {
        self.probes.push(Probe {
            row,
            col,
            samples: Vec::new(),
        });
    }

    /// Removes all probes and returns their samples (one vector per
    /// probe, in attachment order).
    pub fn take_probe_samples(&mut self) -> Vec<Vec<ProbeSample>> {
        std::mem::take(&mut self.probes)
            .into_iter()
            .map(|p| p.samples)
            .collect()
    }

    // ------------------------------------------------------------------
    // Command interface
    // ------------------------------------------------------------------

    /// Processes an ACTIVATE to `local_row` at absolute cycle `t`.
    pub fn activate(&mut self, ctx: &mut Ctx<'_>, local_row: usize, t: u64) -> Result<()> {
        if local_row >= self.rows {
            return Err(ModelError::RowOutOfRange {
                row: local_row,
                rows: self.rows,
            });
        }
        self.advance(ctx, t);

        let pre_in_flight = self.pending_close.is_some();
        if pre_in_flight && !self.open.is_empty() && !self.sensed {
            // ACT lands while a PRECHARGE is mid-close after an un-sensed
            // activation: the decoder glitch path (multi-row activation).
            self.pending_close = None;
            let r1 = self.open[0];
            let mut new_set = glitch_rows(
                ctx.silicon.profile().decoder,
                r1,
                local_row,
                self.rows,
                ctx.silicon.sampler(),
            );
            // Injected decoder dropouts: an *implicit* glitch row (role
            // ≥ 2 — neither R1 nor R2) whose word-line driver misfires
            // never joins the activation. Static per (pair, row), so the
            // same glitch misbehaves identically every trial.
            if let Some(plan) = ctx.silicon.faults() {
                if plan.config().decoder_dropout > 0.0 && new_set.len() > 2 {
                    let (bank, index) = (self.bank, self.index);
                    let before = new_set.len();
                    let mut role = 0;
                    new_set.retain(|&row| {
                        role += 1;
                        role <= 2 || !plan.decoder_drop(bank, index, r1, local_row, row)
                    });
                    ctx.perf.fault_decoder_drops += (before - new_set.len()) as u64;
                }
            }
            // Rows that were open but did not survive the glitch are
            // disconnected right here, keeping whatever partial charge
            // they hold (their state needs no action: cells store their
            // own voltage).
            self.open = new_set;
            self.multi_row = self.open.len() > 1;
            self.pending_share = Some(t + ctx.timing.wordline_raise);
            self.pending_sense = Some(t + ctx.timing.sense_enable);
            self.sensed = false;
        } else if pre_in_flight && self.sensed && !self.open.is_empty() {
            // ACT lands while a PRECHARGE is mid-close after a *sensed*
            // activation: the destination row connects to bit-lines still
            // driven by the sense amplifiers — RowClone-style copy.
            self.pending_close = None;
            if !self.open.contains(&local_row) {
                self.open.push(local_row);
            }
            self.drive_row_from_sense(ctx, local_row, t + ctx.timing.wordline_raise);
        } else if self.open.is_empty() {
            // Normal activation (an in-flight PRE with nothing to close is
            // superseded).
            self.pending_close = None;
            self.open.push(local_row);
            self.multi_row = false;
            self.sensed = false;
            // Bit-lines sit at the (current) precharge level.
            let half = ctx.silicon.params().half_vdd(ctx.env.vdd).value();
            self.bl.fill(half);
            self.record_probes(ctx, t, ProbeEvent::Precharged);
            self.pending_share = Some(t + ctx.timing.wordline_raise);
            self.pending_sense = Some(t + ctx.timing.sense_enable);
        }
        // ACT to an already-open, sensed bank without a PRE in flight is a
        // JEDEC violation real chips ignore; we do the same.
        Ok(())
    }

    /// Processes a PRECHARGE at absolute cycle `t`.
    pub fn precharge(&mut self, ctx: &mut Ctx<'_>, t: u64) {
        if self.is_idle() {
            return;
        }
        self.advance(ctx, t);
        if self.open.is_empty() {
            return;
        }
        self.pending_close = Some(t + ctx.timing.precharge_close);
    }

    /// Reads the latched row buffer (physical bits).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BankClosed`] if no activation has been
    /// sensed.
    pub fn read(&mut self, ctx: &mut Ctx<'_>, t: u64) -> Result<Vec<bool>> {
        let mut out = Vec::new();
        self.read_into(ctx, t, &mut out)?;
        Ok(out)
    }

    /// [`Subarray::read`] into a caller-provided buffer (cleared and
    /// refilled), so arena-recycled trial loops never allocate per read.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BankClosed`] if no activation has been
    /// sensed.
    pub fn read_into(&mut self, ctx: &mut Ctx<'_>, t: u64, out: &mut Vec<bool>) -> Result<()> {
        self.advance(ctx, t);
        if !self.sensed {
            return Err(ModelError::BankClosed { bank: self.bank });
        }
        out.clear();
        out.extend_from_slice(&self.sensed_bits);
        Ok(())
    }

    /// Writes physical bits through the sense amplifiers into all open
    /// rows (full-rail overwrite), optionally restricted to a column
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BankClosed`] if no activation has been
    /// sensed, or [`ModelError::WidthMismatch`] if `bits` does not match
    /// the column range.
    pub fn write(
        &mut self,
        ctx: &mut Ctx<'_>,
        t: u64,
        start_col: usize,
        bits: &[bool],
    ) -> Result<()> {
        self.advance(ctx, t);
        if !self.sensed {
            return Err(ModelError::BankClosed { bank: self.bank });
        }
        if start_col + bits.len() > self.cols {
            return Err(ModelError::WidthMismatch {
                got: start_col + bits.len(),
                expected: self.cols,
            });
        }
        let vdd = ctx.env.vdd.value();
        for (i, &b) in bits.iter().enumerate() {
            let col = start_col + i;
            self.sensed_bits[col] = b;
            let rail = if b { vdd } else { 0.0 };
            self.bl[col] = rail;
        }
        for i in 0..self.open.len() {
            let row = self.open[i];
            self.ensure_row(row);
            let rs = self.data[row].as_mut().unwrap();
            for (i, &b) in bits.iter().enumerate() {
                rs.v[start_col + i] = if b { vdd } else { 0.0 };
            }
            rs.last = t;
            rs.charged = true;
        }
        // A write cannot heal a stuck cell.
        self.pin_stuck_open(ctx);
        Ok(())
    }

    /// Performs an internal refresh of one row: activate, sense, restore,
    /// close — destroying any fractional value it held (§III-C).
    pub fn refresh_row(&mut self, ctx: &mut Ctx<'_>, local_row: usize, t: u64) {
        self.advance(ctx, t);
        if self.data[local_row].is_none() {
            return; // never-written rows hold no charge worth refreshing
        }
        self.leak_row(ctx, local_row, t);
        ctx.cache.ensure_cols(
            ctx.silicon,
            &mut *ctx.perf,
            self.bank,
            self.index,
            self.cols,
        );
        ctx.cache.ensure_row(
            ctx.silicon,
            &mut *ctx.perf,
            self.bank,
            self.index,
            local_row,
            self.cols,
        );
        let params = ctx.silicon.params();
        let half = params.half_vdd(ctx.env.vdd).value();
        let bl_cap = params.bitline_cap;
        let sigma = params.sense_noise_sigma.value();
        // Batch noise pass: one contiguous fill per event. Refresh is the
        // one purpose where several events share a fire time (the chip
        // refreshes every row of a sub-array at the same `t`), so the row
        // is part of the key.
        let coords = [self.bank as u64, self.index as u64, local_row as u64];
        let noise_started = Instant::now();
        let event = ctx.noise.event(NoisePurpose::Refresh, t, &coords);
        ctx.perf.noise_draws += event.fill_normal(sigma, &mut self.noise_buf);
        ctx.perf.noise_fills += 1;
        ctx.perf.noise_ns += noise_started.elapsed().as_nanos() as u64;
        let flip_event = ctx.noise.event(NoisePurpose::RefreshFlip, t, &coords);
        let statics = ctx.cache.cols(self.bank, self.index);
        let stat = ctx.cache.row(self.bank, self.index, local_row);
        let flip_plan = ctx
            .silicon
            .faults()
            .filter(|p| p.config().sense_flip_rate > 0.0);
        let mut flips = 0u64;
        let rs = self.data[local_row].as_mut().unwrap();
        for col in 0..self.cols {
            let shared = bitline::share(
                Volts(half),
                bl_cap,
                &[SharingCell {
                    v: Volts(rs.v[col] + stat.inject[col]),
                    cap: Femtofarads(stat.cap[col] as f64),
                    weight: 1.0,
                }],
            );
            let mut th = sense_amp::threshold(
                params,
                ctx.env,
                Volts(statics.offset[col]),
                statics.temp_coeff[col],
            );
            if statics.anti[col] {
                th = sense_amp::mirror_for_anti(th, ctx.env);
            }
            let noisy = shared + Volts(self.noise_buf[col]);
            let mut one = sense_amp::senses_one(noisy, th);
            if let Some(plan) = flip_plan {
                if flip_event.uniform(col as u64) < plan.sense_flip_rate(self.bank, self.index, col)
                {
                    one = !one;
                    flips += 1;
                }
            }
            rs.v[col] = sense_amp::restore_level(one, ctx.env).value();
        }
        rs.last = t;
        rs.charged = true;
        if flip_plan.is_some() {
            ctx.perf.noise_draws += self.cols as u64;
        }
        ctx.perf.fault_sense_flips += flips;
        if ctx.silicon.cell_faults_enabled() {
            self.pin_stuck_row(ctx, local_row);
        }
    }

    /// Non-destructively inspects the current voltage of a cell at cycle
    /// `t` (pending events fired, leakage applied).
    pub fn cell_voltage(&mut self, ctx: &mut Ctx<'_>, row: usize, col: usize, t: u64) -> Volts {
        self.advance(ctx, t);
        self.leak_row(ctx, row, t);
        match &self.data[row] {
            Some(rs) => Volts(rs.v[col]),
            None => Volts(0.0),
        }
    }

    // ------------------------------------------------------------------
    // Event engine
    // ------------------------------------------------------------------

    /// Fires every scheduled internal event with fire time ≤ `t`, in
    /// chronological order.
    pub fn advance(&mut self, ctx: &mut Ctx<'_>, t: u64) {
        loop {
            let mut next: Option<(u64, EventKind)> = None;
            let mut consider = |time: Option<u64>, kind: EventKind| {
                if let Some(ft) = time {
                    if ft <= t && next.is_none_or(|(bt, bk)| (ft, kind) < (bt, bk)) {
                        next = Some((ft, kind));
                    }
                }
            };
            consider(self.pending_share, EventKind::Share);
            consider(self.pending_sense, EventKind::Sense);
            consider(self.pending_close, EventKind::Close);
            let Some((ft, kind)) = next else { break };
            match kind {
                EventKind::Share => {
                    self.pending_share = None;
                    self.fire_share(ctx, ft);
                }
                EventKind::Sense => {
                    self.pending_sense = None;
                    self.fire_sense(ctx, ft);
                }
                EventKind::Close => {
                    self.pending_close = None;
                    self.fire_close(ctx, ft);
                }
            }
        }
    }

    /// Charge sharing between the bit-lines and all open rows.
    ///
    /// Column-kernel form: per-cell statics come from the materialize
    /// cache as contiguous slices, and the open rows' state is detached
    /// into fixed slot arrays so the inner loop indexes plain buffers —
    /// no per-event allocation, no hashing, no map lookups.
    fn fire_share(&mut self, ctx: &mut Ctx<'_>, t: u64) {
        if self.open.is_empty() {
            return;
        }
        for i in 0..self.open.len() {
            let row = self.open[i];
            self.ensure_row(row);
            self.leak_row(ctx, row, t);
        }
        // Stuck cells enter the share at their rail (covers rows that
        // were never written), so the defect perturbs the shared charge.
        self.pin_stuck_open(ctx);
        // Batch noise pass: one contiguous per-column fill (plus one per
        // glitch slot for multi-row weight jitter), keyed by this event's
        // fire time — done before the timed kernel body so `share_ns`
        // stays a pure kernel measure.
        {
            let params = ctx.silicon.params();
            let noise_sigma = params.bitline_noise_sigma.value();
            let temporal_sigma = params.share_temporal_sigma;
            let coords = [self.bank as u64, self.index as u64];
            let noise_started = Instant::now();
            let event = ctx.noise.event(NoisePurpose::ShareEq, t, &coords);
            ctx.perf.noise_draws += event.fill_normal(noise_sigma, &mut self.noise_buf);
            ctx.perf.noise_fills += 1;
            if self.multi_row {
                self.weight_noise.resize(4 * self.cols, 0.0);
                for slot in 0..self.open.len().min(4) {
                    let ev = ctx.noise.event(
                        NoisePurpose::ShareWeight,
                        t,
                        &[self.bank as u64, self.index as u64, slot as u64],
                    );
                    ctx.perf.noise_draws += ev.fill_normal(
                        temporal_sigma,
                        &mut self.weight_noise[slot * self.cols..(slot + 1) * self.cols],
                    );
                }
            }
            ctx.perf.noise_ns += noise_started.elapsed().as_nanos() as u64;
        }
        let started = Instant::now();
        let params = ctx.silicon.params();
        let profile = ctx.silicon.profile();
        let bl_cap = params.bitline_cap;
        let multi = self.multi_row;
        let settle = if multi {
            params.multirow_settle
        } else {
            params.interrupted_settle
        };
        let bias = if multi {
            profile.multirow_bias.value()
        } else {
            0.0
        };
        let v_max = ctx.env.vdd.value() * 1.05;
        let n = self.open.len().min(16);
        for slot in 0..n {
            ctx.cache.ensure_row(
                ctx.silicon,
                &mut *ctx.perf,
                self.bank,
                self.index,
                self.open[slot],
                self.cols,
            );
        }
        if multi {
            for slot in 0..self.open.len().min(4) {
                ctx.cache.ensure_weights(
                    ctx.silicon,
                    &mut *ctx.perf,
                    self.bank,
                    self.index,
                    slot,
                    self.cols,
                );
            }
        }
        let mut stat: [Option<&RowStatics>; 16] = [None; 16];
        for (s, &row) in stat.iter_mut().zip(self.open.iter()) {
            *s = Some(ctx.cache.row(self.bank, self.index, row));
        }
        let mut weights: [&[f32]; 4] = [&[]; 4];
        if multi {
            for (slot, w) in weights.iter_mut().enumerate().take(self.open.len()) {
                *w = ctx.cache.weights(self.bank, self.index, slot);
            }
        }
        // Detach the open rows' state so cells and bit-lines update
        // together without aliasing `self.data`. Open rows are unique
        // (the decoder glitch produces a set), so every take succeeds.
        let mut state: [Option<Box<RowState>>; 16] = Default::default();
        for (slot, st) in state.iter_mut().enumerate().take(n) {
            debug_assert!(
                self.data[self.open[slot]].is_some(),
                "open row materialized above"
            );
            *st = self.data[self.open[slot]].take();
        }
        // Monomorphize the column loop on the participant-array capacity:
        // the dominant shapes (one open row for Frac/plain activations,
        // up to four for glitch/Half-m) get a right-sized scratch array
        // instead of zero-initializing 16 slots per column. The loop body
        // is shared, so every shape performs the same operations in the
        // same order — results are bit-identical across capacities.
        if n == 1 && !multi {
            share_columns_single(
                &mut self.bl,
                state[0].as_mut().unwrap(),
                stat[0].unwrap(),
                bl_cap,
                settle,
                bias,
                &self.noise_buf,
                v_max,
                self.cols,
            );
        } else if n <= 4 {
            share_columns::<4>(
                &mut self.bl,
                &mut state,
                &stat,
                &weights,
                n,
                multi,
                bl_cap,
                settle,
                bias,
                &self.noise_buf,
                &self.weight_noise,
                v_max,
                self.cols,
            );
        } else {
            share_columns::<16>(
                &mut self.bl,
                &mut state,
                &stat,
                &weights,
                n,
                multi,
                bl_cap,
                settle,
                bias,
                &self.noise_buf,
                &self.weight_noise,
                v_max,
                self.cols,
            );
        }
        for (slot, st) in state.iter_mut().enumerate().take(n) {
            let mut rs = st.take().unwrap();
            rs.charged = true;
            self.data[self.open[slot]] = Some(rs);
        }
        ctx.perf.share_events += 1;
        ctx.perf.columns += self.cols as u64;
        ctx.perf.share_ns += started.elapsed().as_nanos() as u64;
        // The share settled the stuck cells toward the bit-line; the
        // short immediately pulls them back.
        self.pin_stuck_open(ctx);
        self.record_probes(ctx, t, ProbeEvent::ChargeShared);
    }

    /// Sense-amplifier enable: latch, drive rails, restore all open rows.
    fn fire_sense(&mut self, ctx: &mut Ctx<'_>, t: u64) {
        // The final comparison threshold per column (offset, temperature
        // coefficient, supply coupling, anti-cell mirror) is static per
        // (sub-array, environment): materialized once, bit-identical to
        // the per-event expression it replaces.
        ctx.cache.ensure_sense_thresholds(
            ctx.silicon,
            &mut *ctx.perf,
            self.bank,
            self.index,
            self.cols,
            ctx.env,
        );
        let params = ctx.silicon.params();
        let sigma = params.sense_noise_sigma.value();
        // Batch noise pass, keyed by this sense event's fire time — done
        // before the timed kernel body so `sense_ns` stays a pure kernel
        // measure. Transient sense-amp flips batch the same way: the
        // per-column flip uniforms are pure lane functions of the flip
        // event, and the per-column flip rates are static per fault
        // plan, so both become contiguous buffers and the rare-fault
        // check drops out of the hot loop entirely.
        let coords = [self.bank as u64, self.index as u64];
        let noise_started = Instant::now();
        let event = ctx.noise.event(NoisePurpose::Sense, t, &coords);
        ctx.perf.noise_draws += event.fill_normal(sigma, &mut self.noise_buf);
        ctx.perf.noise_fills += 1;
        let flip_armed = ctx
            .silicon
            .faults()
            .is_some_and(|p| p.config().sense_flip_rate > 0.0);
        if flip_armed {
            ctx.cache.ensure_flip_rates(
                ctx.silicon,
                &mut *ctx.perf,
                self.bank,
                self.index,
                self.cols,
            );
            let flip_event = ctx.noise.event(NoisePurpose::SenseFlip, t, &coords);
            ctx.perf.noise_draws += flip_event.fill_uniform(&mut self.scratch);
        }
        ctx.perf.noise_ns += noise_started.elapsed().as_nanos() as u64;
        let started = Instant::now();
        let th = ctx.cache.sense_thresholds(self.bank, self.index);
        let vdd = ctx.env.vdd.value();
        let mut flips = 0u64;
        if flip_armed {
            let rates = ctx.cache.flip_rates(self.bank, self.index);
            for col in 0..self.cols {
                let noisy = self.bl[col] + self.noise_buf[col];
                let mut one = noisy > th[col];
                if self.scratch[col] < rates[col] {
                    one = !one;
                    flips += 1;
                }
                self.sensed_bits[col] = one;
                self.bl[col] = if one { vdd } else { 0.0 };
            }
        } else {
            #[allow(clippy::needless_range_loop)]
            for col in 0..self.cols {
                let noisy = self.bl[col] + self.noise_buf[col];
                let one = noisy > th[col];
                self.sensed_bits[col] = one;
                self.bl[col] = if one { vdd } else { 0.0 };
            }
        }
        ctx.perf.fault_sense_flips += flips;
        for i in 0..self.open.len() {
            let row = self.open[i];
            // Leakage was applied at share time moments ago; just restore.
            let rs = self.data[row].as_mut().unwrap();
            rs.v.copy_from_slice(&self.bl);
            rs.last = t;
            rs.charged = true;
        }
        // Restore drove the stuck cells to the sensed rail; the short
        // wins again.
        self.pin_stuck_open(ctx);
        self.sensed = true;
        ctx.perf.sense_events += 1;
        ctx.perf.columns += self.cols as u64;
        ctx.perf.sense_ns += started.elapsed().as_nanos() as u64;
        self.record_probes(ctx, t, ProbeEvent::Sensed);
    }

    /// Word-line closure: disconnect cells (they keep whatever voltage
    /// they hold), cancel a not-yet-fired sense, equalize bit-lines.
    fn fire_close(&mut self, ctx: &mut Ctx<'_>, t: u64) {
        // Interrupting a *multi-row* activation (Half-m) drops several
        // word-lines mid-share; the per-column asymmetry of that closure
        // leaves a static residue on the cells. This is why only some
        // columns produce a clean, distinguishable Half value (Fig. 8),
        // while Frac (single-row interruption) stays uniform.
        let started = Instant::now();
        if self.multi_row && !self.sensed && !self.open.is_empty() {
            ctx.cache.ensure_cols(
                ctx.silicon,
                &mut *ctx.perf,
                self.bank,
                self.index,
                self.cols,
            );
            let statics = ctx.cache.cols(self.bank, self.index);
            let vdd = ctx.env.vdd.value();
            let half = vdd / 2.0;
            // The raw per-column asymmetry is scaled by how metastable
            // the column's bit-line ended up: a column parked near Vdd/2
            // amplifies the word-line-drop disturbance, a strongly
            // driven column shrugs it off (seventh-power roll-off).
            for col in 0..self.cols {
                let metastable = (1.0 - (self.bl[col] - half).abs() / half).clamp(0.0, 1.0);
                self.scratch[col] = statics.halfm_asym[col] * metastable.powi(7);
            }
            for i in 0..self.open.len() {
                let row = self.open[i];
                let Some(rs) = self.data[row].as_mut() else {
                    continue;
                };
                for (v, &a) in rs.v.iter_mut().zip(&self.scratch) {
                    *v = (*v + a).clamp(0.0, vdd);
                }
                rs.charged = true;
            }
            ctx.perf.columns += self.cols as u64;
            self.pin_stuck_open(ctx);
        }
        self.pending_sense = None;
        self.pending_share = None;
        ctx.perf.close_events += 1;
        ctx.perf.close_ns += started.elapsed().as_nanos() as u64;
        self.record_probes(ctx, t, ProbeEvent::Closed);
        self.open.clear();
        self.multi_row = false;
        self.sensed = false;
        let half = ctx.silicon.params().half_vdd(ctx.env.vdd).value();
        self.bl.fill(half);
        self.record_probes(ctx, t + 1, ProbeEvent::Precharged);
    }

    /// RowClone copy path: drive a freshly opened row directly from the
    /// latched sense amplifiers.
    fn drive_row_from_sense(&mut self, ctx: &mut Ctx<'_>, row: usize, t: u64) {
        self.ensure_row(row);
        let vdd = ctx.env.vdd.value();
        let bits = &self.sensed_bits;
        let rs = self.data[row].as_mut().unwrap();
        for (v, &bit) in rs.v.iter_mut().zip(bits) {
            *v = if bit { vdd } else { 0.0 };
        }
        rs.last = t;
        rs.charged = true;
        if ctx.silicon.cell_faults_enabled() {
            self.pin_stuck_row(ctx, row);
        }
    }

    // ------------------------------------------------------------------
    // Fault hooks
    // ------------------------------------------------------------------

    /// Re-pins every stuck-at cell of `row` to its rail. A stuck cell is
    /// a hard short: whatever voltage the last kernel event left in it
    /// snaps back to the rail, which is exactly how the defect perturbs
    /// the *next* charge-sharing event instead of being a post-hoc bit
    /// flip. Callers gate on [`Silicon::cell_faults_enabled`] so the
    /// healthy path pays one branch.
    fn pin_stuck_row(&mut self, ctx: &mut Ctx<'_>, row: usize) {
        ctx.cache.ensure_row(
            ctx.silicon,
            &mut *ctx.perf,
            self.bank,
            self.index,
            row,
            self.cols,
        );
        let stat = ctx.cache.row(self.bank, self.index, row);
        if stat.stuck.is_empty() {
            return;
        }
        self.ensure_row(row);
        let vdd = ctx.env.vdd.value();
        let rs = self.data[row].as_mut().unwrap();
        let mut pins = 0u64;
        let mut charged = false;
        for &enc in stat.stuck.iter() {
            let rail = if enc & 1 == 1 { vdd } else { 0.0 };
            rs.v[(enc >> 1) as usize] = rail;
            charged |= rail != 0.0;
            pins += 1;
        }
        if charged {
            rs.charged = true;
        }
        ctx.perf.fault_stuck_pins += pins;
    }

    /// Pins the stuck cells of every open row (no-op without cell
    /// faults) — called after each kernel event that rewrote open-row
    /// voltages.
    pub(crate) fn pin_stuck_open(&mut self, ctx: &mut Ctx<'_>) {
        if !ctx.silicon.cell_faults_enabled() {
            return;
        }
        for i in 0..self.open.len() {
            let row = self.open[i];
            self.pin_stuck_row(ctx, row);
        }
    }

    // ------------------------------------------------------------------
    // Lazy state
    // ------------------------------------------------------------------

    fn ensure_row(&mut self, row: usize) {
        if self.data[row].is_some() {
            return;
        }
        self.data[row] = Some(Box::new(RowState {
            v: vec![0.0; self.cols],
            last: 0,
            charged: false,
        }));
    }

    /// Applies leakage to a row up to cycle `t`.
    fn leak_row(&mut self, ctx: &mut Ctx<'_>, row: usize, t: u64) {
        let Some(rs) = self.data[row].as_mut() else {
            ctx.perf.leak_row_skips += 1;
            return;
        };
        if t <= rs.last {
            ctx.perf.leak_row_skips += 1;
            return;
        }
        let dt = Seconds((t - rs.last) as f64 * CYCLE_SECONDS);
        if dt.value() < 1e-6 {
            // Sub-microsecond gaps leak nothing measurable; skip the
            // exponentials but keep the clock honest.
            rs.last = t;
            ctx.perf.leak_row_skips += 1;
            return;
        }
        if !rs.charged {
            // A never-driven row holds exactly 0 V everywhere; decay of
            // zero is zero (including the VRT undo/redo pair), so the
            // whole pass is a no-op beyond advancing the clock.
            rs.last = t;
            ctx.perf.leak_row_skips += 1;
            return;
        }
        let started = Instant::now();
        let scale = ctx
            .env
            .leakage_tau_scale(ctx.silicon.params().leak_tau_halving_celsius);
        // Event cadences repeat the same `(dt, scale)` pair across rows
        // and trials, so the per-column decay factors — each the exact
        // `exp(-dt / (tau20[col] * scale))` the stepped kernel computed —
        // materialize once and the pass becomes a cached-vector multiply.
        ctx.cache.ensure_decay_factors(
            ctx.silicon,
            &mut *ctx.perf,
            self.bank,
            self.index,
            row,
            self.cols,
            dt.value(),
            scale,
        );
        let stat = ctx.cache.row(self.bank, self.index, row);
        let factors = ctx
            .cache
            .decay_factors(self.bank, self.index, row, dt.value(), scale);
        let at = Seconds(rs.last as f64 * CYCLE_SECONDS);
        let mut exp_calls = 0u64;
        #[allow(clippy::needless_range_loop)]
        for col in 0..self.cols {
            let v = rs.v[col];
            if v != 0.0 {
                exp_calls += 1;
                // Same expression as `cell::decay` for dt > 0, v != 0.
                rs.v[col] = v * factors[col];
            }
        }
        // VRT cells override with their epoch-dependent tau.
        for &col in stat.vrt.iter() {
            let col = col as usize;
            let nominal = Seconds(stat.tau20[col] as f64 * scale);
            let eff = ctx
                .silicon
                .vrt_effective_tau(self.bank, self.index, row, col, nominal, at);
            // Undo the nominal decay and re-apply with the effective tau.
            let v = rs.v[col] * ctx.cache.exp(&mut *ctx.perf, dt.value() / nominal.value());
            exp_calls += 1;
            if v != 0.0 {
                exp_calls += 1;
                rs.v[col] = v * ctx.cache.exp(&mut *ctx.perf, -dt.value() / eff.value());
            } else {
                rs.v[col] = v;
            }
        }
        rs.last = t;
        ctx.perf.leak_events += 1;
        ctx.perf.columns += self.cols as u64;
        ctx.perf.exp_calls += exp_calls;
        ctx.perf.leak_ns += started.elapsed().as_nanos() as u64;
        // Stuck cells do not leak: the short holds them at the rail.
        if ctx.silicon.cell_faults_enabled() {
            self.pin_stuck_row(ctx, row);
        }
    }

    /// Captures the dynamic state of this sub-array for the rows in
    /// `rows`, with every internal timestamp stored relative to `anchor`
    /// so a later [`Subarray::restore`] can rebase it onto a new clock.
    pub fn snapshot(&self, rows: &[usize], anchor: u64) -> SubArrayState {
        let captured = rows
            .iter()
            .filter_map(|&row| {
                let rs = self.data[row].as_ref()?;
                debug_assert!(rs.last >= anchor, "snapshot row older than anchor");
                Some(RowCapture {
                    row,
                    v: rs.v.clone().into_boxed_slice(),
                    last_off: rs.last.saturating_sub(anchor),
                    charged: rs.charged,
                })
            })
            .collect();
        let off = |t: Option<u64>| {
            t.map(|ft| {
                debug_assert!(ft >= anchor, "pending event older than anchor");
                ft.saturating_sub(anchor)
            })
        };
        SubArrayState {
            bank: self.bank,
            index: self.index,
            bl: self.bl.clone().into_boxed_slice(),
            sensed_bits: self.sensed_bits.clone().into_boxed_slice(),
            open: self.open.clone(),
            sensed: self.sensed,
            multi_row: self.multi_row,
            pending_share_off: off(self.pending_share),
            pending_sense_off: off(self.pending_sense),
            pending_close_off: off(self.pending_close),
            rows: captured,
        }
    }

    /// Reimposes a snapshot taken with [`Subarray::snapshot`], rebasing
    /// every stored time offset onto `anchor`. Rows not captured in the
    /// snapshot keep their current state.
    pub fn restore(&mut self, state: &SubArrayState, anchor: u64) {
        debug_assert_eq!((state.bank, state.index), (self.bank, self.index));
        self.bl.copy_from_slice(&state.bl);
        self.sensed_bits.copy_from_slice(&state.sensed_bits);
        self.open.clear();
        self.open.extend_from_slice(&state.open);
        self.sensed = state.sensed;
        self.multi_row = state.multi_row;
        self.pending_share = state.pending_share_off.map(|o| anchor + o);
        self.pending_sense = state.pending_sense_off.map(|o| anchor + o);
        self.pending_close = state.pending_close_off.map(|o| anchor + o);
        for rc in &state.rows {
            self.ensure_row(rc.row);
            let rs = self.data[rc.row].as_mut().unwrap();
            rs.v.copy_from_slice(&rc.v);
            rs.last = anchor + rc.last_off;
            rs.charged = rc.charged;
        }
    }

    /// Reimposes a full-row write's effect on restored state: physical
    /// bits into the row buffer, rails onto bit-lines and every open row
    /// — operation-for-operation what [`Subarray::write`] does for a
    /// sensed full-row write.
    pub(crate) fn rewrite_rails(&mut self, physical: &[bool], vdd: f64, t_write: u64) {
        debug_assert_eq!(physical.len(), self.cols);
        for (col, &b) in physical.iter().enumerate() {
            self.sensed_bits[col] = b;
            self.bl[col] = if b { vdd } else { 0.0 };
        }
        for i in 0..self.open.len() {
            let row = self.open[i];
            self.ensure_row(row);
            let rs = self.data[row].as_mut().unwrap();
            for (v, &b) in rs.v.iter_mut().zip(physical) {
                *v = if b { vdd } else { 0.0 };
            }
            rs.last = t_write;
            rs.charged = true;
        }
    }

    /// Whether the only scheduled work (if any) is a word-line close —
    /// i.e. no charge share or sense is still in flight, so the analog
    /// outcome of the last activation is fully settled and a snapshot
    /// fast path may safely drain and overwrite the sub-array.
    pub fn close_only(&self) -> bool {
        self.pending_share.is_none() && self.pending_sense.is_none()
    }

    /// Whether any voltage probes are attached.
    pub fn has_probes(&self) -> bool {
        !self.probes.is_empty()
    }

    fn record_probes(&mut self, ctx: &mut Ctx<'_>, t: u64, event: ProbeEvent) {
        if self.probes.is_empty() {
            return;
        }
        let probes = std::mem::take(&mut self.probes);
        let mut filled = Vec::with_capacity(probes.len());
        for mut p in probes {
            self.leak_row(ctx, p.row, t);
            let cell_v = match &self.data[p.row] {
                Some(rs) => Volts(rs.v[p.col]),
                None => Volts(0.0),
            };
            p.samples.push(ProbeSample {
                cycle: t,
                cell_v,
                bitline_v: Volts(self.bl[p.col]),
                event,
            });
            filled.push(p);
        }
        self.probes = filled;
    }
}

/// The shared-charge column loop, monomorphized on the capacity of the
/// per-column participants array. `CAP` only sizes the scratch array; the
/// arithmetic (and its order) is identical for every instantiation, so a
/// `CAP = 1` Frac share and a `CAP = 16` pathological share produce the
/// same bits as the original fixed-16 loop. Temporal noise arrives
/// pre-filled: `eq_noise[col]` perturbs the equalized level and
/// `weight_noise[slot * cols + col]` jitters the glitch-slot weights.
#[allow(clippy::too_many_arguments)]
fn share_columns<const CAP: usize>(
    bl: &mut [f64],
    state: &mut [Option<Box<RowState>>; 16],
    stat: &[Option<&RowStatics>; 16],
    weights: &[&[f32]; 4],
    n: usize,
    multi: bool,
    bl_cap: Femtofarads,
    settle: f64,
    bias: f64,
    eq_noise: &[f64],
    weight_noise: &[f64],
    v_max: f64,
    cols: usize,
) {
    // Column lanes are independent, so a vector clone of the same body
    // computes identical per-lane bits (no reassociation, division stays
    // division); the baseline build is scalar SSE2, which leaves the
    // whole kernel's throughput on the table.
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
        && std::arch::is_x86_feature_detected!("avx512vl")
    {
        // SAFETY: feature presence checked above.
        unsafe {
            return share_columns_avx512::<CAP>(
                bl,
                state,
                stat,
                weights,
                n,
                multi,
                bl_cap,
                settle,
                bias,
                eq_noise,
                weight_noise,
                v_max,
                cols,
            );
        }
    }
    share_columns_body::<CAP>(
        bl,
        state,
        stat,
        weights,
        n,
        multi,
        bl_cap,
        settle,
        bias,
        eq_noise,
        weight_noise,
        v_max,
        cols,
    );
}

/// [`share_columns_body`] compiled for AVX-512: the auto-vectorizer
/// widens the independent column lanes while every lane still performs
/// the scalar op sequence, so results are bit-identical to the SSE2
/// build.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
#[allow(clippy::too_many_arguments)]
unsafe fn share_columns_avx512<const CAP: usize>(
    bl: &mut [f64],
    state: &mut [Option<Box<RowState>>; 16],
    stat: &[Option<&RowStatics>; 16],
    weights: &[&[f32]; 4],
    n: usize,
    multi: bool,
    bl_cap: Femtofarads,
    settle: f64,
    bias: f64,
    eq_noise: &[f64],
    weight_noise: &[f64],
    v_max: f64,
    cols: usize,
) {
    share_columns_body::<CAP>(
        bl,
        state,
        stat,
        weights,
        n,
        multi,
        bl_cap,
        settle,
        bias,
        eq_noise,
        weight_noise,
        v_max,
        cols,
    );
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn share_columns_body<const CAP: usize>(
    bl: &mut [f64],
    state: &mut [Option<Box<RowState>>; 16],
    stat: &[Option<&RowStatics>; 16],
    weights: &[&[f32]; 4],
    n: usize,
    multi: bool,
    bl_cap: Femtofarads,
    settle: f64,
    bias: f64,
    eq_noise: &[f64],
    weight_noise: &[f64],
    v_max: f64,
    cols: usize,
) {
    debug_assert!(n <= CAP);
    // Index loop on purpose: `col` strides five parallel buffers (`bl`,
    // per-slot `state`, `stat`, `weights`); zipping them would obscure
    // the column-kernel shape.
    #[allow(clippy::needless_range_loop)]
    for col in 0..cols {
        let mut participants: [SharingCell; CAP] = [SharingCell {
            v: Volts(0.0),
            cap: Femtofarads(0.0),
            weight: 0.0,
        }; CAP];
        for (slot, st) in stat.iter().take(n).enumerate() {
            let rs = state[slot].as_ref().unwrap();
            let st = st.unwrap();
            let weight = if multi && slot < 4 {
                // Static per-(slot, column) weight plus the per-trial
                // decoder-timing jitter (§VI-A2 instability source).
                let w = weights[slot][col] as f64;
                (w * (1.0 + weight_noise[slot * cols + col])).max(0.01)
            } else {
                1.0
            };
            // The cell contributes its voltage plus the static
            // charge-injection offset of its access transistor.
            participants[slot] = SharingCell {
                v: Volts(rs.v[col] + st.inject[col]),
                cap: Femtofarads(st.cap[col] as f64),
                weight,
            };
        }
        let mut v_eq = bitline::share(Volts(bl[col]), bl_cap, &participants[..n]).value();
        v_eq += bias + eq_noise[col];
        v_eq = v_eq.clamp(0.0, v_max);
        bl[col] = v_eq;
        for rs in state.iter_mut().take(n) {
            let rs = rs.as_mut().unwrap();
            rs.v[col] = cell::settle_toward(Volts(rs.v[col]), Volts(v_eq), settle).value();
        }
    }
}

/// The dominant share shape — one open row, no glitch weighting (every
/// plain activation and Frac step) — with the row references hoisted out
/// of the column loop. The body replays `bitline::share` with a single
/// weight-1.0 participant operation for operation, and reads the same
/// pre-filled `eq_noise` buffer, so the produced bits match
/// `share_columns::<1>` exactly.
#[allow(clippy::too_many_arguments)]
fn share_columns_single(
    bl: &mut [f64],
    rs: &mut RowState,
    st: &RowStatics,
    bl_cap: Femtofarads,
    settle: f64,
    bias: f64,
    eq_noise: &[f64],
    v_max: f64,
    cols: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
        && std::arch::is_x86_feature_detected!("avx512vl")
    {
        // SAFETY: feature presence checked above.
        unsafe {
            return share_columns_single_avx512(
                bl, rs, st, bl_cap, settle, bias, eq_noise, v_max, cols,
            );
        }
    }
    share_columns_single_body(bl, rs, st, bl_cap, settle, bias, eq_noise, v_max, cols);
}

/// [`share_columns_single_body`] compiled for AVX-512 — see
/// [`share_columns_avx512`] for why the wide build is bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
#[allow(clippy::too_many_arguments)]
unsafe fn share_columns_single_avx512(
    bl: &mut [f64],
    rs: &mut RowState,
    st: &RowStatics,
    bl_cap: Femtofarads,
    settle: f64,
    bias: f64,
    eq_noise: &[f64],
    v_max: f64,
    cols: usize,
) {
    share_columns_single_body(bl, rs, st, bl_cap, settle, bias, eq_noise, v_max, cols);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn share_columns_single_body(
    bl: &mut [f64],
    rs: &mut RowState,
    st: &RowStatics,
    bl_cap: Femtofarads,
    settle: f64,
    bias: f64,
    eq_noise: &[f64],
    v_max: f64,
    cols: usize,
) {
    let blc = bl_cap.value();
    #[allow(clippy::needless_range_loop)]
    for col in 0..cols {
        // Inlined `bitline::share` with one participant of weight 1.0:
        // same operations in the same order as the generic loop.
        let eff = st.cap[col] as f64 * 1.0;
        let v = rs.v[col] + st.inject[col];
        let mut num = blc * bl[col];
        let mut den = blc;
        num += eff * v;
        den += eff;
        let mut v_eq = num / den;
        v_eq += bias + eq_noise[col];
        v_eq = v_eq.clamp(0.0, v_max);
        bl[col] = v_eq;
        rs.v[col] = cell::settle_toward(Volts(rs.v[col]), Volts(v_eq), settle).value();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DeviceParams;
    use crate::vendor::GroupId;

    struct Bench {
        silicon: Silicon,
        env: Environment,
        timing: InternalTiming,
        noise: NoiseEngine,
        perf: ModelPerf,
        cache: MaterializeCache,
        sub: Subarray,
        now: u64,
    }

    impl Bench {
        fn new(group: GroupId) -> Self {
            Bench::with_params(group, DeviceParams::default())
        }

        fn with_params(group: GroupId, params: DeviceParams) -> Self {
            Bench {
                silicon: Silicon::new(0xBEEF, params, group.profile()),
                env: Environment::nominal(),
                timing: InternalTiming::default(),
                noise: NoiseEngine::new(42),
                perf: ModelPerf::default(),
                cache: MaterializeCache::new(0xBEEF),
                sub: Subarray::new(0, 0, 32, 32),
                now: 100,
            }
        }

        fn quiet(group: GroupId) -> Self {
            // Noise-free, variation-light configuration for deterministic
            // semantic tests.
            let params = DeviceParams {
                sense_offset_sigma: Volts(0.0),
                sense_noise_sigma: Volts(0.0),
                bitline_noise_sigma: Volts(0.0),
                cell_inject_sigma: Volts(0.0),
                share_weight_sigma: 0.0,
                share_temporal_sigma: 0.0,
                halfm_asym_sigma: Volts(0.0),
                cell_cap_rel_sigma: 0.0,
                vrt_fraction: 0.0,
                ..DeviceParams::default()
            };
            Bench::with_params(group, params)
        }

        /// Issues commands at relative cycle offsets from `self.now`, then
        /// bumps the clock past the last command.
        fn write_row(&mut self, row: usize, bits: &[bool]) {
            let t = self.now;
            let mut ctx = Ctx {
                silicon: &self.silicon,
                env: &self.env,
                timing: &self.timing,
                noise: &self.noise,
                perf: &mut self.perf,
                cache: &mut self.cache,
            };
            self.sub.activate(&mut ctx, row, t).unwrap();
            self.sub.write(&mut ctx, t + 10, 0, bits).unwrap();
            self.sub.precharge(&mut ctx, t + 20);
            self.sub.advance(&mut ctx, t + 30);
            self.now = t + 30;
        }

        fn read_row(&mut self, row: usize) -> Vec<bool> {
            let t = self.now;
            let mut ctx = Ctx {
                silicon: &self.silicon,
                env: &self.env,
                timing: &self.timing,
                noise: &self.noise,
                perf: &mut self.perf,
                cache: &mut self.cache,
            };
            self.sub.activate(&mut ctx, row, t).unwrap();
            let bits = self.sub.read(&mut ctx, t + 10).unwrap();
            self.sub.precharge(&mut ctx, t + 20);
            self.sub.advance(&mut ctx, t + 30);
            self.now = t + 30;
            bits
        }

        fn frac(&mut self, row: usize) {
            let t = self.now;
            let mut ctx = Ctx {
                silicon: &self.silicon,
                env: &self.env,
                timing: &self.timing,
                noise: &self.noise,
                perf: &mut self.perf,
                cache: &mut self.cache,
            };
            self.sub.activate(&mut ctx, row, t).unwrap();
            self.sub.precharge(&mut ctx, t + 1);
            self.sub.advance(&mut ctx, t + 7);
            self.now = t + 7;
        }

        fn cell_v(&mut self, row: usize, col: usize) -> f64 {
            let t = self.now;
            let mut ctx = Ctx {
                silicon: &self.silicon,
                env: &self.env,
                timing: &self.timing,
                noise: &self.noise,
                perf: &mut self.perf,
                cache: &mut self.cache,
            };
            self.sub.cell_voltage(&mut ctx, row, col, t).value()
        }
    }

    fn ones(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    fn zeros(n: usize) -> Vec<bool> {
        vec![false; n]
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut b = Bench::new(GroupId::B);
        let pattern: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        b.write_row(5, &pattern);
        assert_eq!(b.read_row(5), pattern);
        // And it survives a second read.
        assert_eq!(b.read_row(5), pattern);
    }

    #[test]
    fn read_without_activation_fails() {
        let mut b = Bench::new(GroupId::B);
        let mut sub = Subarray::new(0, 0, 8, 8);
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        assert_eq!(
            sub.read(&mut ctx, 10).unwrap_err(),
            ModelError::BankClosed { bank: 0 }
        );
    }

    #[test]
    fn activate_out_of_range_fails() {
        let mut b = Bench::new(GroupId::B);
        let mut sub = Subarray::new(0, 0, 8, 8);
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        assert!(matches!(
            sub.activate(&mut ctx, 99, 5),
            Err(ModelError::RowOutOfRange { .. })
        ));
    }

    #[test]
    fn frac_reduces_cell_voltage_monotonically() {
        let mut b = Bench::quiet(GroupId::B);
        b.write_row(3, &ones(32));
        let mut prev = b.cell_v(3, 0);
        assert!((prev - 1.5).abs() < 1e-9, "full write = {prev}");
        for _ in 0..6 {
            b.frac(3);
            let v = b.cell_v(3, 0);
            assert!(v < prev, "frac must lower the voltage: {v} vs {prev}");
            assert!(v > 0.75, "frac cannot cross Vdd/2 from above: {v}");
            prev = v;
        }
    }

    #[test]
    fn frac_raises_voltage_from_zero() {
        let mut b = Bench::quiet(GroupId::B);
        b.write_row(3, &zeros(32));
        let mut prev = b.cell_v(3, 0);
        assert_eq!(prev, 0.0);
        for _ in 0..6 {
            b.frac(3);
            let v = b.cell_v(3, 0);
            assert!(v > prev, "frac must raise the voltage from 0");
            assert!(v < 0.75, "frac cannot cross Vdd/2 from below");
            prev = v;
        }
    }

    #[test]
    fn frac_has_no_effect_on_timing_guarded_groups_via_chip_policy() {
        // The guard lives at chip level, but verify the subarray-level
        // mechanics: an uninterrupted activation restores full levels.
        let mut b = Bench::quiet(GroupId::B);
        b.write_row(2, &ones(32));
        // Normal full activation cycle (PRE only after restore).
        let t = b.now;
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        b.sub.activate(&mut ctx, 2, t).unwrap();
        b.sub.precharge(&mut ctx, t + 20);
        b.sub.advance(&mut ctx, t + 30);
        b.now = t + 30;
        assert!((b.cell_v(2, 0) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn glitch_opens_three_rows_on_group_b() {
        let mut b = Bench::quiet(GroupId::B);
        b.write_row(0, &ones(32));
        b.write_row(1, &ones(32));
        b.write_row(2, &zeros(32));
        let t = b.now;
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        b.sub.activate(&mut ctx, 1, t).unwrap();
        b.sub.precharge(&mut ctx, t + 1);
        b.sub.activate(&mut ctx, 2, t + 2).unwrap();
        b.sub.advance(&mut ctx, t + 3);
        assert_eq!(b.sub.open_rows(), &[1, 2, 0]);
        // Let the sense fire: majority (1,1,0 in every column... rows 0
        // and 1 hold ones, row 2 zeros) = 1.
        b.sub.advance(&mut ctx, t + 10);
        assert!(b.sub.is_sensed());
        let bits = b.sub.read(&mut ctx, t + 12).unwrap();
        assert!(bits.iter().all(|&x| x), "maj(1,1,0) must be 1");
        b.sub.precharge(&mut ctx, t + 20);
        b.sub.advance(&mut ctx, t + 30);
        b.now = t + 30;
        // The majority result is written back to all three rows.
        for row in 0..3 {
            assert!(
                (b.cell_v(row, 0) - 1.5).abs() < 1e-9,
                "row {row} not restored to result"
            );
        }
    }

    #[test]
    fn majority_of_three_zero_wins() {
        let mut b = Bench::quiet(GroupId::B);
        b.write_row(0, &zeros(32));
        b.write_row(1, &zeros(32));
        b.write_row(2, &ones(32));
        let t = b.now;
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        b.sub.activate(&mut ctx, 1, t).unwrap();
        b.sub.precharge(&mut ctx, t + 1);
        b.sub.activate(&mut ctx, 2, t + 2).unwrap();
        b.sub.advance(&mut ctx, t + 10);
        let bits = b.sub.read(&mut ctx, t + 12).unwrap();
        assert!(bits.iter().all(|&x| !x), "maj(0,0,1) must be 0");
    }

    #[test]
    fn interrupted_four_row_activation_is_halfm() {
        let mut b = Bench::quiet(GroupId::B);
        // Paper layout: R1=8, R2=1 -> opens {8,1,0,9}. Ones in 8 and 0,
        // zeros in 1 and 9 -> balanced -> Half value near Vdd/2.
        b.write_row(8, &ones(32));
        b.write_row(0, &ones(32));
        b.write_row(1, &zeros(32));
        b.write_row(9, &zeros(32));
        let t = b.now;
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        b.sub.activate(&mut ctx, 8, t).unwrap();
        b.sub.precharge(&mut ctx, t + 1);
        b.sub.activate(&mut ctx, 1, t + 2).unwrap();
        b.sub.precharge(&mut ctx, t + 3); // trailing PRE beats the sense
        b.sub.advance(&mut ctx, t + 10);
        assert!(!b.sub.is_sensed(), "sense must have been interrupted");
        assert!(b.sub.open_rows().is_empty());
        b.now = t + 10;
        // All four cells hold a fractional value strictly between rails.
        for row in [8, 1, 0, 9] {
            let v = b.cell_v(row, 0);
            assert!(v > 0.1 && v < 1.4, "row {row} = {v}");
        }
        // Ones became "weak ones" (above Vdd/2), zeros "weak zeros".
        assert!(b.cell_v(8, 0) > 0.75);
        assert!(b.cell_v(1, 0) < 0.75);
    }

    #[test]
    fn single_only_decoder_closes_r1_with_partial_charge() {
        let mut b = Bench::quiet(GroupId::E);
        b.write_row(1, &ones(32));
        b.write_row(2, &zeros(32));
        let t = b.now;
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        b.sub.activate(&mut ctx, 1, t).unwrap();
        b.sub.precharge(&mut ctx, t + 1);
        b.sub.activate(&mut ctx, 2, t + 2).unwrap();
        b.sub.advance(&mut ctx, t + 3);
        assert_eq!(b.sub.open_rows(), &[2]);
        b.sub.advance(&mut ctx, t + 10);
        b.sub.precharge(&mut ctx, t + 20);
        b.sub.advance(&mut ctx, t + 30);
        b.now = t + 30;
        // R1 was interrupted mid-share: it holds a fractional value.
        let v1 = b.cell_v(1, 0);
        assert!(v1 < 1.5 && v1 > 0.75, "r1 = {v1}");
        // R2 completed normally: full restore of its zeros.
        assert!(b.cell_v(2, 0) < 1e-9);
    }

    #[test]
    fn rowclone_copy_via_overlapped_precharge() {
        let mut b = Bench::quiet(GroupId::B);
        let pattern: Vec<bool> = (0..32).map(|i| i % 5 == 0).collect();
        b.write_row(4, &pattern);
        let t = b.now;
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        b.sub.activate(&mut ctx, 4, t).unwrap();
        // Wait for full restore, then PRE and immediately ACT(dst).
        b.sub.precharge(&mut ctx, t + 15);
        b.sub.activate(&mut ctx, 7, t + 16).unwrap();
        b.sub.precharge(&mut ctx, t + 17 + 5);
        b.sub.advance(&mut ctx, t + 40);
        b.now = t + 40;
        assert_eq!(b.read_row(7), pattern, "copy destination");
        assert_eq!(b.read_row(4), pattern, "source preserved");
    }

    #[test]
    fn leakage_flips_written_ones_eventually() {
        let mut b = Bench::quiet(GroupId::B);
        b.write_row(6, &ones(32));
        // Jump 100 hours into the future. (Quiet bench has no offset
        // variation; the threshold is exactly 0.75 V on every column.)
        let hundred_hours = (Seconds::from_hours(100.0).value() / CYCLE_SECONDS) as u64;
        b.now += hundred_hours;
        let bits = b.read_row(6);
        let survivors = bits.iter().filter(|&&x| x).count();
        // With tau median 250 h (group scale 1.25), retention median is
        // ~0.69 * 312 h = 216 h; some cells flip by 100 h, some survive.
        assert!(survivors > 0, "all cells flipped");
        assert!(survivors < 32, "no cell flipped in 100 h");
    }

    #[test]
    fn zeros_do_not_leak_upward() {
        let mut b = Bench::quiet(GroupId::B);
        b.write_row(6, &zeros(32));
        let t = (Seconds::from_hours(200.0).value() / CYCLE_SECONDS) as u64;
        b.now += t;
        let bits = b.read_row(6);
        assert!(bits.iter().all(|&x| !x), "a physical zero leaked to one");
    }

    #[test]
    fn probe_records_frac_trajectory() {
        let mut b = Bench::quiet(GroupId::B);
        b.write_row(3, &ones(32));
        b.sub.attach_probe(3, 0);
        b.frac(3);
        let samples = b.sub.take_probe_samples().remove(0);
        assert!(samples.len() >= 2);
        // The share sample shows cell above bitline equilibrium-pull.
        let shared = samples
            .iter()
            .find(|s| s.event == ProbeEvent::ChargeShared)
            .expect("no share sample");
        assert!(shared.bitline_v.value() > 0.75 && shared.bitline_v.value() < 1.5);
        let closed = samples
            .iter()
            .find(|s| s.event == ProbeEvent::Closed)
            .expect("no close sample");
        assert!(closed.cell_v.value() < 1.5);
    }

    #[test]
    fn masked_write_only_touches_range() {
        let mut b = Bench::new(GroupId::B);
        b.write_row(9, &ones(32));
        let t = b.now;
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        b.sub.activate(&mut ctx, 9, t).unwrap();
        b.sub.write(&mut ctx, t + 10, 8, &zeros(8)).unwrap();
        b.sub.precharge(&mut ctx, t + 20);
        b.sub.advance(&mut ctx, t + 30);
        b.now = t + 30;
        let bits = b.read_row(9);
        for (i, &bit) in bits.iter().enumerate() {
            assert_eq!(bit, !(8..16).contains(&i), "col {i}");
        }
    }

    #[test]
    fn refresh_destroys_fractional_value() {
        let mut b = Bench::quiet(GroupId::B);
        b.write_row(3, &ones(32));
        for _ in 0..3 {
            b.frac(3);
        }
        let v_frac = b.cell_v(3, 0);
        assert!(v_frac < 1.4);
        let t = b.now;
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        b.sub.refresh_row(&mut ctx, 3, t);
        b.now = t + 10;
        // The fractional value is destroyed: the sense amplifier resolves
        // it to whichever rail its threshold dictates (after three Frac
        // operations the level sits near the decision point, so either
        // rail is legitimate — but no fractional value may remain).
        let v = b.cell_v(3, 0);
        assert!(
            v.abs() < 1e-9 || (v - 1.5).abs() < 1e-9,
            "refresh must snap the fractional value to a rail, got {v}"
        );

        // A barely-disturbed row (one Frac, still near Vdd) must restore
        // to full Vdd.
        b.write_row(4, &ones(32));
        b.frac(4);
        let t = b.now;
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        b.sub.refresh_row(&mut ctx, 4, t);
        b.now = t + 10;
        assert!((b.cell_v(4, 0) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn write_width_mismatch_is_rejected() {
        let mut b = Bench::new(GroupId::B);
        let t = b.now;
        let mut ctx = Ctx {
            silicon: &b.silicon,
            env: &b.env,
            timing: &b.timing,
            noise: &b.noise,
            perf: &mut b.perf,
            cache: &mut b.cache,
        };
        b.sub.activate(&mut ctx, 0, t).unwrap();
        let err = b.sub.write(&mut ctx, t + 10, 30, &ones(8)).unwrap_err();
        assert!(matches!(err, ModelError::WidthMismatch { .. }));
    }
}
