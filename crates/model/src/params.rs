//! Physical parameters of the simulated DRAM device.
//!
//! The defaults were calibrated (see `tests/calibration.rs` at the
//! workspace root) so that the *shapes* reported in the FracDRAM paper
//! emerge from the analog mechanisms: Frac convergence toward `Vdd/2`,
//! retention-bucket migration, the ~9% baseline MAJ3 error improving to
//! ~2% under F-MAJ, and an intra-/inter-HD separation for the PUF.

use crate::units::{Femtofarads, Seconds, Volts};

/// Internal device latencies, in memory cycles (2.5 ns each).
///
/// These model what the silicon does, not what JEDEC allows; the JEDEC
/// constraint table lives in `fracdram-softmc` and is deliberately
/// violable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternalTiming {
    /// Cycles from ACTIVATE issue until the word-line is fully raised and
    /// charge sharing with the bit-line begins.
    pub wordline_raise: u64,
    /// Cycles from ACTIVATE issue until the sense amplifier is enabled
    /// (if no PRECHARGE interrupts it first).
    pub sense_enable: u64,
    /// Cycles from ACTIVATE issue until restoration of the open row(s) is
    /// complete (the device-side analog of tRAS).
    pub restore_done: u64,
    /// Cycles from PRECHARGE issue until the word-lines are actually
    /// lowered. A second ACTIVATE arriving before this point cancels the
    /// closure and triggers the row-decoder glitch.
    pub precharge_close: u64,
    /// Cycles from PRECHARGE issue until the bit-lines are equalized to
    /// `Vdd/2` (the device-side analog of tRP).
    pub precharge_done: u64,
}

impl Default for InternalTiming {
    fn default() -> Self {
        // Chosen so the paper's sequences behave as described:
        // - Frac: ACT@0, PRE@1 -> close@3 < sense@4 -> interrupted.
        // - Multi-row: ACT@0, PRE@1, ACT@2 -> ACT lands before close@3.
        // - Half-m: ...ACT(R2)@2, PRE@3 -> close@5 < sense@6(=2+4).
        InternalTiming {
            wordline_raise: 1,
            sense_enable: 4,
            restore_done: 14,
            precharge_close: 2,
            precharge_done: 5,
        }
    }
}

/// Statistical and analog parameters of the device model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Nominal supply voltage. DDR3 uses 1.5 V.
    pub vdd_nominal: Volts,
    /// Nominal cell capacitance.
    pub cell_cap: Femtofarads,
    /// Relative (fractional) sigma of per-cell capacitance variation.
    pub cell_cap_rel_sigma: f64,
    /// Bit-line capacitance. The ratio to `cell_cap` sets how far a single
    /// charge-sharing step moves the bit-line away from `Vdd/2`.
    pub bitline_cap: Femtofarads,
    /// Fraction of the cell→equilibrium voltage gap closed during one
    /// *interrupted* activation (word-line up for only ~1 cycle). Full,
    /// uninterrupted activations always settle completely.
    pub interrupted_settle: f64,
    /// Settle fraction during an interrupted **multi-row** activation
    /// (Half-m). The glitch raises the extra word-lines late and only
    /// partially, so the cells move a smaller fraction of the way to the
    /// shared equilibrium than in a clean single-row interruption —
    /// which is why Half-m's "weak" ones and zeros stay near their rails
    /// (Fig. 4) and re-sense like normal values (Fig. 8).
    pub multirow_settle: f64,
    /// Sigma of the per-column sense-amplifier input-referred offset, in
    /// volts. Static per chip; the entropy source of the Frac-PUF.
    pub sense_offset_sigma: Volts,
    /// Sigma of the temporal sensing noise per activation, in volts.
    pub sense_noise_sigma: Volts,
    /// Sigma of thermal noise added to the bit-line during charge sharing.
    pub bitline_noise_sigma: Volts,
    /// Sigma of the static, per-cell charge-injection offset (access
    /// transistor mismatch, clock feedthrough) expressed at the *cell*
    /// level; its bit-line-referred effect is scaled by the sharing
    /// ratio. This is what makes responses from different rows of the
    /// same sub-array distinct — the row-level entropy of the Frac-PUF
    /// challenge space.
    pub cell_inject_sigma: Volts,
    /// Per-trial (temporal) relative jitter of the multi-row
    /// charge-sharing weights: the decoder glitch does not open the rows
    /// at exactly the same instant on every trial, so each row's
    /// effective contribution varies run to run. This — not additive
    /// bit-line noise — is what makes the in-memory majority unstable
    /// (the 9.1 % baseline error of §VI-A2).
    pub share_temporal_sigma: f64,
    /// Median of the per-cell leakage time constant at 20 °C.
    pub leak_tau_median: Seconds,
    /// Sigma (of the underlying normal) of the log-normal tau distribution.
    pub leak_tau_sigma_ln: f64,
    /// Temperature increase that halves the leakage time constant, in °C.
    pub leak_tau_halving_celsius: f64,
    /// Fraction of cells exhibiting variable retention time (VRT).
    pub vrt_fraction: f64,
    /// Ratio between the two leakage time constants of a VRT cell.
    pub vrt_tau_ratio: f64,
    /// Duration of one VRT phase epoch; the active tau re-randomizes each
    /// epoch.
    pub vrt_epoch: Seconds,
    /// Sigma of the per-(row-slot, column) charge-sharing weight jitter
    /// during multi-row activation. This is what limits F-MAJ stability.
    pub share_weight_sigma: f64,
    /// Per-column sigma of the closure asymmetry an interrupted
    /// multi-row activation leaves on its cells, *before* the
    /// metastability scaling: columns whose bit-line ended near `Vdd/2`
    /// amplify the word-line-drop asymmetry (a metastable node follows
    /// any perturbation), while strongly driven columns suppress it.
    /// The voltage is clamped to the rails, so large values mean "the
    /// column's Half value collapses toward a rail" — which is why only
    /// ~16 % of columns produce a clean, distinguishable Half value
    /// (Fig. 8).
    pub halfm_asym_sigma: Volts,
    /// Sigma of the per-column temperature coefficient of the sense offset
    /// (volts per °C); drives the small intra-HD growth in Fig. 12b.
    pub sense_temp_coeff_sigma: f64,
    /// Fraction of the supply-voltage change that leaks into the sense
    /// threshold beyond the ideal `Vdd/2` tracking (Fig. 12a).
    pub sense_vdd_coupling: f64,
    /// Fraction of rows wired as anti-cells (physical `Vdd` reads as
    /// logical zero).
    pub anti_cell_fraction: f64,
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams {
            vdd_nominal: Volts(1.5),
            cell_cap: Femtofarads(22.0),
            cell_cap_rel_sigma: 0.05,
            bitline_cap: Femtofarads(88.0),
            interrupted_settle: 0.8,
            multirow_settle: 0.35,
            sense_offset_sigma: Volts(0.020),
            sense_noise_sigma: Volts(0.0015),
            bitline_noise_sigma: Volts(0.002),
            cell_inject_sigma: Volts(0.05),
            share_temporal_sigma: 0.06,
            leak_tau_median: Seconds::from_hours(250.0),
            leak_tau_sigma_ln: 1.8,
            leak_tau_halving_celsius: 10.0,
            vrt_fraction: 0.005,
            vrt_tau_ratio: 0.05,
            vrt_epoch: Seconds::from_minutes(7.0),
            share_weight_sigma: 0.06,
            halfm_asym_sigma: Volts(3.0),
            sense_temp_coeff_sigma: 7.0e-5,
            sense_vdd_coupling: 0.02,
            anti_cell_fraction: 0.5,
        }
    }
}

impl DeviceParams {
    /// The precharge voltage (`Vdd/2`) for a given supply voltage.
    pub fn half_vdd(&self, vdd: Volts) -> Volts {
        vdd / 2.0
    }

    /// Fraction of the gap to equilibrium closed by one interrupted
    /// charge-sharing step, for a cell of capacitance `cc` against the
    /// bit-line: `settle * Cb / (Cb + Cc)`.
    ///
    /// A cell at voltage `v` connected to a bit-line precharged to `p`
    /// ends the step at `v + frac * (p - v)`.
    pub fn interrupted_pull(&self, cc: Femtofarads) -> f64 {
        self.interrupted_settle * (self.bitline_cap / (self.bitline_cap + cc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_timing_supports_paper_sequences() {
        let t = InternalTiming::default();
        // Frac: PRE issued 1 cycle after ACT must close the word-line
        // before the sense amplifier would enable.
        assert!(1 + t.precharge_close < t.sense_enable);
        // Multi-row: ACT(R2) issued 2 cycles after ACT(R1) (1 cycle after
        // PRE) must land before the PRE closes anything.
        assert!(2 < 1 + t.precharge_close);
        // Half-m: trailing PRE at cycle 3 closes at 5, before the second
        // activation's sense enable at 2 + sense_enable = 6.
        assert!(3 + t.precharge_close < 2 + t.sense_enable);
        // A normal activation lives long enough to restore.
        assert!(t.sense_enable < t.restore_done);
    }

    #[test]
    fn frac_geometric_convergence() {
        let p = DeviceParams::default();
        let pull = p.interrupted_pull(p.cell_cap);
        assert!(pull > 0.0 && pull < 1.0);
        // Start from Vdd, repeatedly share with a Vdd/2 bit-line.
        let vdd = p.vdd_nominal.value();
        let mut v = vdd;
        let mut prev_delta = v - vdd / 2.0;
        for _ in 0..10 {
            v += pull * (vdd / 2.0 - v);
            let delta = v - vdd / 2.0;
            assert!(delta > 0.0, "never crosses Vdd/2");
            assert!(delta < prev_delta, "monotonic convergence");
            prev_delta = delta;
        }
        // Ten Frac ops bring the voltage close to Vdd/2 (PUF regime).
        assert!(prev_delta < 0.02 * vdd, "delta after 10 = {prev_delta}");
    }

    #[test]
    fn half_vdd_tracks_supply() {
        let p = DeviceParams::default();
        assert_eq!(p.half_vdd(Volts(1.5)), Volts(0.75));
        assert_eq!(p.half_vdd(Volts(1.4)), Volts(0.7));
    }
}
