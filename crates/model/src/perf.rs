//! Kernel-level performance counters.
//!
//! [`ModelPerf`] counts what the sub-array event kernels actually did —
//! events fired, columns processed, exponentials evaluated, materialize-
//! cache traffic, and wall time spent inside each kernel. The counters
//! are pure observability: they are surfaced on experiment **stderr**
//! summaries and in `--json` dumps, never on stdout, so figure output
//! stays byte-identical while the kernels get faster underneath.

/// Counters for the sub-array analog kernels of one chip (or, after
/// [`ModelPerf::accumulate`], of a whole module / fleet run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ModelPerf {
    /// Charge-share events fired (`fire_share`).
    pub share_events: u64,
    /// Sense-amplifier events fired (`fire_sense`).
    pub sense_events: u64,
    /// Word-line-close events fired (`fire_close`).
    pub close_events: u64,
    /// Leakage passes that did real work (past the sub-µs and
    /// zero-charge skips).
    pub leak_events: u64,
    /// Total columns processed across all kernel invocations.
    pub columns: u64,
    /// `exp()` evaluations in the leakage kernel.
    pub exp_calls: u64,
    /// Materialize-cache lookups that found a built buffer.
    pub cache_hits: u64,
    /// Materialize-cache lookups that had to build the buffer.
    pub cache_misses: u64,
    /// Wall nanoseconds spent in the share kernel.
    pub share_ns: u64,
    /// Wall nanoseconds spent in the sense kernel.
    pub sense_ns: u64,
    /// Wall nanoseconds spent in the close kernel.
    pub close_ns: u64,
    /// Wall nanoseconds spent in the leakage kernel.
    pub leak_ns: u64,
    /// Counter-keyed temporal-noise draws (normals and uniforms).
    pub noise_draws: u64,
    /// Batch noise fills (one per noise-consuming kernel event).
    pub noise_fills: u64,
    /// Wall nanoseconds spent filling noise buffers.
    pub noise_ns: u64,
    /// Write-prefix restores served from a captured snapshot.
    pub snapshot_hits: u64,
    /// Write prefixes executed live (and captured for later restores).
    pub snapshot_misses: u64,
    /// Bytes of sub-array state captured into snapshots.
    pub snapshot_bytes: u64,
    /// `exp()` evaluations served from the memo table.
    pub exp_memo_hits: u64,
    /// `exp()` evaluations computed and inserted into the memo table.
    pub exp_memo_misses: u64,
    /// Injected sense-amplifier comparison flips.
    pub fault_sense_flips: u64,
    /// Stuck-at cells re-pinned to their rail after a kernel event.
    pub fault_stuck_pins: u64,
    /// Implicit glitch rows dropped from a multi-row activation.
    pub fault_decoder_drops: u64,
    /// Commands executed under an environment-excursion window.
    pub fault_env_commands: u64,
    /// Leakage passes skipped entirely by the lazy early-outs
    /// (no elapsed time, sub-µs gap, or never-charged row).
    pub leak_row_skips: u64,
    /// Batched `exp` evaluations (decay-factor vector builds).
    pub exp_batch_calls: u64,
    /// Total lanes evaluated across all batched `exp` calls.
    pub exp_batch_lanes: u64,
    /// Decay-factor vectors served from the per-(row, dt) cache.
    pub decay_vec_hits: u64,
    /// Materialize buffers adopted warm from a previous task or shard
    /// generation (fleet/serve cache sharing).
    pub cache_share_hits: u64,
    /// Cross-bank schedules built: batches of independent programs
    /// merged into one interleaved command stream.
    pub sched_merges: u64,
    /// Idle ticks reclaimed by merged schedules (sequential minus
    /// interleaved bus occupancy, summed over all merges).
    pub sched_overlapped_ticks: u64,
    /// Batches that fell back to sequential accounting (a shared bank
    /// or a guarded vendor profile).
    pub sched_fallbacks: u64,
}

impl ModelPerf {
    /// Adds another counter set into this one (module/fleet roll-up).
    pub fn accumulate(&mut self, other: &ModelPerf) {
        self.share_events += other.share_events;
        self.sense_events += other.sense_events;
        self.close_events += other.close_events;
        self.leak_events += other.leak_events;
        self.columns += other.columns;
        self.exp_calls += other.exp_calls;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.share_ns += other.share_ns;
        self.sense_ns += other.sense_ns;
        self.close_ns += other.close_ns;
        self.leak_ns += other.leak_ns;
        self.noise_draws += other.noise_draws;
        self.noise_fills += other.noise_fills;
        self.noise_ns += other.noise_ns;
        self.snapshot_hits += other.snapshot_hits;
        self.snapshot_misses += other.snapshot_misses;
        self.snapshot_bytes += other.snapshot_bytes;
        self.exp_memo_hits += other.exp_memo_hits;
        self.exp_memo_misses += other.exp_memo_misses;
        self.fault_sense_flips += other.fault_sense_flips;
        self.fault_stuck_pins += other.fault_stuck_pins;
        self.fault_decoder_drops += other.fault_decoder_drops;
        self.fault_env_commands += other.fault_env_commands;
        self.leak_row_skips += other.leak_row_skips;
        self.exp_batch_calls += other.exp_batch_calls;
        self.exp_batch_lanes += other.exp_batch_lanes;
        self.decay_vec_hits += other.decay_vec_hits;
        self.cache_share_hits += other.cache_share_hits;
        self.sched_merges += other.sched_merges;
        self.sched_overlapped_ticks += other.sched_overlapped_ticks;
        self.sched_fallbacks += other.sched_fallbacks;
    }

    /// Total injected-fault events observed (all classes).
    pub fn fault_events(&self) -> u64 {
        self.fault_sense_flips
            + self.fault_stuck_pins
            + self.fault_decoder_drops
            + self.fault_env_commands
    }

    /// Total kernel events fired.
    pub fn events(&self) -> u64 {
        self.share_events + self.sense_events + self.close_events + self.leak_events
    }

    /// Total wall nanoseconds spent inside the kernels.
    pub fn kernel_ns(&self) -> u64 {
        self.share_ns + self.sense_ns + self.close_ns + self.leak_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_every_field() {
        let a = ModelPerf {
            share_events: 1,
            sense_events: 2,
            close_events: 3,
            leak_events: 4,
            columns: 5,
            exp_calls: 6,
            cache_hits: 7,
            cache_misses: 8,
            share_ns: 9,
            sense_ns: 10,
            close_ns: 11,
            leak_ns: 12,
            noise_draws: 13,
            noise_fills: 14,
            noise_ns: 15,
            snapshot_hits: 16,
            snapshot_misses: 17,
            snapshot_bytes: 18,
            exp_memo_hits: 19,
            exp_memo_misses: 20,
            fault_sense_flips: 21,
            fault_stuck_pins: 22,
            fault_decoder_drops: 23,
            fault_env_commands: 24,
            leak_row_skips: 25,
            exp_batch_calls: 26,
            exp_batch_lanes: 27,
            decay_vec_hits: 28,
            cache_share_hits: 29,
            sched_merges: 30,
            sched_overlapped_ticks: 31,
            sched_fallbacks: 32,
        };
        let mut total = a;
        total.accumulate(&a);
        assert_eq!(total.share_events, 2);
        assert_eq!(total.leak_ns, 24);
        assert_eq!(total.noise_draws, 26);
        assert_eq!(total.noise_fills, 28);
        assert_eq!(total.noise_ns, 30);
        assert_eq!(total.snapshot_hits, 32);
        assert_eq!(total.snapshot_misses, 34);
        assert_eq!(total.snapshot_bytes, 36);
        assert_eq!(total.exp_memo_hits, 38);
        assert_eq!(total.exp_memo_misses, 40);
        assert_eq!(total.fault_sense_flips, 42);
        assert_eq!(total.fault_stuck_pins, 44);
        assert_eq!(total.fault_decoder_drops, 46);
        assert_eq!(total.fault_env_commands, 48);
        assert_eq!(total.leak_row_skips, 50);
        assert_eq!(total.exp_batch_calls, 52);
        assert_eq!(total.exp_batch_lanes, 54);
        assert_eq!(total.decay_vec_hits, 56);
        assert_eq!(total.cache_share_hits, 58);
        assert_eq!(total.sched_merges, 60);
        assert_eq!(total.sched_overlapped_ticks, 62);
        assert_eq!(total.sched_fallbacks, 64);
        assert_eq!(total.fault_events(), 2 * (21 + 22 + 23 + 24));
        assert_eq!(total.events(), 2 * (1 + 2 + 3 + 4));
        assert_eq!(total.kernel_ns(), 2 * (9 + 10 + 11 + 12));
    }

    #[test]
    fn default_is_zero() {
        let p = ModelPerf::default();
        assert_eq!(p.events(), 0);
        assert_eq!(p.kernel_ns(), 0);
        assert_eq!(p, ModelPerf::default());
    }
}
