//! One DRAM chip: banks of sub-arrays, the command-timing guard of
//! groups J/K/L, true-/anti-cell polarity handling, and refresh.
//!
//! The chip is the unit of process variation (one seed = one die). It
//! exposes a *physical* command interface (what the pins do) plus
//! logical/physical data conversion helpers: externally, data always
//! round-trips (write `b`, read `b`); internally, anti-cell columns store
//! the inverted voltage, which is what makes their leakage direction and
//! charge-sharing behavior differ (§II-C).

use crate::env::Environment;
use crate::error::{ModelError, Result};
use crate::faults::{FaultConfig, FaultPlan};
use crate::geometry::{Geometry, RowAddr};
use crate::materialize::MaterializeCache;
use crate::params::{DeviceParams, InternalTiming};
use crate::perf::ModelPerf;
use crate::silicon::Silicon;
use crate::snapshot::SubArrayState;
use crate::subarray::{Ctx, ProbeSample, Subarray};
use crate::units::Volts;
use crate::variation::NoiseEngine;
use crate::vendor::{GroupId, VendorProfile};

/// Per-bank bookkeeping.
#[derive(Debug, Clone)]
struct Bank {
    subarrays: Vec<Subarray>,
    /// Sub-array of the most recent ACTIVATE (where READ/WRITE go).
    active: Option<usize>,
    /// Timing-guard state: earliest cycle the next ACTIVATE may take
    /// effect.
    earliest_act: u64,
    /// Timing-guard state: earliest cycle the next PRECHARGE may take
    /// effect.
    earliest_pre: u64,
}

/// Full identity and configuration needed to (re)build a chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Vendor group the chip belongs to.
    pub group: GroupId,
    /// Die seed: all process variation derives from it.
    pub seed: u64,
    /// Chip geometry.
    pub geometry: Geometry,
    /// Analog parameters (usually [`DeviceParams::default`]).
    pub params: DeviceParams,
}

impl ChipConfig {
    /// Convenience constructor with default parameters.
    pub fn new(group: GroupId, seed: u64, geometry: Geometry) -> Self {
        ChipConfig {
            group,
            seed,
            geometry,
            params: DeviceParams::default(),
        }
    }
}

/// A simulated DRAM die.
#[derive(Debug, Clone)]
pub struct Chip {
    config: ChipConfig,
    silicon: Silicon,
    profile: VendorProfile,
    timing: InternalTiming,
    env: Environment,
    noise: NoiseEngine,
    perf: ModelPerf,
    cache: MaterializeCache,
    banks: Vec<Bank>,
}

impl Chip {
    /// Builds a chip from its configuration.
    pub fn new(config: ChipConfig) -> Self {
        let profile = config.group.profile();
        let silicon = Silicon::new(config.seed, config.params.clone(), profile.clone());
        let noise = NoiseEngine::new(splitseed(config.seed, 0x6E01));
        let g = config.geometry;
        let banks = (0..g.banks)
            .map(|b| Bank {
                subarrays: (0..g.subarrays_per_bank)
                    .map(|s| Subarray::new(b, s, g.rows_per_subarray, g.columns))
                    .collect(),
                active: None,
                earliest_act: 0,
                earliest_pre: 0,
            })
            .collect();
        let cache = MaterializeCache::new(config.seed);
        Chip {
            config,
            silicon,
            profile,
            timing: InternalTiming::default(),
            env: Environment::nominal(),
            noise,
            perf: ModelPerf::default(),
            cache,
            banks,
        }
    }

    /// Kernel performance counters accumulated since construction.
    pub fn model_perf(&self) -> &ModelPerf {
        &self.perf
    }

    /// The chip's configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Detaches the materialize cache for donation to another chip,
    /// leaving a fresh one behind. When a fault plan is armed the
    /// seed-keyed buffers are dropped first — they fold the plan's
    /// stuck/weak-cell statics, which the seed alone does not identify —
    /// so a donation only ever carries pure-seed buffers plus the
    /// always-valid `exp()` memo.
    pub fn take_cache(&mut self) -> MaterializeCache {
        let mut cache = std::mem::replace(&mut self.cache, MaterializeCache::new(self.config.seed));
        if self.silicon.faults().is_some() {
            cache.clear_buffers();
        }
        cache.stamp_donor(self.config.clone());
        cache
    }

    /// A donation-stamped copy of the materialize cache, leaving this
    /// chip's own cache in place — how a *live* die seeds a sibling
    /// (serve first-touch sharing) without giving its cache up. Same
    /// fault rule as [`Chip::take_cache`]: an armed plan's buffers fold
    /// statics the seed alone does not identify, so they are dropped.
    pub fn clone_cache(&self) -> MaterializeCache {
        let mut cache = self.cache.clone();
        if self.silicon.faults().is_some() {
            cache.clear_buffers();
        }
        cache.stamp_donor(self.config.clone());
        cache
    }

    /// Credits cross-bank scheduler activity to this chip's counters
    /// (the controller records onto chip 0; [`crate::module::Module`]
    /// sums chips, so roll-ups see module totals).
    pub fn record_sched(&mut self, merges: u64, overlapped_ticks: u64, fallbacks: u64) {
        self.perf.sched_merges += merges;
        self.perf.sched_overlapped_ticks += overlapped_ticks;
        self.perf.sched_fallbacks += fallbacks;
    }

    /// Installs a cache donated by [`Chip::take_cache`] on another chip.
    /// Materialized buffers survive only when the donor simulated this
    /// very die — identical full configuration (group, seed, geometry,
    /// analog parameters), since the buffers are pure in all of it — and
    /// no fault plan is armed here; the number of buffers retained is
    /// credited to [`ModelPerf::cache_share_hits`]. The donated `exp()`
    /// memo is pure math and is kept either way, which is what makes
    /// cross-die donation (serve die remaps) still worthwhile.
    pub fn install_cache(&mut self, mut cache: MaterializeCache) {
        if self.silicon.faults().is_some() || !cache.donor_is(&self.config) {
            cache.clear_buffers();
        }
        self.perf.cache_share_hits += cache.adopt(self.config.seed);
        self.cache = cache;
    }

    /// The chip's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.config.geometry
    }

    /// The chip's vendor profile.
    pub fn profile(&self) -> &VendorProfile {
        &self.profile
    }

    /// Current operating environment.
    pub fn environment(&self) -> &Environment {
        &self.env
    }

    /// Changes the operating environment (temperature / supply voltage).
    pub fn set_environment(&mut self, env: Environment) {
        self.env = env;
    }

    /// Installs a fault plan derived from this die's seed. A disabled
    /// configuration removes any installed plan. Cell faults change the
    /// materialized row statics (stuck lists, weak-cell capacitance and
    /// leakage), so the cache is rebuilt from scratch.
    pub fn set_fault_config(&mut self, config: &FaultConfig) {
        self.silicon
            .set_faults(Some(FaultPlan::new(self.config.seed, *config)));
        self.cache = MaterializeCache::new(self.config.seed);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.silicon.faults()
    }

    /// The environment in effect at cycle `t`: the base environment,
    /// shifted while an injected excursion window covers `t`. One
    /// command's whole internal event cascade runs under the environment
    /// at command-issue time.
    fn env_at(&self, t: u64) -> Environment {
        match self.silicon.faults() {
            Some(p) => p.environment_at(self.env, t),
            None => self.env,
        }
    }

    /// [`Chip::env_at`] plus the observability counter for commands that
    /// executed under an excursion.
    fn command_env(&mut self, t: u64) -> Environment {
        let env = self.env_at(t);
        if env != self.env {
            self.perf.fault_env_commands += 1;
        }
        env
    }

    /// Whether no injected excursion window overlaps the cycle range
    /// `[a, b)` — the snapshot fast path's precondition for both capture
    /// and restore.
    pub fn fault_windows_clear(&self, a: u64, b: u64) -> bool {
        self.silicon
            .faults()
            .is_none_or(|p| !p.excursion_overlaps(a, b))
    }

    /// Internal device latencies.
    pub fn internal_timing(&self) -> &InternalTiming {
        &self.timing
    }

    fn check_bank(&self, bank: usize) -> Result<()> {
        if bank >= self.banks.len() {
            return Err(ModelError::BankOutOfRange {
                bank,
                banks: self.banks.len(),
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Command interface (absolute cycle timestamps)
    // ------------------------------------------------------------------

    /// ACTIVATE: open a row.
    ///
    /// # Errors
    ///
    /// Returns an error when the address is out of range.
    pub fn activate(&mut self, addr: RowAddr, t: u64) -> Result<()> {
        self.check_bank(addr.bank)?;
        let g = self.config.geometry;
        if addr.row >= g.rows_per_bank() {
            return Err(ModelError::RowOutOfRange {
                row: addr.row,
                rows: g.rows_per_bank(),
            });
        }
        let guarded = self.profile.timing_guard;
        let t_eff = if guarded {
            t.max(self.banks[addr.bank].earliest_act)
        } else {
            t
        };
        let (sub, local) = g.split_row(addr.row);
        let env = self.command_env(t_eff);
        let bank = &mut self.banks[addr.bank];
        let mut ctx = Ctx {
            silicon: &self.silicon,
            env: &env,
            timing: &self.timing,
            noise: &self.noise,
            perf: &mut self.perf,
            cache: &mut self.cache,
        };
        bank.subarrays[sub].activate(&mut ctx, local, t_eff)?;
        bank.active = Some(sub);
        if guarded {
            bank.earliest_pre = t_eff + self.timing.restore_done;
        }
        Ok(())
    }

    /// PRECHARGE: close all open rows in a bank.
    ///
    /// # Errors
    ///
    /// Returns an error when `bank` is out of range.
    pub fn precharge(&mut self, bank: usize, t: u64) -> Result<()> {
        self.check_bank(bank)?;
        let guarded = self.profile.timing_guard;
        let t_eff = if guarded {
            t.max(self.banks[bank].earliest_pre)
        } else {
            t
        };
        let env = self.command_env(t_eff);
        let b = &mut self.banks[bank];
        for sub in &mut b.subarrays {
            if sub.is_idle() {
                continue;
            }
            let mut ctx = Ctx {
                silicon: &self.silicon,
                env: &env,
                timing: &self.timing,
                noise: &self.noise,
                perf: &mut self.perf,
                cache: &mut self.cache,
            };
            sub.precharge(&mut ctx, t_eff);
        }
        if guarded {
            b.earliest_act = t_eff + self.timing.precharge_done;
        }
        Ok(())
    }

    /// READ: the latched row buffer of the bank's active sub-array, as
    /// *logical* bits (anti-cell columns un-inverted).
    ///
    /// # Errors
    ///
    /// Fails if the bank has no sensed open row.
    pub fn read(&mut self, bank: usize, t: u64) -> Result<Vec<bool>> {
        let mut out = Vec::new();
        self.read_into(bank, t, &mut out)?;
        Ok(out)
    }

    /// [`Chip::read`] into a caller-provided buffer (cleared and
    /// refilled in place), the allocation-free shape arena-recycled
    /// read loops use.
    ///
    /// # Errors
    ///
    /// Fails if the bank has no sensed open row.
    pub fn read_into(&mut self, bank: usize, t: u64, out: &mut Vec<bool>) -> Result<()> {
        self.check_bank(bank)?;
        let env = self.command_env(t);
        let b = &mut self.banks[bank];
        let sub_idx = b.active.ok_or(ModelError::BankClosed { bank })?;
        let sub = &mut b.subarrays[sub_idx];
        let mut ctx = Ctx {
            silicon: &self.silicon,
            env: &env,
            timing: &self.timing,
            noise: &self.noise,
            perf: &mut self.perf,
            cache: &mut self.cache,
        };
        sub.read_into(&mut ctx, t, out)?;
        ctx.cache.ensure_cols(
            ctx.silicon,
            &mut *ctx.perf,
            bank,
            sub_idx,
            self.config.geometry.columns,
        );
        let anti = &ctx.cache.cols(bank, sub_idx).anti;
        for (col, bit) in out.iter_mut().enumerate() {
            if anti[col] {
                *bit = !*bit;
            }
        }
        Ok(())
    }

    /// WRITE: drive *logical* bits through the sense amplifiers into the
    /// open row(s) of the bank's active sub-array, starting at
    /// `start_col`.
    ///
    /// # Errors
    ///
    /// Fails if the bank has no sensed open row or the range is invalid.
    pub fn write(&mut self, bank: usize, start_col: usize, bits: &[bool], t: u64) -> Result<()> {
        self.check_bank(bank)?;
        let env = self.command_env(t);
        let b = &mut self.banks[bank];
        let sub_idx = b.active.ok_or(ModelError::BankClosed { bank })?;
        let sub = &mut b.subarrays[sub_idx];
        let mut ctx = Ctx {
            silicon: &self.silicon,
            env: &env,
            timing: &self.timing,
            noise: &self.noise,
            perf: &mut self.perf,
            cache: &mut self.cache,
        };
        ctx.cache.ensure_cols(
            ctx.silicon,
            &mut *ctx.perf,
            bank,
            sub_idx,
            self.config.geometry.columns,
        );
        let anti = &ctx.cache.cols(bank, sub_idx).anti;
        let physical: Vec<bool> = bits
            .iter()
            .enumerate()
            .map(|(i, &bit)| bit ^ anti[start_col + i])
            .collect();
        sub.write(&mut ctx, t, start_col, &physical)
    }

    /// REFRESH: internally activates and restores every materialized row
    /// of the bank, destroying any fractional values stored there.
    ///
    /// # Errors
    ///
    /// Returns an error when `bank` is out of range.
    pub fn refresh(&mut self, bank: usize, t: u64) -> Result<()> {
        self.check_bank(bank)?;
        let rows = self.config.geometry.rows_per_subarray;
        let env = self.command_env(t);
        let b = &mut self.banks[bank];
        for sub in &mut b.subarrays {
            for row in 0..rows {
                let mut ctx = Ctx {
                    silicon: &self.silicon,
                    env: &env,
                    timing: &self.timing,
                    noise: &self.noise,
                    perf: &mut self.perf,
                    cache: &mut self.cache,
                };
                sub.refresh_row(&mut ctx, row, t);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Write-prefix snapshot support
    // ------------------------------------------------------------------

    /// Whether a full-row write to sub-array `sub` of `bank` may use the
    /// snapshot fast path: no probes anywhere in the bank, and every
    /// *sibling* sub-array at most waiting on a word-line close.
    ///
    /// A live write program only ever advances the *target* sub-array
    /// (its ACTIVATE fires that sub-array's pending events, in scheduled
    /// order, before opening the row), so [`Chip::drain_bank`] replays
    /// exactly those firings. Temporal noise is a pure function of each
    /// event's fire time and coordinates, so replayed events see the
    /// same noise no matter how many draws happened in between — the
    /// only remaining precondition is that the siblings have nothing
    /// pending with an analog outcome (word-line closes are digital).
    pub fn write_fastpath_ready(&self, bank: usize, sub: usize) -> bool {
        self.banks[bank]
            .subarrays
            .iter()
            .enumerate()
            .all(|(i, s)| !s.has_probes() && (i == sub || s.close_only()))
    }

    /// Whether every sub-array of `bank` is fully idle.
    pub fn bank_idle(&self, bank: usize) -> bool {
        self.banks[bank].subarrays.iter().all(Subarray::is_idle)
    }

    /// Fires every pending event with fire time ≤ `t` in every sub-array
    /// of `bank`.
    pub fn drain_bank(&mut self, bank: usize, t: u64) {
        let env = self.command_env(t);
        for sub in &mut self.banks[bank].subarrays {
            let mut ctx = Ctx {
                silicon: &self.silicon,
                env: &env,
                timing: &self.timing,
                noise: &self.noise,
                perf: &mut self.perf,
                cache: &mut self.cache,
            };
            sub.advance(&mut ctx, t);
        }
    }

    /// Captures the dynamic state of `(bank, sub)` for `rows`, relative
    /// to `anchor`, counting it as a snapshot miss (the live program ran
    /// and was captured for later restores).
    pub fn capture_subarray(
        &mut self,
        bank: usize,
        sub: usize,
        rows: &[usize],
        anchor: u64,
    ) -> SubArrayState {
        let state = self.banks[bank].subarrays[sub].snapshot(rows, anchor);
        self.perf.snapshot_misses += 1;
        self.perf.snapshot_bytes += state.bytes();
        state
    }

    /// Reimposes a capture at `anchor` and re-marks its sub-array as the
    /// bank's active one (what the captured program's ACTIVATE did).
    pub fn restore_subarray(&mut self, state: &SubArrayState, anchor: u64) {
        let bank = state.bank();
        self.banks[bank].subarrays[state.index()].restore(state, anchor);
        self.banks[bank].active = Some(state.index());
        self.perf.snapshot_hits += 1;
    }

    /// Overwrites a restored write prefix with a (possibly different)
    /// full-row *logical* pattern, exactly as [`Chip::write`] would have:
    /// anti-cell columns inverted, rails driven into the row buffer,
    /// bit-lines, and every open row at time `t_write`.
    pub fn rewrite_row(&mut self, bank: usize, sub: usize, bits: &[bool], t_write: u64) {
        let cols = self.config.geometry.columns;
        self.cache
            .ensure_cols(&self.silicon, &mut self.perf, bank, sub, cols);
        let anti = &self.cache.cols(bank, sub).anti;
        let physical: Vec<bool> = bits
            .iter()
            .enumerate()
            .map(|(i, &bit)| bit ^ anti[i])
            .collect();
        let vdd = self.env.vdd.value();
        self.banks[bank].subarrays[sub].rewrite_rails(&physical, vdd, t_write);
        // The live write path pins stuck cells after driving the rails;
        // the restore path must do the same to stay bit-exact. (The fast
        // path never engages inside an excursion window, so the base
        // environment is the one in effect.)
        if self.silicon.cell_faults_enabled() {
            let mut ctx = Ctx {
                silicon: &self.silicon,
                env: &self.env,
                timing: &self.timing,
                noise: &self.noise,
                perf: &mut self.perf,
                cache: &mut self.cache,
            };
            self.banks[bank].subarrays[sub].pin_stuck_open(&mut ctx);
        }
    }

    // ------------------------------------------------------------------
    // Inspection (test bench instruments, not DRAM commands)
    // ------------------------------------------------------------------

    /// Rows currently open in a bank (bank-level numbering), role order.
    pub fn open_rows(&self, bank: usize) -> Vec<usize> {
        let g = &self.config.geometry;
        let Some(b) = self.banks.get(bank) else {
            return Vec::new();
        };
        let Some(sub_idx) = b.active else {
            return Vec::new();
        };
        b.subarrays[sub_idx]
            .open_rows()
            .iter()
            .map(|&local| g.join_row(sub_idx, local))
            .collect()
    }

    /// Direct (oscilloscope-style) view of one cell's voltage at cycle
    /// `t`, leakage applied. This is a simulation instrument; real
    /// hardware cannot do this, which is why the paper needs the
    /// retention / MAJ3 verification methods this crate also supports.
    pub fn probe_cell_voltage(&mut self, addr: RowAddr, col: usize, t: u64) -> Volts {
        let g = self.config.geometry;
        let (sub, local) = g.split_row(addr.row);
        let env = self.env_at(t);
        let mut ctx = Ctx {
            silicon: &self.silicon,
            env: &env,
            timing: &self.timing,
            noise: &self.noise,
            perf: &mut self.perf,
            cache: &mut self.cache,
        };
        self.banks[addr.bank].subarrays[sub].cell_voltage(&mut ctx, local, col, t)
    }

    /// Attaches a voltage probe that records the analog trajectory of a
    /// cell and its bit-line across subsequent commands (Fig. 3 / Fig. 4).
    pub fn attach_probe(&mut self, addr: RowAddr, col: usize) {
        let g = self.config.geometry;
        let (sub, local) = g.split_row(addr.row);
        self.banks[addr.bank].subarrays[sub].attach_probe(local, col);
    }

    /// Collects the samples from all probes in a sub-array.
    pub fn take_probe_samples(&mut self, bank: usize, subarray: usize) -> Vec<Vec<ProbeSample>> {
        self.banks[bank].subarrays[subarray].take_probe_samples()
    }

    /// Ground-truth polarity of a column (true = anti-cells). The paper
    /// reverse-engineers this with retention tests; the simulation exposes
    /// it for validation.
    pub fn is_anti_column(&mut self, bank: usize, subarray: usize, col: usize) -> bool {
        let mut ctx = Ctx {
            silicon: &self.silicon,
            env: &self.env,
            timing: &self.timing,
            noise: &self.noise,
            perf: &mut self.perf,
            cache: &mut self.cache,
        };
        self.banks[bank].subarrays[subarray].is_anti_column(&mut ctx, col)
    }

    /// The silicon parameter oracle (for experiment analysis).
    pub fn silicon(&self) -> &Silicon {
        &self.silicon
    }
}

fn splitseed(a: u64, b: u64) -> u64 {
    crate::variation::hash_coords(&[a, b])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip(group: GroupId) -> Chip {
        Chip::new(ChipConfig::new(group, 7, Geometry::tiny()))
    }

    /// Writes a row with legal timing starting at cycle `t`; returns the
    /// cycle after the operation.
    fn write_row(c: &mut Chip, addr: RowAddr, bits: &[bool], t: u64) -> u64 {
        c.activate(addr, t).unwrap();
        c.write(addr.bank, 0, bits, t + 10).unwrap();
        c.precharge(addr.bank, t + 20).unwrap();
        t + 30
    }

    fn read_row(c: &mut Chip, addr: RowAddr, t: u64) -> (Vec<bool>, u64) {
        c.activate(addr, t).unwrap();
        let bits = c.read(addr.bank, t + 10).unwrap();
        c.precharge(addr.bank, t + 20).unwrap();
        (bits, t + 30)
    }

    #[test]
    fn logical_roundtrip_through_anti_cells() {
        let mut c = chip(GroupId::B);
        let pattern: Vec<bool> = (0..64).map(|i| (i * 7) % 3 == 0).collect();
        let addr = RowAddr::new(1, 5);
        let t = write_row(&mut c, addr, &pattern, 100);
        let (bits, _) = read_row(&mut c, addr, t);
        assert_eq!(bits, pattern);
        // And the sub-array really does contain anti columns.
        let anti = (0..64).filter(|&col| c.is_anti_column(1, 0, col)).count();
        assert!(anti > 10 && anti < 54, "anti count {anti}");
    }

    #[test]
    fn frac_sequence_works_on_group_b_but_not_group_j() {
        for (group, expect_effect) in [(GroupId::B, true), (GroupId::J, false)] {
            let mut c = chip(group);
            let addr = RowAddr::new(0, 3);
            let ones = vec![true; 64];
            let mut t = write_row(&mut c, addr, &ones, 100);
            let v_before = c.probe_cell_voltage(addr, 0, t);
            // Frac: ACT - PRE back-to-back, then wait out the precharge.
            for _ in 0..3 {
                c.activate(addr, t).unwrap();
                c.precharge(addr.bank, t + 1).unwrap();
                t += 7;
            }
            // Force event resolution by probing later.
            let v_after = c.probe_cell_voltage(addr, 0, t + 100);
            if expect_effect {
                assert!(
                    v_after.value() < v_before.value() - 0.1,
                    "{group}: frac had no effect ({v_after} vs {v_before})"
                );
            } else {
                assert!(
                    (v_after.value() - v_before.value()).abs() < 0.01,
                    "{group}: timing guard failed ({v_after} vs {v_before})"
                );
            }
        }
    }

    #[test]
    fn bank_out_of_range() {
        let mut c = chip(GroupId::B);
        assert!(matches!(
            c.activate(RowAddr::new(99, 0), 0),
            Err(ModelError::BankOutOfRange { .. })
        ));
        assert!(matches!(
            c.precharge(99, 0),
            Err(ModelError::BankOutOfRange { .. })
        ));
    }

    #[test]
    fn row_out_of_range() {
        let mut c = chip(GroupId::B);
        let rows = c.geometry().rows_per_bank();
        assert!(matches!(
            c.activate(RowAddr::new(0, rows), 0),
            Err(ModelError::RowOutOfRange { .. })
        ));
    }

    #[test]
    fn read_closed_bank_fails() {
        let mut c = chip(GroupId::B);
        assert!(matches!(c.read(0, 10), Err(ModelError::BankClosed { .. })));
    }

    #[test]
    fn open_rows_reports_multi_row_activation() {
        let mut c = chip(GroupId::B);
        let t = 100;
        c.activate(RowAddr::new(0, 1), t).unwrap();
        c.precharge(0, t + 1).unwrap();
        c.activate(RowAddr::new(0, 2), t + 2).unwrap();
        // Force pending events.
        let _ = c.probe_cell_voltage(RowAddr::new(0, 0), 0, t + 3);
        let mut open = c.open_rows(0);
        open.sort_unstable();
        assert_eq!(open, vec![0, 1, 2]);
    }

    #[test]
    fn refresh_restores_leaky_cells() {
        let mut c = chip(GroupId::B);
        let addr = RowAddr::new(0, 2);
        let t = write_row(&mut c, addr, &[true; 64], 100);
        // Refresh well within retention: data intact afterwards.
        c.refresh(0, t).unwrap();
        let (bits, _) = read_row(&mut c, addr, t + 100);
        assert!(bits.iter().all(|&b| b));
    }

    #[test]
    fn environment_can_change_between_operations() {
        let mut c = chip(GroupId::B);
        assert_eq!(c.environment().vdd, Volts(1.5));
        c.set_environment(Environment::nominal().with_vdd(Volts(1.4)));
        assert_eq!(c.environment().vdd, Volts(1.4));
        // A write/read cycle still round-trips at 1.4 V.
        let addr = RowAddr::new(1, 1);
        let pattern: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let t = write_row(&mut c, addr, &pattern, 100);
        let (bits, _) = read_row(&mut c, addr, t);
        assert_eq!(bits, pattern);
    }

    #[test]
    fn identical_seeds_build_identical_chips() {
        let mut a = chip(GroupId::C);
        let mut b = chip(GroupId::C);
        assert_eq!(a.is_anti_column(0, 0, 5), b.is_anti_column(0, 0, 5));
        assert_eq!(
            a.silicon().sense_offset(0, 0, 9),
            b.silicon().sense_offset(0, 0, 9)
        );
    }
}
