//! Deterministic process-variation sampling and temporal noise.
//!
//! Every *static* physical parameter of the simulated silicon (a cell's
//! capacitance, leakage time constant, a column's sense-amplifier offset,
//! a row's charge-sharing weight, ...) is a pure function of its
//! coordinates: it is obtained by hashing
//! `(chip seed, parameter id, coordinates...)` through SplitMix64 and
//! shaping the resulting uniform bits into the desired distribution.
//!
//! This gives the model three properties the paper's experiments rely on:
//!
//! 1. **Reproducibility** — re-creating a chip from the same seed yields an
//!    identical piece of "silicon"; a PUF response is stable across reads.
//! 2. **Uniqueness** — chips built from different seeds differ in every
//!    parameter, exactly like manufacturing variation (Fig. 11 inter-HD).
//! 3. **Zero storage** — no per-cell parameter tables; a 65536-column row
//!    costs nothing until touched.
//!
//! *Temporal* noise (thermal noise on a bit-line, sense-amp sampling
//! noise) must differ between repeated evaluations of the same cell, but
//! it is **not** drawn from a stateful stream: every draw of the
//! [`NoiseEngine`] is a pure function of
//! `(die seed, purpose, event fire time, coordinates, column)`. The
//! absolute cycle timestamp of the internal event is the draw's
//! "counter" — the clock only moves forward, so repeated evaluations of
//! the same cell see fresh noise, while replaying the same command
//! sequence from the same clock reproduces it bit-exactly. Because draw
//! values never depend on draw *order*, snapshot restore is exact with
//! zero stream bookkeeping and chips can be simulated in parallel.

/// SplitMix64 finalizer; a strong 64-bit mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a slice of coordinate words into a single well-mixed 64-bit value.
pub fn hash_coords(words: &[u64]) -> u64 {
    let mut acc: u64 = 0x51C6_4372_11E5_BEEF;
    for &w in words {
        acc = splitmix64(acc ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    splitmix64(acc)
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn to_unit_f64(bits: u64) -> f64 {
    // Use the top 53 bits for a uniformly distributed mantissa.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Identifiers for the distinct static parameters sampled per coordinate.
///
/// Using an explicit id (rather than ad-hoc salt constants scattered around
/// the codebase) guarantees two different parameters of the same cell never
/// collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum ParamId {
    /// Cell capacitance variation.
    CellCapacitance = 1,
    /// Cell leakage time constant.
    LeakageTau = 2,
    /// Whether the cell exhibits variable retention time (VRT).
    VrtFlag = 3,
    /// Secondary leakage time constant used by VRT cells.
    VrtAltTau = 4,
    /// Sense-amplifier input-referred offset of a column.
    SenseOffset = 5,
    /// Temperature coefficient of a column's sense offset.
    SenseTempCoeff = 6,
    /// Charge-sharing weight of a row slot during multi-row activation.
    RowShareWeight = 7,
    /// Whether a given (R1, R2) address pair triggers the decoder glitch.
    GlitchPairGate = 8,
    /// Cell polarity (true-cell vs anti-cell) region selector.
    Polarity = 9,
    /// Phase selector for VRT cells (which tau is active in an epoch).
    VrtPhase = 10,
    /// Residual per-cell asymmetry of the Half-m fractional value.
    HalfmAsymmetry = 11,
    /// Per-cell charge-injection offset during sharing.
    CellInject = 12,
    /// Whether a cell is stuck-at (fault injection).
    FaultStuckCell = 13,
    /// The rail a stuck-at cell is pinned to.
    FaultStuckValue = 14,
    /// Whether a cell is weak (reduced capacitance, fast leakage).
    FaultWeakCell = 15,
    /// Per-column multiplier on the transient sense-amp flip rate.
    FaultSenseFlip = 16,
    /// Whether a decoder-glitch implicit row drops out of activation.
    FaultDecoderDrop = 17,
    /// Placement and polarity of mid-run environment excursions.
    FaultExcursion = 18,
}

/// Deterministic sampler for static (manufacturing-time) parameters.
///
/// A `VariationSampler` is cheap to copy; it only holds the chip seed.
///
/// # Examples
///
/// ```
/// use fracdram_model::variation::{ParamId, VariationSampler};
///
/// let a = VariationSampler::new(1);
/// let b = VariationSampler::new(2);
/// // Same chip, same coordinates: identical silicon.
/// assert_eq!(
///     a.normal(ParamId::SenseOffset, &[0, 3, 17], 0.0, 1.0),
///     a.normal(ParamId::SenseOffset, &[0, 3, 17], 0.0, 1.0),
/// );
/// // Different chips differ.
/// assert_ne!(
///     a.normal(ParamId::SenseOffset, &[0, 3, 17], 0.0, 1.0),
///     b.normal(ParamId::SenseOffset, &[0, 3, 17], 0.0, 1.0),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariationSampler {
    seed: u64,
}

impl VariationSampler {
    /// Creates a sampler for the chip identified by `seed`.
    pub fn new(seed: u64) -> Self {
        VariationSampler { seed }
    }

    /// The chip seed this sampler was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Raw 64 mixed bits for a parameter at some coordinates.
    pub fn bits(&self, param: ParamId, coords: &[u64]) -> u64 {
        let mut words = Vec::with_capacity(coords.len() + 2);
        words.push(self.seed);
        words.push(param as u64);
        words.extend_from_slice(coords);
        hash_coords(&words)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&self, param: ParamId, coords: &[u64]) -> f64 {
        to_unit_f64(self.bits(param, coords))
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn bernoulli(&self, param: ParamId, coords: &[u64], p: f64) -> bool {
        self.uniform(param, coords) < p
    }

    /// Standard normal sample (Box–Muller on two derived uniforms).
    pub fn standard_normal(&self, param: ParamId, coords: &[u64]) -> f64 {
        let bits = self.bits(param, coords);
        let u1 = to_unit_f64(bits).max(1e-300);
        let u2 = to_unit_f64(splitmix64(bits ^ 0xA5A5_A5A5_5A5A_5A5A));
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with mean `mu` and standard deviation `sigma`.
    pub fn normal(&self, param: ParamId, coords: &[u64], mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.standard_normal(param, coords)
    }

    /// Log-normal sample parameterized by its median and the standard
    /// deviation of the underlying normal (`sigma_ln`).
    pub fn lognormal(&self, param: ParamId, coords: &[u64], median: f64, sigma_ln: f64) -> f64 {
        median * (sigma_ln * self.standard_normal(param, coords)).exp()
    }
}

/// The distinct temporal-noise draw purposes.
///
/// Part of every noise key, so two different draws made for the same
/// event (say the sense normal and the fault-flip uniform of the same
/// column) can never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum NoisePurpose {
    /// Bit-line equalization noise during charge sharing.
    ShareEq = 1,
    /// Per-slot decoder-timing jitter on multi-row share weights.
    ShareWeight = 2,
    /// Sense-amplifier sampling noise at sense enable.
    Sense = 3,
    /// Transient sense-amp fault-flip uniform at sense enable.
    SenseFlip = 4,
    /// Sense-amplifier sampling noise during an internal refresh.
    Refresh = 5,
    /// Transient sense-amp fault-flip uniform during a refresh.
    RefreshFlip = 6,
}

/// Stateless counter-keyed temporal-noise source.
///
/// Each draw is a pure function of
/// `(die seed, purpose, event fire time, coordinates, lane)` hashed
/// through SplitMix64 and shaped by the ziggurat normal sampler — no
/// sequential state, no draw-order dependence. The event's absolute
/// cycle timestamp acts as the counter: the simulated clock is strictly
/// monotone across commands, so re-evaluating the same cell later sees
/// fresh noise, while replaying identical commands from an identical
/// clock reproduces identical noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseEngine {
    seed: u64,
}

impl NoiseEngine {
    /// Creates a noise source; `seed` is mixed so that low-entropy seeds
    /// (0, 1, 2...) still produce well-distributed streams.
    pub fn new(seed: u64) -> Self {
        NoiseEngine {
            seed: splitmix64(seed ^ 0xDEAD_BEEF_CAFE_F00D),
        }
    }

    /// Anchors a per-event noise stream. `coords` identify the physical
    /// location (bank, sub-array, and row where several same-purpose
    /// events can share a fire time, as refresh does).
    ///
    /// The key folding replicates [`hash_coords`] over
    /// `[seed, purpose, t, coords...]` without building a slice.
    #[inline]
    pub fn event(&self, purpose: NoisePurpose, t: u64, coords: &[u64]) -> NoiseEvent {
        let mut acc: u64 = 0x51C6_4372_11E5_BEEF;
        for &w in [self.seed, purpose as u64, t].iter().chain(coords) {
            acc = splitmix64(acc ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        NoiseEvent {
            base: splitmix64(acc),
        }
    }
}

/// One internal event's anchored noise stream: a cheap `Copy` key from
/// which any lane (usually a column) derives its draw independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseEvent {
    base: u64,
}

impl NoiseEvent {
    /// First keyed word of `lane`'s stream.
    #[inline]
    fn word0(&self, lane: u64) -> u64 {
        fracdram_stats::ziggurat::keyed_word0(self.base, lane)
    }

    /// Standard normal draw for `lane` (ziggurat; extra words for the
    /// rare wedge/tail path are derived from the first, counter-style).
    #[inline]
    pub fn standard_normal(&self, lane: u64) -> f64 {
        fracdram_stats::ziggurat::keyed_normal(self.base, lane)
    }

    /// Normal draw for `lane` with mean `mu` and standard deviation
    /// `sigma`. A `sigma` of zero short-circuits to `mu`; noise-free
    /// configurations remain fully deterministic.
    #[inline]
    pub fn normal(&self, lane: u64, mu: f64, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return mu;
        }
        mu + sigma * self.standard_normal(lane)
    }

    /// Uniform draw in `[0, 1)` for `lane`.
    #[inline]
    pub fn uniform(&self, lane: u64) -> f64 {
        to_unit_f64(self.word0(lane))
    }

    /// Batch pass: fills `out[lane]` with `sigma`-scaled zero-mean
    /// normals for every lane, returning the number of draws made (zero
    /// when `sigma == 0`, which fills zeros).
    ///
    /// Delegates to the chunked batch kernel in `fracdram-stats`, handing
    /// it the same word derivation [`NoiseEvent::standard_normal`] uses —
    /// the filled values are bit-identical to the per-lane form, just
    /// evaluated in slice passes the optimizer can pipeline.
    pub fn fill_normal(&self, sigma: f64, out: &mut [f64]) -> u64 {
        if sigma == 0.0 {
            out.fill(0.0);
            return 0;
        }
        fracdram_stats::ziggurat::ziggurat_normal_fill_keyed(out, sigma, self.base);
        out.len() as u64
    }

    /// Batch pass: fills `out[lane]` with every lane's uniform `[0, 1)`
    /// draw, returning the number of draws made — bit-identical to
    /// calling [`NoiseEvent::uniform`] per lane. This is the shape of
    /// per-column fault checks (one uniform per column per event).
    pub fn fill_uniform(&self, out: &mut [f64]) -> u64 {
        fracdram_stats::ziggurat::keyed_unit_fill(out, self.base);
        out.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_mixes_neighboring_inputs() {
        // Avalanche sanity check: consecutive inputs produce outputs that
        // differ in roughly half of their 64 bits.
        for i in 0..64u64 {
            let d = (splitmix64(i) ^ splitmix64(i + 1)).count_ones();
            assert!((16..=48).contains(&d), "poor mixing at {i}: {d} bits");
        }
    }

    #[test]
    fn hash_coords_varies_with_every_word() {
        let base = hash_coords(&[1, 2, 3]);
        assert_ne!(base, hash_coords(&[1, 2, 4]));
        assert_ne!(base, hash_coords(&[1, 3, 3]));
        assert_ne!(base, hash_coords(&[2, 2, 3]));
        assert_ne!(base, hash_coords(&[1, 2]));
        assert_ne!(base, hash_coords(&[1, 2, 3, 0]));
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let s = VariationSampler::new(42);
        let v1 = s.lognormal(ParamId::LeakageTau, &[0, 1, 2, 3], 10.0, 1.5);
        let v2 = s.lognormal(ParamId::LeakageTau, &[0, 1, 2, 3], 10.0, 1.5);
        assert_eq!(v1, v2);
        assert!(v1 > 0.0);
    }

    #[test]
    fn params_do_not_collide() {
        let s = VariationSampler::new(7);
        let a = s.uniform(ParamId::CellCapacitance, &[5, 5]);
        let b = s.uniform(ParamId::LeakageTau, &[5, 5]);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let s = VariationSampler::new(99);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|i| s.uniform(ParamId::SenseOffset, &[i]))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let s = VariationSampler::new(1234);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|i| s.standard_normal(ParamId::SenseOffset, &[i]))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn lognormal_median_is_respected() {
        let s = VariationSampler::new(5);
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n)
            .map(|i| s.lognormal(ParamId::LeakageTau, &[i], 20.0, 1.8))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n as usize / 2];
        assert!(
            (median / 20.0).ln().abs() < 0.1,
            "median = {median}, expected ~20"
        );
    }

    #[test]
    fn bernoulli_probability() {
        let s = VariationSampler::new(77);
        let n = 50_000;
        let hits = (0..n)
            .filter(|&i| s.bernoulli(ParamId::VrtFlag, &[i], 0.3))
            .count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn noise_fresh_across_event_times() {
        let engine = NoiseEngine::new(3);
        let a = engine.event(NoisePurpose::Sense, 100, &[0, 0]).uniform(0);
        let b = engine.event(NoisePurpose::Sense, 101, &[0, 0]).uniform(0);
        assert_ne!(a, b, "the event clock is the freshness counter");
    }

    #[test]
    fn noise_is_a_pure_function_of_its_key() {
        let a = NoiseEngine::new(11);
        let b = NoiseEngine::new(11);
        for t in 0..100 {
            let ea = a.event(NoisePurpose::ShareEq, t, &[1, 2]);
            let eb = b.event(NoisePurpose::ShareEq, t, &[1, 2]);
            for lane in 0..4 {
                assert_eq!(
                    ea.standard_normal(lane).to_bits(),
                    eb.standard_normal(lane).to_bits()
                );
            }
        }
        // Every key component matters.
        let base = a.event(NoisePurpose::Sense, 5, &[1, 2]).uniform(0);
        assert_ne!(
            base,
            a.event(NoisePurpose::SenseFlip, 5, &[1, 2]).uniform(0)
        );
        assert_ne!(base, a.event(NoisePurpose::Sense, 6, &[1, 2]).uniform(0));
        assert_ne!(base, a.event(NoisePurpose::Sense, 5, &[1, 3]).uniform(0));
        assert_ne!(base, a.event(NoisePurpose::Sense, 5, &[1, 2]).uniform(1));
        assert_ne!(
            base,
            NoiseEngine::new(12)
                .event(NoisePurpose::Sense, 5, &[1, 2])
                .uniform(0)
        );
    }

    #[test]
    fn noise_normal_zero_sigma_is_exact() {
        let event = NoiseEngine::new(1).event(NoisePurpose::Sense, 7, &[0]);
        assert_eq!(event.normal(0, 0.75, 0.0), 0.75);
    }

    #[test]
    fn noise_fill_matches_lane_draws_and_counts() {
        let event = NoiseEngine::new(9).event(NoisePurpose::ShareEq, 42, &[0, 1]);
        let mut buf = vec![0.0; 33];
        assert_eq!(event.fill_normal(0.5, &mut buf), 33);
        for (lane, &v) in buf.iter().enumerate() {
            assert_eq!(v.to_bits(), event.normal(lane as u64, 0.0, 0.5).to_bits());
        }
        // Zero sigma fills zeros and draws nothing.
        assert_eq!(event.fill_normal(0.0, &mut buf), 0);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn noise_normal_moments() {
        let engine = NoiseEngine::new(2024);
        let n = 20_000u64;
        let samples: Vec<f64> = (0..n)
            .map(|t| {
                engine
                    .event(NoisePurpose::Sense, t, &[0])
                    .normal(0, 1.0, 0.5)
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean = {mean}");
        assert!((var - 0.25).abs() < 0.02, "var = {var}");
    }
}
