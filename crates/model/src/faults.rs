//! Deterministic fault injection: seed-keyed defect maps and transient
//! fault processes.
//!
//! The paper's headline results are *reliability curves* — Frac and F-MAJ
//! success rates below 100% (Figs. 6–9) and a PUF whose usefulness rests
//! on stability under environmental stress (Fig. 12). Reproducing how
//! those curves degrade requires injecting the defect classes real DRAM
//! exhibits, and injecting them *mechanistically*: a stuck cell must pin
//! its capacitor before charge sharing (so it perturbs every row it
//! shares with), a weak cell must have less capacitance and a shorter
//! leakage time constant (so Frac and retention see it differently), a
//! flaky sense amplifier must flip its comparison (so restore writes the
//! wrong rail back), and an excursion must move the whole module's
//! operating point mid-run.
//!
//! Everything here is a pure function of `(die seed, FaultConfig)` — the
//! same discipline as [`crate::variation`]: identical inputs produce an
//! identical [`FaultPlan`], which is what makes fault sweeps reproducible
//! across job counts and machines. Densities are *nested*: because a cell
//! is faulty when `uniform(coords) < density`, the stuck set at density
//! 0.01 is a subset of the stuck set at 0.05, so sweeping density up can
//! only add defects — success-rate curves degrade monotonically by
//! construction.

use crate::env::Environment;
use crate::variation::{hash_coords, ParamId, VariationSampler};

/// Salt mixed into the die seed so the fault sampler never aliases the
/// process-variation sampler even for identical `(param, coords)`.
const FAULT_SEED_SALT: u64 = 0xFA17_5EED_0001_C0DE;

/// Densities and rates of every injected fault class. All fields default
/// to zero / empty — [`FaultConfig::none`] — which must be byte-for-byte
/// indistinguishable from a build without the fault layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Fraction of cells permanently stuck at one rail.
    pub stuck_density: f64,
    /// Fraction of cells that are "weak": reduced capacitance and a
    /// shortened leakage time constant.
    pub weak_density: f64,
    /// Capacitance multiplier applied to weak cells (< 1).
    pub weak_cap_factor: f64,
    /// Leakage-tau multiplier applied to weak cells (< 1).
    pub weak_tau_factor: f64,
    /// Mean probability that a sense-amp comparison flips. Each column
    /// gets its own rate: a static per-column multiplier (uniform in
    /// `[0, 2)`) times this mean, so some amplifiers are flaky and some
    /// are solid, like real silicon.
    pub sense_flip_rate: f64,
    /// Probability that an *implicit* row of a decoder glitch (roles
    /// ≥ 2, i.e. neither R1 nor R2) drops out of the multi-row
    /// activation.
    pub decoder_dropout: f64,
    /// Number of mid-run environment excursion windows.
    pub excursions: usize,
    /// Length of each excursion window, in cycles.
    pub excursion_cycles: u64,
    /// Span of cycles (from the controller's start clock) over which
    /// excursion windows are placed.
    pub excursion_span: u64,
    /// Magnitude of the temperature excursion in °C (sign is drawn per
    /// window).
    pub excursion_temp_delta: f64,
    /// Magnitude of the supply-voltage excursion in volts (sign is
    /// drawn per window).
    pub excursion_vdd_delta: f64,
}

impl FaultConfig {
    /// A configuration that injects nothing.
    pub fn none() -> Self {
        FaultConfig {
            stuck_density: 0.0,
            weak_density: 0.0,
            weak_cap_factor: 0.5,
            weak_tau_factor: 0.1,
            sense_flip_rate: 0.0,
            decoder_dropout: 0.0,
            excursions: 0,
            excursion_cycles: 0,
            excursion_span: 0,
            excursion_temp_delta: 0.0,
            excursion_vdd_delta: 0.0,
        }
    }

    /// Whether any fault class is active.
    pub fn enabled(&self) -> bool {
        self.stuck_density > 0.0
            || self.weak_density > 0.0
            || self.sense_flip_rate > 0.0
            || self.decoder_dropout > 0.0
            || self.excursions > 0
    }

    /// Whether any *cell* fault class (stuck or weak) is active —
    /// the classes that change materialized row statics.
    pub fn cell_faults(&self) -> bool {
        self.stuck_density > 0.0 || self.weak_density > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// One mid-run environment excursion: for `start <= t < end` the module
/// operates at the base environment shifted by the deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvWindow {
    /// First cycle (inclusive) the excursion is active.
    pub start: u64,
    /// First cycle after the excursion ends.
    pub end: u64,
    /// Signed temperature shift in °C.
    pub temp_delta: f64,
    /// Signed supply-voltage shift in volts.
    pub vdd_delta: f64,
}

impl EnvWindow {
    /// Whether cycle `t` falls inside the window.
    pub fn contains(&self, t: u64) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether the window overlaps the half-open cycle range `[a, b)`.
    pub fn overlaps(&self, a: u64, b: u64) -> bool {
        self.start < b && a < self.end
    }
}

/// The complete, deterministic fault map of one die.
///
/// A `FaultPlan` owns no per-cell storage: stuck/weak/flip decisions are
/// hashed on demand from `(die seed ⊕ salt, param, coordinates)`, the
/// same zero-storage discipline as [`VariationSampler`]. Only the
/// excursion windows (a handful of entries) are precomputed, sorted by
/// start cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    sampler: VariationSampler,
    config: FaultConfig,
    windows: Vec<EnvWindow>,
}

impl FaultPlan {
    /// Derives the plan for the die identified by `die_seed`.
    pub fn new(die_seed: u64, config: FaultConfig) -> Self {
        let sampler = VariationSampler::new(hash_coords(&[die_seed, FAULT_SEED_SALT]));
        let mut windows = Vec::with_capacity(config.excursions);
        if config.excursions > 0 && config.excursion_cycles > 0 && config.excursion_span > 0 {
            let slack = config
                .excursion_span
                .saturating_sub(config.excursion_cycles);
            for i in 0..config.excursions {
                let i = i as u64;
                let start = (self_uniform(&sampler, &[i, 0]) * slack as f64) as u64;
                let temp_sign = if sampler.bernoulli(ParamId::FaultExcursion, &[i, 1], 0.5) {
                    1.0
                } else {
                    -1.0
                };
                let vdd_sign = if sampler.bernoulli(ParamId::FaultExcursion, &[i, 2], 0.5) {
                    1.0
                } else {
                    -1.0
                };
                windows.push(EnvWindow {
                    start,
                    end: start + config.excursion_cycles,
                    temp_delta: temp_sign * config.excursion_temp_delta,
                    vdd_delta: vdd_sign * config.excursion_vdd_delta,
                });
            }
            windows.sort_by_key(|w| (w.start, w.end));
        }
        FaultPlan {
            sampler,
            config,
            windows,
        }
    }

    /// The configuration the plan was derived from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The excursion windows, sorted by start cycle.
    pub fn windows(&self) -> &[EnvWindow] {
        &self.windows
    }

    /// Whether this plan injects anything at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// The rail a cell is stuck at, or `None` for a healthy cell.
    ///
    /// Membership uses `uniform < density`, so raising the density only
    /// grows the stuck set (never moves it).
    pub fn stuck_at(&self, bank: usize, sub: usize, row: usize, col: usize) -> Option<bool> {
        if self.config.stuck_density <= 0.0 {
            return None;
        }
        let coords = [bank as u64, sub as u64, row as u64, col as u64];
        if self.sampler.uniform(ParamId::FaultStuckCell, &coords) < self.config.stuck_density {
            Some(
                self.sampler
                    .bernoulli(ParamId::FaultStuckValue, &coords, 0.5),
            )
        } else {
            None
        }
    }

    /// Whether a cell is weak (reduced capacitance, fast leakage).
    pub fn is_weak(&self, bank: usize, sub: usize, row: usize, col: usize) -> bool {
        self.config.weak_density > 0.0
            && self.sampler.uniform(
                ParamId::FaultWeakCell,
                &[bank as u64, sub as u64, row as u64, col as u64],
            ) < self.config.weak_density
    }

    /// The transient flip probability of one column's sense amplifier:
    /// the configured mean rate scaled by a static per-column factor in
    /// `[0, 2)`, clamped to a probability.
    pub fn sense_flip_rate(&self, bank: usize, sub: usize, col: usize) -> f64 {
        if self.config.sense_flip_rate <= 0.0 {
            return 0.0;
        }
        let factor = 2.0
            * self.sampler.uniform(
                ParamId::FaultSenseFlip,
                &[bank as u64, sub as u64, col as u64],
            );
        (self.config.sense_flip_rate * factor).min(1.0)
    }

    /// Whether an implicit row of the decoder glitch on `(r1, r2)` drops
    /// out of the multi-row activation. Static per `(pair, row)`, so the
    /// same glitch misbehaves the same way every time.
    pub fn decoder_drop(&self, bank: usize, sub: usize, r1: usize, r2: usize, row: usize) -> bool {
        self.config.decoder_dropout > 0.0
            && self.sampler.bernoulli(
                ParamId::FaultDecoderDrop,
                &[bank as u64, sub as u64, r1 as u64, r2 as u64, row as u64],
                self.config.decoder_dropout,
            )
    }

    /// The excursion window active at cycle `t`, if any.
    pub fn excursion_at(&self, t: u64) -> Option<&EnvWindow> {
        self.windows.iter().find(|w| w.contains(t))
    }

    /// The environment the module sees at cycle `t`, given its base
    /// environment.
    pub fn environment_at(&self, base: Environment, t: u64) -> Environment {
        match self.excursion_at(t) {
            Some(w) => base
                .with_temperature(base.temperature_c + w.temp_delta)
                .with_vdd(crate::units::Volts(base.vdd.value() + w.vdd_delta)),
            None => base,
        }
    }

    /// Whether any excursion window overlaps the cycle range `[a, b)`.
    /// The write-prefix snapshot cache uses this to refuse both capture
    /// and restore across a fault window, falling back to a live replay.
    pub fn excursion_overlaps(&self, a: u64, b: u64) -> bool {
        self.windows.iter().any(|w| w.overlaps(a, b))
    }
}

/// Window-placement uniform, kept out of the public sampler surface so
/// the coordinate convention stays in one place.
fn self_uniform(sampler: &VariationSampler, coords: &[u64]) -> f64 {
    sampler.uniform(ParamId::FaultExcursion, coords)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_config() -> FaultConfig {
        FaultConfig {
            stuck_density: 0.05,
            weak_density: 0.1,
            sense_flip_rate: 0.02,
            decoder_dropout: 0.2,
            excursions: 3,
            excursion_cycles: 10_000,
            excursion_span: 1_000_000,
            excursion_temp_delta: 30.0,
            excursion_vdd_delta: 0.1,
            ..FaultConfig::none()
        }
    }

    #[test]
    fn none_config_is_disabled() {
        let c = FaultConfig::none();
        assert!(!c.enabled());
        assert!(!c.cell_faults());
        let plan = FaultPlan::new(7, c);
        assert!(!plan.enabled());
        assert!(plan.windows().is_empty());
        assert_eq!(plan.stuck_at(0, 0, 0, 0), None);
        assert!(!plan.is_weak(0, 0, 0, 0));
        assert_eq!(plan.sense_flip_rate(0, 0, 0), 0.0);
        assert!(!plan.decoder_drop(0, 0, 1, 2, 3));
        assert!(!plan.excursion_overlaps(0, u64::MAX));
    }

    #[test]
    fn identical_inputs_produce_identical_plans() {
        let a = FaultPlan::new(42, dense_config());
        let b = FaultPlan::new(42, dense_config());
        assert_eq!(a, b);
        for col in 0..256 {
            assert_eq!(a.stuck_at(1, 2, 3, col), b.stuck_at(1, 2, 3, col));
            assert_eq!(a.sense_flip_rate(1, 2, col), b.sense_flip_rate(1, 2, col));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, dense_config());
        let b = FaultPlan::new(2, dense_config());
        let stuck_a: Vec<_> = (0..512).map(|c| a.stuck_at(0, 0, 0, c)).collect();
        let stuck_b: Vec<_> = (0..512).map(|c| b.stuck_at(0, 0, 0, c)).collect();
        assert_ne!(stuck_a, stuck_b);
        assert_ne!(a.windows(), b.windows());
    }

    #[test]
    fn densities_nest() {
        // The stuck set at a low density is a subset of the set at a
        // higher density — the property that makes sweep curves
        // monotone by construction.
        let lo = FaultPlan::new(
            9,
            FaultConfig {
                stuck_density: 0.02,
                ..FaultConfig::none()
            },
        );
        let hi = FaultPlan::new(
            9,
            FaultConfig {
                stuck_density: 0.2,
                ..FaultConfig::none()
            },
        );
        let mut lo_count = 0;
        for row in 0..8 {
            for col in 0..512 {
                if let Some(v) = lo.stuck_at(0, 0, row, col) {
                    lo_count += 1;
                    assert_eq!(hi.stuck_at(0, 0, row, col), Some(v), "row {row} col {col}");
                }
            }
        }
        assert!(lo_count > 0, "density 0.02 over 4096 cells found nothing");
    }

    #[test]
    fn stuck_density_is_respected() {
        let plan = FaultPlan::new(3, dense_config());
        let n = 40_000usize;
        let stuck = (0..n)
            .filter(|&i| plan.stuck_at(0, 0, i / 512, i % 512).is_some())
            .count();
        let p = stuck as f64 / n as f64;
        assert!((p - 0.05).abs() < 0.01, "stuck fraction = {p}");
    }

    #[test]
    fn sense_flip_rate_mean_matches_config() {
        let plan = FaultPlan::new(5, dense_config());
        let n = 20_000usize;
        let mean: f64 = (0..n).map(|c| plan.sense_flip_rate(0, 0, c)).sum::<f64>() / n as f64;
        assert!((mean - 0.02).abs() < 0.002, "mean flip rate = {mean}");
    }

    #[test]
    fn excursion_windows_are_sorted_and_sized() {
        let cfg = dense_config();
        let plan = FaultPlan::new(11, cfg);
        assert_eq!(plan.windows().len(), 3);
        let mut prev = 0;
        for w in plan.windows() {
            assert!(w.start >= prev);
            assert_eq!(w.end - w.start, cfg.excursion_cycles);
            assert!(w.end <= cfg.excursion_span);
            assert_eq!(w.temp_delta.abs(), cfg.excursion_temp_delta);
            assert_eq!(w.vdd_delta.abs(), cfg.excursion_vdd_delta);
            prev = w.start;
        }
    }

    #[test]
    fn environment_at_shifts_inside_windows_only() {
        let plan = FaultPlan::new(11, dense_config());
        let base = Environment::nominal();
        let w = plan.windows()[0];
        let inside = plan.environment_at(base, w.start);
        assert_eq!(inside.temperature_c, base.temperature_c + w.temp_delta);
        assert_eq!(inside.vdd.value(), base.vdd.value() + w.vdd_delta);
        // One past the end is back to base (unless another window covers
        // it, which these sparse windows do not).
        if plan.excursion_at(w.end).is_none() {
            assert_eq!(plan.environment_at(base, w.end), base);
        }
    }

    #[test]
    fn overlap_detection_matches_windows() {
        let plan = FaultPlan::new(13, dense_config());
        let w = plan.windows()[0];
        assert!(plan.excursion_overlaps(w.start, w.end));
        assert!(plan.excursion_overlaps(w.start.saturating_sub(5), w.start + 1));
        assert!(plan.excursion_overlaps(w.end - 1, w.end + 100));
        assert!(!plan.excursion_overlaps(w.end, w.end));
        // An empty range never overlaps.
        assert!(!plan.excursion_overlaps(w.start, w.start));
    }
}
