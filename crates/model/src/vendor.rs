//! Vendor profiles for the twelve DRAM groups of Table I.
//!
//! The paper characterizes 528 DDR3 chips in 12 groups (A–L) spanning
//! seven vendors. Each group behaves differently under out-of-spec
//! command timing; the profile captures that behavior as a small set of
//! analog biases and capability knobs from which the Table I capability
//! matrix, the Fig. 9 configuration preferences, and the Fig. 11 Hamming
//! weights all *emerge* (they are measured by the experiments, not
//! returned by lookups).

use std::fmt;

use crate::decoder::DecoderBehavior;
use crate::units::Volts;

/// The DRAM groups of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupId {
    /// SK Hynix DDR3-1066.
    A,
    /// SK Hynix DDR3-1333 (the only ComputeDRAM-capable group).
    B,
    /// SK Hynix DDR3-1333 (power-of-two activation only).
    C,
    /// SK Hynix DDR3-1600 (power-of-two activation only).
    D,
    /// Samsung DDR3-1066.
    E,
    /// Samsung DDR3-1333.
    F,
    /// Samsung DDR3-1600.
    G,
    /// TimeTec DDR3-1333.
    H,
    /// Corsair DDR3-1333.
    I,
    /// Micron DDR3-1333 (command-timing guard; Frac has no effect).
    J,
    /// Elpida DDR3-1333 (command-timing guard; Frac has no effect).
    K,
    /// Nanya DDR3-1333 (command-timing guard; Frac has no effect).
    L,
}

impl GroupId {
    /// All twelve groups in Table I order.
    pub const ALL: [GroupId; 12] = [
        GroupId::A,
        GroupId::B,
        GroupId::C,
        GroupId::D,
        GroupId::E,
        GroupId::F,
        GroupId::G,
        GroupId::H,
        GroupId::I,
        GroupId::J,
        GroupId::K,
        GroupId::L,
    ];

    /// Groups for which the paper demonstrates the Frac operation (A–I).
    pub fn frac_capable_groups() -> impl Iterator<Item = GroupId> {
        Self::ALL.into_iter().filter(|g| !g.profile().timing_guard)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Static description of how chips in one group respond to out-of-spec
/// command sequences, plus the Table I census data.
#[derive(Debug, Clone, PartialEq)]
pub struct VendorProfile {
    /// Which group this profile describes.
    pub group: GroupId,
    /// Vendor name as listed in Table I.
    pub vendor: &'static str,
    /// Nominal DRAM frequency (speed grade) in MHz.
    pub freq_mhz: u32,
    /// Number of chips of this group evaluated in the paper.
    pub chips_evaluated: u32,
    /// Row-decoder behavior under the ACT–PRE–ACT glitch sequence.
    pub decoder: DecoderBehavior,
    /// Whether the chip implements command-timing checking circuits that
    /// ignore back-to-back commands (groups J, K, L). Such chips perform
    /// neither Frac nor any multi-row activation.
    pub timing_guard: bool,
    /// Group-wide mean of the per-column sense-amplifier offset. This
    /// bias determines the Hamming weight of PUF responses (Fig. 11:
    /// e.g. only 21 % of group A bits read as one).
    pub sense_offset_mean: Volts,
    /// Mean charge-sharing weight for each command-sequence role
    /// (R1, R2, R3, R4) during multi-row activation. The heavy slot is
    /// the "primary row" of §VI-A2; storing the fractional value there is
    /// each group's best F-MAJ configuration.
    pub row_weight_means: [f64; 4],
    /// Systematic bit-line bias during multi-row charge sharing. A
    /// negative bias skews results toward zero, which is why group C
    /// favors a fractional value *above* `Vdd/2` (initial ones) while
    /// group D (positive bias) favors one below.
    pub multirow_bias: Volts,
    /// Per-group scaling of the leakage-tau median (retention flavor —
    /// the visible per-group differences in the Fig. 6 heatmap).
    pub leak_tau_scale: f64,
}

impl VendorProfile {
    /// Returns the profile for a group.
    pub fn for_group(group: GroupId) -> Self {
        group.profile()
    }

    /// Whether chips of this group can store fractional values with Frac.
    ///
    /// The paper finds Frac works on every group whose chips do not gate
    /// command timing (A–I) and speculates J/K/L "implement time checking
    /// circuits".
    pub fn supports_frac(&self) -> bool {
        !self.timing_guard
    }

    /// Whether the ACT–PRE–ACT sequence can open exactly three rows
    /// (prerequisite for the original ComputeDRAM MAJ3).
    pub fn supports_three_row(&self) -> bool {
        !self.timing_guard && self.decoder.can_open_three()
    }

    /// Whether the ACT–PRE–ACT sequence can open four rows (prerequisite
    /// for Half-m and F-MAJ).
    pub fn supports_four_row(&self) -> bool {
        !self.timing_guard && self.decoder.can_open_four()
    }

    /// Number of 8-chip modules this group contributes (Table I counts
    /// individual chips; the platform exercises x8 chips in groups of 8).
    pub fn modules_evaluated(&self) -> u32 {
        self.chips_evaluated / 8
    }

    /// Index of the primary (heaviest) row slot in the activation roles.
    pub fn primary_slot(&self) -> usize {
        let mut best = 0;
        for (i, &w) in self.row_weight_means.iter().enumerate() {
            if w > self.row_weight_means[best] {
                best = i;
            }
        }
        best
    }
}

impl GroupId {
    /// Returns the [`VendorProfile`] of this group.
    pub fn profile(self) -> VendorProfile {
        // Baseline weights: R1 (activated first) retains a mild edge over
        // the implicitly opened rows simply because its word-line has been
        // up longest.
        const EVEN: [f64; 4] = [1.15, 1.0, 1.0, 1.0];
        match self {
            GroupId::A => VendorProfile {
                group: self,
                vendor: "SK Hynix",
                freq_mhz: 1066,
                chips_evaluated: 16,
                decoder: DecoderBehavior::SingleOnly,
                timing_guard: false,
                sense_offset_mean: Volts(0.0181),
                row_weight_means: EVEN,
                multirow_bias: Volts(0.0),
                leak_tau_scale: 1.0,
            },
            GroupId::B => VendorProfile {
                group: self,
                vendor: "SK Hynix",
                freq_mhz: 1333,
                chips_evaluated: 80,
                decoder: DecoderBehavior::TriQuad,
                timing_guard: false,
                sense_offset_mean: Volts(0.0097),
                // R2 is the primary row: the paper's best F-MAJ config for
                // group B stores the fractional value in R2.
                row_weight_means: [1.05, 1.45, 1.0, 1.0],
                multirow_bias: Volts(0.0),
                leak_tau_scale: 1.25,
            },
            GroupId::C => VendorProfile {
                group: self,
                vendor: "SK Hynix",
                freq_mhz: 1333,
                chips_evaluated: 160,
                decoder: DecoderBehavior::PowerOfTwo,
                timing_guard: false,
                sense_offset_mean: Volts(0.0045),
                // R1 primary; negative bias makes a fractional value above
                // Vdd/2 (initial ones) the favored configuration.
                row_weight_means: [1.75, 1.0, 1.0, 1.0],
                multirow_bias: Volts(-0.022),
                leak_tau_scale: 0.8,
            },
            GroupId::D => VendorProfile {
                group: self,
                vendor: "SK Hynix",
                freq_mhz: 1600,
                chips_evaluated: 16,
                decoder: DecoderBehavior::PowerOfTwo,
                timing_guard: false,
                sense_offset_mean: Volts(0.0030),
                // R4 primary; positive bias favors a fractional value
                // below Vdd/2 (initial zeros) in R4.
                row_weight_means: [1.1, 1.0, 1.0, 1.7],
                multirow_bias: Volts(0.022),
                leak_tau_scale: 1.6,
            },
            GroupId::E => VendorProfile {
                group: self,
                vendor: "Samsung",
                freq_mhz: 1066,
                chips_evaluated: 32,
                decoder: DecoderBehavior::SingleOnly,
                timing_guard: false,
                sense_offset_mean: Volts(0.0125),
                row_weight_means: EVEN,
                multirow_bias: Volts(0.0),
                leak_tau_scale: 0.6,
            },
            GroupId::F => VendorProfile {
                group: self,
                vendor: "Samsung",
                freq_mhz: 1333,
                chips_evaluated: 48,
                decoder: DecoderBehavior::SingleOnly,
                timing_guard: false,
                sense_offset_mean: Volts(0.0010),
                row_weight_means: EVEN,
                multirow_bias: Volts(0.0),
                leak_tau_scale: 1.1,
            },
            GroupId::G => VendorProfile {
                group: self,
                vendor: "Samsung",
                freq_mhz: 1600,
                chips_evaluated: 32,
                decoder: DecoderBehavior::SingleOnly,
                timing_guard: false,
                sense_offset_mean: Volts(-0.0005),
                row_weight_means: EVEN,
                multirow_bias: Volts(0.0),
                leak_tau_scale: 2.0,
            },
            GroupId::H => VendorProfile {
                group: self,
                vendor: "TimeTec",
                freq_mhz: 1333,
                chips_evaluated: 32,
                decoder: DecoderBehavior::SingleOnly,
                timing_guard: false,
                sense_offset_mean: Volts(0.0060),
                row_weight_means: EVEN,
                multirow_bias: Volts(0.0),
                leak_tau_scale: 0.9,
            },
            GroupId::I => VendorProfile {
                group: self,
                vendor: "Corsair",
                freq_mhz: 1333,
                chips_evaluated: 32,
                decoder: DecoderBehavior::SingleOnly,
                timing_guard: false,
                sense_offset_mean: Volts(0.0035),
                row_weight_means: EVEN,
                multirow_bias: Volts(0.0),
                leak_tau_scale: 1.4,
            },
            GroupId::J => VendorProfile {
                group: self,
                vendor: "Micron",
                freq_mhz: 1333,
                chips_evaluated: 16,
                decoder: DecoderBehavior::SingleOnly,
                timing_guard: true,
                sense_offset_mean: Volts(0.0),
                row_weight_means: EVEN,
                multirow_bias: Volts(0.0),
                leak_tau_scale: 1.0,
            },
            GroupId::K => VendorProfile {
                group: self,
                vendor: "Elpida",
                freq_mhz: 1333,
                chips_evaluated: 32,
                decoder: DecoderBehavior::SingleOnly,
                timing_guard: true,
                sense_offset_mean: Volts(0.0),
                row_weight_means: EVEN,
                multirow_bias: Volts(0.0),
                leak_tau_scale: 1.0,
            },
            GroupId::L => VendorProfile {
                group: self,
                vendor: "Nanya",
                freq_mhz: 1333,
                chips_evaluated: 32,
                decoder: DecoderBehavior::SingleOnly,
                timing_guard: true,
                sense_offset_mean: Volts(0.0),
                row_weight_means: EVEN,
                multirow_bias: Volts(0.0),
                leak_tau_scale: 1.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capability_matrix() {
        use GroupId::*;
        // Frac: groups A-I check, J-L blank.
        for g in [A, B, C, D, E, F, G, H, I] {
            assert!(g.profile().supports_frac(), "{g} should support Frac");
        }
        for g in [J, K, L] {
            assert!(!g.profile().supports_frac(), "{g} must not support Frac");
        }
        // Three-row activation: only group B.
        for g in GroupId::ALL {
            assert_eq!(g.profile().supports_three_row(), g == B, "{g} three-row");
        }
        // Four-row activation: groups B, C, D.
        for g in GroupId::ALL {
            assert_eq!(
                g.profile().supports_four_row(),
                matches!(g, B | C | D),
                "{g} four-row"
            );
        }
    }

    #[test]
    fn table1_census_totals() {
        let total: u32 = GroupId::ALL
            .iter()
            .map(|g| g.profile().chips_evaluated)
            .sum();
        // Table I lists 528 evaluated chips across the 12 groups.
        assert_eq!(total, 528);
    }

    #[test]
    fn primary_slots_match_paper_configs() {
        // Group B: frac in R2 is best; group C: R1; group D: R4.
        assert_eq!(GroupId::B.profile().primary_slot(), 1);
        assert_eq!(GroupId::C.profile().primary_slot(), 0);
        assert_eq!(GroupId::D.profile().primary_slot(), 3);
    }

    #[test]
    fn bias_directions_match_favored_frac_levels() {
        // C favors frac above Vdd/2 => bias must be negative (skews low).
        assert!(GroupId::C.profile().multirow_bias.value() < 0.0);
        // D favors frac below Vdd/2 => bias positive.
        assert!(GroupId::D.profile().multirow_bias.value() > 0.0);
    }

    #[test]
    fn frac_capable_groups_is_nine() {
        assert_eq!(GroupId::frac_capable_groups().count(), 9);
    }

    #[test]
    fn modules_evaluated_divides_chips() {
        assert_eq!(GroupId::B.profile().modules_evaluated(), 10);
        assert_eq!(GroupId::A.profile().modules_evaluated(), 2);
    }

    #[test]
    fn display_is_single_letter() {
        assert_eq!(GroupId::A.to_string(), "A");
        assert_eq!(GroupId::L.to_string(), "L");
    }
}
