//! Sense-amplifier model.
//!
//! At the end of each bit-line sits a differential sense amplifier that,
//! when enabled, compares the bit-line voltage against `Vdd/2` and drives
//! it to full rail. "Whether Vdd/2 is regarded as a zero or one is
//! determined by the sense amplifier circuit, which is essentially a
//! comparator" (§VI-B1) — its per-column input-referred offset is the
//! entropy source of the Frac-based PUF and, because the offset is a
//! static manufacturing artifact, the comparison is largely independent
//! of temperature and supply voltage (the paper's Fig. 12 robustness).

use crate::env::Environment;
use crate::params::DeviceParams;
use crate::units::Volts;

/// Computes the effective decision threshold of one column's sense
/// amplifier under the given environment.
///
/// The ideal threshold is `Vdd/2`; the static `offset` and a small
/// per-column temperature drift shift it, and a fraction of any supply
/// deviation from nominal couples in as a common-mode shift.
pub fn threshold(
    params: &DeviceParams,
    env: &Environment,
    offset: Volts,
    temp_coeff: f64,
) -> Volts {
    let half = params.half_vdd(env.vdd);
    let temp_shift = temp_coeff * (env.temperature_c - 20.0);
    let vdd_shift = params.sense_vdd_coupling * (env.vdd.value() - params.vdd_nominal.value());
    Volts(half.value() + offset.value() + temp_shift + vdd_shift)
}

/// The sense decision: does a bit-line at `bitline` volts (noise already
/// applied by the caller) read as a physical one?
pub fn senses_one(bitline: Volts, threshold: Volts) -> bool {
    bitline.value() > threshold.value()
}

/// The effective *cell-side* threshold for an anti-cell column.
///
/// The row buffer always latches the same side of the differential
/// amplifier, so the amplifier's offset tips a metastable (≈ `Vdd/2`)
/// column toward the same *logical* value regardless of cell polarity
/// (§II-C, §VI-B1). Anti-cell columns connect their cells to the
/// complementary bit-line; seen from the cell side, the decision
/// threshold is therefore the reflection of the row-buffer-side
/// threshold around `Vdd/2`.
pub fn mirror_for_anti(threshold: Volts, env: &Environment) -> Volts {
    Volts(env.vdd.value() - threshold.value())
}

/// The full-rail restore values driven onto the bit-line (and all
/// connected cells) once the amplifier latches.
pub fn restore_level(sensed_one: bool, env: &Environment) -> Volts {
    if sensed_one {
        env.vdd
    } else {
        Volts(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_threshold_is_half_vdd_plus_offset() {
        let p = DeviceParams::default();
        let e = Environment::nominal();
        let th = threshold(&p, &e, Volts(0.01), 0.0);
        assert!((th.value() - 0.76).abs() < 1e-12);
    }

    #[test]
    fn threshold_tracks_supply() {
        let p = DeviceParams::default();
        let low = Environment::nominal().with_vdd(Volts(1.4));
        let th = threshold(&p, &low, Volts(0.0), 0.0);
        // Ideal tracking would be 0.70; the coupling term moves it only
        // slightly, which is why the PUF survives a supply change.
        assert!((th.value() - 0.70).abs() < 0.005, "th = {th}");
    }

    #[test]
    fn temperature_drift_is_small() {
        let p = DeviceParams::default();
        let hot = Environment::nominal().with_temperature(80.0);
        let th_cold = threshold(&p, &Environment::nominal(), Volts(0.0), 2e-4);
        let th_hot = threshold(&p, &hot, Volts(0.0), 2e-4);
        let drift = (th_hot.value() - th_cold.value()).abs();
        assert!(drift > 0.0);
        assert!(drift < 0.02, "drift {drift} too large for Fig. 12 shape");
    }

    #[test]
    fn decision_and_restore() {
        let e = Environment::nominal();
        assert!(senses_one(Volts(0.8), Volts(0.75)));
        assert!(!senses_one(Volts(0.7), Volts(0.75)));
        assert_eq!(restore_level(true, &e), Volts(1.5));
        assert_eq!(restore_level(false, &e), Volts(0.0));
    }
}
