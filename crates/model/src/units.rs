//! Physical and temporal units used throughout the device model.
//!
//! All units are thin newtypes ([`Volts`], [`Femtofarads`], [`Seconds`],
//! [`Cycles`]) so that quantities with different meanings cannot be mixed
//! accidentally (C-NEWTYPE). Conversions between cycles and wall-clock time
//! assume the SoftMC platform frequency of the paper: 400 MHz, i.e. one
//! memory cycle every 2.5 ns, regardless of the DRAM speed grade.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Duration of one memory cycle on the (simulated) SoftMC platform, in
/// nanoseconds. The paper fixes the controller frequency to 400 MHz, so a
/// memory cycle is always 2.5 ns no matter what speed grade the DRAM has.
pub const CYCLE_NS: f64 = 2.5;

/// Duration of one memory cycle in seconds.
pub const CYCLE_SECONDS: f64 = CYCLE_NS * 1e-9;

macro_rules! float_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw `f64` value.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity to the inclusive range `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

float_unit!(
    /// An electric potential in volts.
    ///
    /// Cell and bit-line voltages are stored in absolute volts (not
    /// normalized to `Vdd`) so that experiments which change the supply
    /// voltage between write and read (Fig. 12 of the paper) observe the
    /// stored charge unchanged while the sense threshold moves.
    Volts,
    " V"
);

float_unit!(
    /// A capacitance in femtofarads. Cell capacitors are ~20 fF while
    /// bit-lines are several times larger, which is what makes the charge
    /// sharing of a single cell nudge the bit-line only slightly away from
    /// `Vdd/2`.
    Femtofarads,
    " fF"
);

float_unit!(
    /// A duration in seconds; used for leakage/retention math where times
    /// range from microseconds to days.
    Seconds,
    " s"
);

impl Seconds {
    /// Constructs a duration from minutes.
    pub fn from_minutes(m: f64) -> Self {
        Seconds(m * 60.0)
    }

    /// Constructs a duration from hours.
    pub fn from_hours(h: f64) -> Self {
        Seconds(h * 3600.0)
    }

    /// The duration expressed in minutes.
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// The duration expressed in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }
}

/// A count of memory cycles (2.5 ns each).
///
/// `Cycles` is the unit in which all command timing is expressed, mirroring
/// the way SoftMC programs encode inter-command idle cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// One cycle.
    pub const ONE: Cycles = Cycles(1);

    /// Returns the raw cycle count.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Converts the cycle count to seconds at 2.5 ns per cycle.
    #[inline]
    pub fn to_seconds(self) -> Seconds {
        Seconds(self.0 as f64 * CYCLE_SECONDS)
    }

    /// Converts the cycle count to nanoseconds.
    #[inline]
    pub fn to_nanoseconds(self) -> f64 {
        self.0 as f64 * CYCLE_NS
    }

    /// Number of whole cycles needed to cover `s` seconds (rounds up).
    pub fn from_seconds_ceil(s: Seconds) -> Self {
        Cycles((s.0 / CYCLE_SECONDS).ceil() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Self {
        Cycles(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_time_matches_softmc_platform() {
        assert_eq!(Cycles(1).to_nanoseconds(), 2.5);
        assert_eq!(Cycles(4).to_nanoseconds(), 10.0);
        assert!((Cycles(400_000_000).to_seconds().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_from_seconds_rounds_up() {
        assert_eq!(Cycles::from_seconds_ceil(Seconds(0.0)), Cycles(0));
        assert_eq!(Cycles::from_seconds_ceil(Seconds(2.5e-9)), Cycles(1));
        assert_eq!(Cycles::from_seconds_ceil(Seconds(2.6e-9)), Cycles(2));
    }

    #[test]
    fn volts_arithmetic() {
        let a = Volts(1.5);
        let b = Volts(0.75);
        assert_eq!(a - b, Volts(0.75));
        assert_eq!(a + b, Volts(2.25));
        assert_eq!(a * 2.0, Volts(3.0));
        assert_eq!(a / 2.0, Volts(0.75));
        assert!((a / b - 2.0).abs() < 1e-12);
        assert_eq!((-b).abs(), b);
    }

    #[test]
    fn volts_clamp_and_minmax() {
        let v = Volts(2.0);
        assert_eq!(v.clamp(Volts(0.0), Volts(1.5)), Volts(1.5));
        assert_eq!(Volts(-0.1).clamp(Volts(0.0), Volts(1.5)), Volts(0.0));
        assert_eq!(Volts(1.0).min(Volts(0.5)), Volts(0.5));
        assert_eq!(Volts(1.0).max(Volts(0.5)), Volts(1.0));
    }

    #[test]
    fn seconds_conversions() {
        assert_eq!(Seconds::from_minutes(10.0).value(), 600.0);
        assert_eq!(Seconds::from_hours(2.0).as_minutes(), 120.0);
        assert_eq!(Seconds(7200.0).as_hours(), 2.0);
    }

    #[test]
    fn cycles_sum_and_saturating() {
        let total: Cycles = [Cycles(2), Cycles(5)].into_iter().sum();
        assert_eq!(total, Cycles(7));
        assert_eq!(Cycles(3).saturating_sub(Cycles(5)), Cycles(0));
    }

    #[test]
    fn display_includes_unit_suffix() {
        assert_eq!(Volts(0.75).to_string(), "0.75 V");
        assert_eq!(Cycles(7).to_string(), "7 cycles");
    }
}
