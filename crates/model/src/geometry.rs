//! DRAM organization: geometry and addressing.
//!
//! The model follows the hierarchy described in §II-A of the paper:
//! a module contains chips, a chip contains banks, a bank contains
//! sub-arrays, and a sub-array is a grid of rows × columns with one
//! sense amplifier per column. Command addressing uses *bank-level row
//! numbers* (as DRAM commands do); the sub-array index and the local row
//! within it are derived from the geometry, since multi-row activation
//! only ever happens within one sub-array.

use std::fmt;

/// Shape of a simulated chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Number of banks per chip.
    pub banks: usize,
    /// Number of sub-arrays per bank.
    pub subarrays_per_bank: usize,
    /// Number of rows per sub-array.
    pub rows_per_subarray: usize,
    /// Number of columns (bit-lines / sense amplifiers) per sub-array.
    pub columns: usize,
}

impl Geometry {
    /// A small geometry suitable for unit tests: 2 banks × 2 sub-arrays ×
    /// 32 rows × 64 columns.
    pub fn tiny() -> Self {
        Geometry {
            banks: 2,
            subarrays_per_bank: 2,
            rows_per_subarray: 32,
            columns: 64,
        }
    }

    /// The default experiment geometry: big enough for every paper
    /// experiment while keeping simulation time reasonable.
    pub fn experiment() -> Self {
        Geometry {
            banks: 8,
            subarrays_per_bank: 8,
            rows_per_subarray: 64,
            columns: 1024,
        }
    }

    /// Geometry of a realistic x8 DDR3 chip slice used for the PUF
    /// experiments: an 8 KB module row spreads 8192 bits across each of
    /// 8 chips.
    pub fn puf() -> Self {
        Geometry {
            banks: 8,
            subarrays_per_bank: 4,
            rows_per_subarray: 64,
            columns: 8192,
        }
    }

    /// Total number of rows in a bank.
    pub fn rows_per_bank(&self) -> usize {
        self.subarrays_per_bank * self.rows_per_subarray
    }

    /// Total number of cells in the chip.
    pub fn total_cells(&self) -> usize {
        self.banks * self.rows_per_bank() * self.columns
    }

    /// Splits a bank-level row number into (sub-array index, local row).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range for the bank.
    pub fn split_row(&self, row: usize) -> (usize, usize) {
        assert!(
            row < self.rows_per_bank(),
            "row {row} out of range ({} rows per bank)",
            self.rows_per_bank()
        );
        (row / self.rows_per_subarray, row % self.rows_per_subarray)
    }

    /// Combines (sub-array index, local row) into a bank-level row number.
    pub fn join_row(&self, subarray: usize, local_row: usize) -> usize {
        debug_assert!(subarray < self.subarrays_per_bank);
        debug_assert!(local_row < self.rows_per_subarray);
        subarray * self.rows_per_subarray + local_row
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::experiment()
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} banks x {} subarrays x {} rows x {} cols",
            self.banks, self.subarrays_per_bank, self.rows_per_subarray, self.columns
        )
    }
}

/// Address of a row at bank granularity — what ACTIVATE takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowAddr {
    /// Bank index within the chip/module.
    pub bank: usize,
    /// Bank-level row number.
    pub row: usize,
}

impl RowAddr {
    /// Creates a row address.
    pub fn new(bank: usize, row: usize) -> Self {
        RowAddr { bank, row }
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank {} row {}", self.bank, self.row)
    }
}

/// Address of a sub-array within a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubarrayAddr {
    /// Bank index.
    pub bank: usize,
    /// Sub-array index within the bank.
    pub subarray: usize,
}

impl SubarrayAddr {
    /// Creates a sub-array address.
    pub fn new(bank: usize, subarray: usize) -> Self {
        SubarrayAddr { bank, subarray }
    }

    /// The bank-level row number of `local_row` inside this sub-array.
    pub fn row(&self, geometry: &Geometry, local_row: usize) -> RowAddr {
        RowAddr::new(self.bank, geometry.join_row(self.subarray, local_row))
    }
}

impl fmt::Display for SubarrayAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank {} subarray {}", self.bank, self.subarray)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_join_roundtrip() {
        let g = Geometry::tiny();
        for row in 0..g.rows_per_bank() {
            let (sa, local) = g.split_row(row);
            assert_eq!(g.join_row(sa, local), row);
            assert!(sa < g.subarrays_per_bank);
            assert!(local < g.rows_per_subarray);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_rejects_out_of_range() {
        let g = Geometry::tiny();
        g.split_row(g.rows_per_bank());
    }

    #[test]
    fn subarray_addr_row_is_bank_level() {
        let g = Geometry::tiny();
        let sa = SubarrayAddr::new(1, 1);
        let addr = sa.row(&g, 3);
        assert_eq!(addr.bank, 1);
        assert_eq!(addr.row, g.rows_per_subarray + 3);
    }

    #[test]
    fn totals() {
        let g = Geometry::tiny();
        assert_eq!(g.rows_per_bank(), 64);
        assert_eq!(g.total_cells(), 2 * 64 * 64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(RowAddr::new(2, 7).to_string(), "bank 2 row 7");
        assert!(Geometry::tiny().to_string().contains("2 banks"));
    }
}
