//! Materialized silicon statics: contiguous per-row / per-column buffers
//! of the pure-hash parameters the event kernels consume.
//!
//! Every static parameter in [`Silicon`] is a pure function of
//! `(chip seed, parameter id, coordinates)` — see
//! [`crate::variation`]. The kernels used to re-derive some of them
//! (notably the per-cell charge-injection offset, a full hash +
//! Box–Muller per column) on **every** event. This cache builds each
//! buffer exactly once per (chip, coordinate) and hands the kernels
//! plain slices:
//!
//! - [`RowStatics`] per (bank, sub-array, row): cell capacitance,
//!   leakage tau at 20 °C, charge-injection offset, VRT column list;
//! - [`ColStatics`] per (bank, sub-array): sense-amplifier offset,
//!   its temperature coefficient, anti-cell polarity, and the Half-m
//!   closure asymmetry;
//! - per-slot multi-row share weights.
//!
//! **Determinism argument.** Caching cannot change any simulated value:
//! the buffers hold the same `f64`/`f32` bit patterns the direct
//! [`Silicon`] calls return (the builders call those very functions),
//! and the stateful temporal-noise RNG is never involved. The cache is
//! keyed off the silicon seed — asking it about a chip with a different
//! seed drops every buffer and rebuilds, so stale statics can never
//! leak across chips. Experiment stdout is byte-identical with or
//! without the cache; only wall time changes.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::chip::ChipConfig;
use crate::env::Environment;
use crate::perf::ModelPerf;
use crate::silicon::Silicon;
use crate::variation::splitmix64;

/// Memoized `exp()` entries are evicted wholesale past this size; big
/// retention sweeps generate unbounded distinct exponent arguments.
const EXP_MEMO_CAP: usize = 1 << 20;

/// Initial exp-memo table size (slots). Grows by 4× as it fills so idle
/// chips pay kilobytes, not megabytes.
const EXP_MEMO_INITIAL: usize = 1 << 10;

/// Cached decay-factor vectors are evicted wholesale past this count;
/// each entry is one row's worth of `f64`s for one `(dt, scale)` pair.
const DECAY_VEC_CAP: usize = 512;

/// Flat open-addressing `exp()` memo.
///
/// The key is the argument's exact bit pattern; key `0` (the bits of
/// `+0.0`) doubles as the empty-slot sentinel, and `exp(+0) = 1` is
/// answered without touching the table. A SplitMix finish spreads
/// mantissa-adjacent keys; linear probing keeps a lookup to one or two
/// adjacent cache lines — the `HashMap` this replaces spent more time
/// hashing and chasing its control bytes than the `exp()` it saved.
#[derive(Debug, Clone)]
struct ExpMemo {
    keys: Box<[u64]>,
    vals: Box<[f64]>,
    filled: usize,
}

impl Default for ExpMemo {
    fn default() -> Self {
        ExpMemo {
            keys: vec![0u64; EXP_MEMO_INITIAL].into(),
            vals: vec![0f64; EXP_MEMO_INITIAL].into(),
            filled: 0,
        }
    }
}

impl ExpMemo {
    /// Looks up `exp` of the argument with bits `key`, computing and
    /// inserting on miss. Returns `(value, was_hit)`.
    fn probe(&mut self, key: u64) -> (f64, bool) {
        debug_assert_ne!(key, 0, "+0.0 is answered before the table");
        let mask = self.keys.len() - 1;
        let mut slot = (splitmix64(key) as usize) & mask;
        loop {
            let k = self.keys[slot];
            if k == key {
                return (self.vals[slot], true);
            }
            if k == 0 {
                let v = f64::from_bits(key).exp();
                self.keys[slot] = key;
                self.vals[slot] = v;
                self.filled += 1;
                if self.filled * 4 >= self.keys.len() * 3 {
                    self.grow_or_clear();
                }
                return (v, false);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Quadruples the table (rehashing every entry), or clears it
    /// wholesale once it has reached the retention cap — the same
    /// eviction policy the map it replaced used. Either way the memo
    /// only ever returns `x.exp()` bits, so eviction timing cannot
    /// change a simulated value.
    fn grow_or_clear(&mut self) {
        if self.keys.len() >= EXP_MEMO_CAP {
            self.keys.fill(0);
            self.filled = 0;
            return;
        }
        let new_len = self.keys.len() * 4;
        let old_keys = std::mem::replace(&mut self.keys, vec![0u64; new_len].into());
        let old_vals = std::mem::replace(&mut self.vals, vec![0f64; new_len].into());
        let mask = self.keys.len() - 1;
        for (&k, &v) in old_keys.iter().zip(old_vals.iter()) {
            if k == 0 {
                continue;
            }
            let mut slot = (splitmix64(k) as usize) & mask;
            while self.keys[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = k;
            self.vals[slot] = v;
        }
    }
}

/// Materialized sense thresholds of one sub-array, tagged with the
/// environment they were computed under.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseThresholds {
    temp_bits: u64,
    vdd_bits: u64,
    /// Final per-column comparison threshold (anti-cell mirror already
    /// applied).
    pub th: Box<[f64]>,
}

/// Static per-cell parameters of one row, as contiguous buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct RowStatics {
    /// Cell capacitance (fF), one entry per column.
    pub cap: Box<[f32]>,
    /// Leakage time constant at 20 °C (seconds), one entry per column.
    pub tau20: Box<[f32]>,
    /// Charge-injection offset (volts), one entry per column.
    pub inject: Box<[f64]>,
    /// Columns whose cell is VRT (sparse, ascending).
    pub vrt: Box<[u32]>,
    /// Stuck-at cells (sparse, ascending), encoded `col << 1 | rail`.
    /// Empty unless a fault plan with a stuck density is installed.
    pub stuck: Box<[u32]>,
}

/// Static per-column parameters of one sub-array, as contiguous buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct ColStatics {
    /// Sense-amplifier input-referred offset (volts).
    pub offset: Box<[f64]>,
    /// Temperature coefficient of the sense offset (V per °C).
    pub temp_coeff: Box<[f64]>,
    /// Whether the column is wired as anti-cells.
    pub anti: Box<[bool]>,
    /// Raw Half-m closure asymmetry (volts), before the metastability
    /// roll-off applied at close time.
    pub halfm_asym: Box<[f64]>,
}

/// Key of one cached decay-factor vector: `(bank, sub, row, dt bits,
/// scale bits)`.
type DecayKey = (usize, usize, usize, u64, u64);

/// Lazy, seed-keyed cache of materialized silicon statics for one chip.
#[derive(Debug, Clone, Default)]
pub struct MaterializeCache {
    seed: u64,
    cols: HashMap<(usize, usize), Box<ColStatics>>,
    weights: HashMap<(usize, usize, usize), Box<[f32]>>,
    rows: HashMap<(usize, usize, usize), Box<RowStatics>>,
    /// Final sense thresholds per sub-array, tagged by environment.
    sense_th: HashMap<(usize, usize), Box<SenseThresholds>>,
    /// Per-column sense-flip fault rates per sub-array.
    flip_rates: HashMap<(usize, usize), Box<[f64]>>,
    /// Decay-factor vectors: `exp(-dt / (tau20[col] * scale))` per
    /// column.
    decay: HashMap<DecayKey, Box<[f64]>>,
    /// `exp(x)` keyed by `x.to_bits()`. Pure math — seed-independent, so
    /// `sync_seed` leaves it alone. Interior mutability lets the leakage
    /// kernel probe it while holding the row-statics borrow.
    exp_memo: RefCell<ExpMemo>,
    /// Full identity of the chip that donated this cache (stamped by
    /// `Chip::take_cache`). The buffers are pure in the *whole* chip
    /// configuration — group profile, analog parameters, and geometry,
    /// not just the die seed — so adoption across chips must compare
    /// all of it. `None` for a cache that never left its chip.
    donor: Option<ChipConfig>,
}

impl MaterializeCache {
    /// An empty cache keyed to `seed` (normally the owning chip's die
    /// seed).
    pub fn new(seed: u64) -> Self {
        MaterializeCache {
            seed,
            ..MaterializeCache::default()
        }
    }

    /// Memoized `x.exp()`, keyed by the exact bit pattern of `x` —
    /// bit-identical to calling `exp` directly, with a counter-visible
    /// hit rate. The leakage kernel's exponent arguments repeat exactly
    /// across trials (same `dt`, same materialized `tau`), so the table
    /// converts its dominant cost into a flat-table probe.
    #[inline]
    pub fn exp(&self, perf: &mut ModelPerf, x: f64) -> f64 {
        if x == 0.0 && x.is_sign_positive() {
            // `+0.0` has bit pattern 0, the table's empty sentinel.
            perf.exp_memo_hits += 1;
            return 1.0;
        }
        let (v, hit) = self.exp_memo.borrow_mut().probe(x.to_bits());
        if hit {
            perf.exp_memo_hits += 1;
        } else {
            perf.exp_memo_misses += 1;
        }
        v
    }

    /// The seed the cached buffers were built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Re-keys the cache to `seed`, keeping any still-valid buffers.
    /// Returns the number of materialized buffers retained — nonzero
    /// only when the new owner shares the previous owner's die seed, in
    /// which case every buffer is reusable as-is (they are pure in the
    /// seed). This is the fleet/serve cache-sharing entry point: callers
    /// credit the return value to [`ModelPerf::cache_share_hits`].
    pub fn adopt(&mut self, seed: u64) -> u64 {
        if seed != self.seed {
            self.seed = seed;
            self.clear_buffers();
            return 0;
        }
        (self.cols.len()
            + self.weights.len()
            + self.rows.len()
            + self.sense_th.len()
            + self.flip_rates.len()
            + self.decay.len()) as u64
    }

    /// Stamps the donating chip's full configuration; donations are
    /// only adopted wholesale by a chip with an identical one.
    pub(crate) fn stamp_donor(&mut self, config: ChipConfig) {
        self.donor = Some(config);
    }

    /// Whether this cache was donated by a chip configured exactly as
    /// `config` (same group, seed, geometry, and analog parameters).
    pub(crate) fn donor_is(&self, config: &ChipConfig) -> bool {
        self.donor.as_ref() == Some(config)
    }

    /// Drops every seed-keyed buffer, keeping the pure-math `exp()`
    /// memo (which is valid for any die). Used when a donated cache
    /// crosses a boundary the seed key alone cannot express — a chip
    /// with a fault plan armed, whose stuck/weak-cell statics fold the
    /// plan into the materialized buffers.
    pub fn clear_buffers(&mut self) {
        self.cols.clear();
        self.weights.clear();
        self.rows.clear();
        self.sense_th.clear();
        self.flip_rates.clear();
        self.decay.clear();
    }

    /// Drops every stale buffer if `silicon` belongs to a different die
    /// than the cached one.
    fn sync_seed(&mut self, silicon: &Silicon) {
        let seed = silicon.sampler().seed();
        if seed != self.seed {
            self.adopt(seed);
        }
    }

    /// Builds (on miss) the per-column statics of one sub-array.
    pub fn ensure_cols(
        &mut self,
        silicon: &Silicon,
        perf: &mut ModelPerf,
        bank: usize,
        sub: usize,
        cols: usize,
    ) {
        self.sync_seed(silicon);
        if self.cols.contains_key(&(bank, sub)) {
            perf.cache_hits += 1;
            return;
        }
        perf.cache_misses += 1;
        let mut offset = Vec::with_capacity(cols);
        let mut temp_coeff = Vec::with_capacity(cols);
        let mut anti = Vec::with_capacity(cols);
        let mut halfm_asym = Vec::with_capacity(cols);
        for col in 0..cols {
            offset.push(silicon.sense_offset(bank, sub, col).value());
            temp_coeff.push(silicon.sense_temp_coeff(bank, sub, col));
            anti.push(silicon.is_anti_column(bank, sub, col));
            halfm_asym.push(silicon.halfm_asymmetry(bank, sub, col).value());
        }
        self.cols.insert(
            (bank, sub),
            Box::new(ColStatics {
                offset: offset.into(),
                temp_coeff: temp_coeff.into(),
                anti: anti.into(),
                halfm_asym: halfm_asym.into(),
            }),
        );
    }

    /// The per-column statics of a sub-array; call
    /// [`MaterializeCache::ensure_cols`] first.
    ///
    /// # Panics
    ///
    /// Panics when the buffer has not been ensured.
    pub fn cols(&self, bank: usize, sub: usize) -> &ColStatics {
        self.cols
            .get(&(bank, sub))
            .expect("ensure_cols before cols")
    }

    /// Builds (on miss) the share weights of one activation-role slot.
    pub fn ensure_weights(
        &mut self,
        silicon: &Silicon,
        perf: &mut ModelPerf,
        bank: usize,
        sub: usize,
        slot: usize,
        cols: usize,
    ) {
        self.sync_seed(silicon);
        if self.weights.contains_key(&(bank, sub, slot)) {
            perf.cache_hits += 1;
            return;
        }
        perf.cache_misses += 1;
        let w: Vec<f32> = (0..cols)
            .map(|col| silicon.share_weight(bank, sub, slot, col) as f32)
            .collect();
        self.weights.insert((bank, sub, slot), w.into());
    }

    /// The share weights of one slot; call
    /// [`MaterializeCache::ensure_weights`] first.
    ///
    /// # Panics
    ///
    /// Panics when the buffer has not been ensured.
    pub fn weights(&self, bank: usize, sub: usize, slot: usize) -> &[f32] {
        self.weights
            .get(&(bank, sub, slot))
            .expect("ensure_weights before weights")
    }

    /// Builds (on miss) the per-cell statics of one row.
    pub fn ensure_row(
        &mut self,
        silicon: &Silicon,
        perf: &mut ModelPerf,
        bank: usize,
        sub: usize,
        row: usize,
        cols: usize,
    ) {
        self.sync_seed(silicon);
        if self.rows.contains_key(&(bank, sub, row)) {
            perf.cache_hits += 1;
            return;
        }
        perf.cache_misses += 1;
        let mut cap = Vec::with_capacity(cols);
        let mut tau20 = Vec::with_capacity(cols);
        let mut inject = Vec::with_capacity(cols);
        let mut vrt = Vec::new();
        let mut stuck = Vec::new();
        for col in 0..cols {
            cap.push(silicon.cell_capacitance(bank, sub, row, col).value() as f32);
            tau20.push(silicon.leak_tau(bank, sub, row, col).value() as f32);
            inject.push(silicon.cell_inject(bank, sub, row, col).value());
            if silicon.is_vrt(bank, sub, row, col) {
                vrt.push(col as u32);
            }
            if let Some(rail) = silicon.stuck_at(bank, sub, row, col) {
                stuck.push((col as u32) << 1 | rail as u32);
            }
        }
        self.rows.insert(
            (bank, sub, row),
            Box::new(RowStatics {
                cap: cap.into(),
                tau20: tau20.into(),
                inject: inject.into(),
                vrt: vrt.into(),
                stuck: stuck.into(),
            }),
        );
    }

    /// The per-cell statics of a row; call
    /// [`MaterializeCache::ensure_row`] first.
    ///
    /// # Panics
    ///
    /// Panics when the buffer has not been ensured.
    pub fn row(&self, bank: usize, sub: usize, row: usize) -> &RowStatics {
        self.rows
            .get(&(bank, sub, row))
            .expect("ensure_row before row")
    }

    /// Builds (on miss or environment change) the final per-column sense
    /// comparison thresholds of one sub-array.
    ///
    /// The threshold folds the per-column offset, its temperature
    /// coefficient, the supply coupling, and the anti-cell mirror into
    /// one value, using exactly the expression (and evaluation order)
    /// the sense kernel used per column — so the cached value is
    /// bit-identical to computing it at sense time. The buffer is tagged
    /// with the `(temperature, vdd)` bits it was built under and rebuilt
    /// when either moves (environment-excursion windows), which costs no
    /// more than the per-event evaluation it replaces.
    pub fn ensure_sense_thresholds(
        &mut self,
        silicon: &Silicon,
        perf: &mut ModelPerf,
        bank: usize,
        sub: usize,
        cols: usize,
        env: &Environment,
    ) {
        self.ensure_cols(silicon, perf, bank, sub, cols);
        let temp_bits = env.temperature_c.to_bits();
        let vdd_bits = env.vdd.value().to_bits();
        if let Some(t) = self.sense_th.get(&(bank, sub)) {
            if t.temp_bits == temp_bits && t.vdd_bits == vdd_bits {
                perf.cache_hits += 1;
                return;
            }
        }
        perf.cache_misses += 1;
        let params = silicon.params();
        let statics = self.cols.get(&(bank, sub)).expect("cols just ensured");
        let vdd = env.vdd.value();
        let half = params.half_vdd(env.vdd).value();
        let temp_delta = env.temperature_c - 20.0;
        let vdd_shift = params.sense_vdd_coupling * (vdd - params.vdd_nominal.value());
        let mut th = Vec::with_capacity(cols);
        for col in 0..cols {
            let temp_shift = statics.temp_coeff[col] * temp_delta;
            let true_th = half + statics.offset[col] + temp_shift + vdd_shift;
            th.push(if statics.anti[col] {
                vdd - true_th
            } else {
                true_th
            });
        }
        self.sense_th.insert(
            (bank, sub),
            Box::new(SenseThresholds {
                temp_bits,
                vdd_bits,
                th: th.into(),
            }),
        );
    }

    /// The final sense thresholds of a sub-array; call
    /// [`MaterializeCache::ensure_sense_thresholds`] first.
    ///
    /// # Panics
    ///
    /// Panics when the buffer has not been ensured.
    pub fn sense_thresholds(&self, bank: usize, sub: usize) -> &[f64] {
        &self
            .sense_th
            .get(&(bank, sub))
            .expect("ensure_sense_thresholds before sense_thresholds")
            .th
    }

    /// Builds (on miss) the per-column sense-flip fault rates of one
    /// sub-array. Only meaningful while a fault plan with a positive
    /// flip rate is installed; fault-config changes rebuild the whole
    /// cache, so stale rates cannot survive a plan swap.
    pub fn ensure_flip_rates(
        &mut self,
        silicon: &Silicon,
        perf: &mut ModelPerf,
        bank: usize,
        sub: usize,
        cols: usize,
    ) {
        self.sync_seed(silicon);
        if self.flip_rates.contains_key(&(bank, sub)) {
            perf.cache_hits += 1;
            return;
        }
        perf.cache_misses += 1;
        let plan = silicon.faults().expect("flip rates need a fault plan");
        let rates: Vec<f64> = (0..cols)
            .map(|col| plan.sense_flip_rate(bank, sub, col))
            .collect();
        self.flip_rates.insert((bank, sub), rates.into());
    }

    /// The per-column sense-flip rates of a sub-array; call
    /// [`MaterializeCache::ensure_flip_rates`] first.
    ///
    /// # Panics
    ///
    /// Panics when the buffer has not been ensured.
    pub fn flip_rates(&self, bank: usize, sub: usize) -> &[f64] {
        self.flip_rates
            .get(&(bank, sub))
            .expect("ensure_flip_rates before flip_rates")
    }

    /// Builds (on miss) the decay-factor vector of one row for one
    /// `(dt, scale)` pair: `factor[col] = exp(-dt / (tau20[col] * scale))`,
    /// evaluated through [`fracdram_stats::special::exp_batch`] with the
    /// exact per-column argument expression the leakage kernel used
    /// inline — so `v * factor[col]` is bit-identical to the stepped
    /// form. Event cadences repeat the same `dt` across trials, which
    /// turns a row's whole leakage pass into one cached-vector multiply.
    #[allow(clippy::too_many_arguments)]
    pub fn ensure_decay_factors(
        &mut self,
        silicon: &Silicon,
        perf: &mut ModelPerf,
        bank: usize,
        sub: usize,
        row: usize,
        cols: usize,
        dt: f64,
        scale: f64,
    ) {
        self.ensure_row(silicon, perf, bank, sub, row, cols);
        let key = (bank, sub, row, dt.to_bits(), scale.to_bits());
        if self.decay.contains_key(&key) {
            perf.decay_vec_hits += 1;
            return;
        }
        if self.decay.len() >= DECAY_VEC_CAP {
            self.decay.clear();
        }
        let tau20 = &self
            .rows
            .get(&(bank, sub, row))
            .expect("row just ensured")
            .tau20;
        let mut args = Vec::with_capacity(cols);
        for col in 0..cols {
            // Same argument shape as the stepped leakage kernel: the tau
            // product must stay in exactly this form — hoisting a
            // reciprocal changes the rounding and breaks stdout
            // byte-identity.
            let tau = tau20[col] as f64 * scale;
            args.push(-dt / tau);
        }
        let mut factors = vec![0.0f64; cols];
        fracdram_stats::special::exp_batch(&args, &mut factors);
        perf.exp_batch_calls += 1;
        perf.exp_batch_lanes += cols as u64;
        self.decay.insert(key, factors.into());
    }

    /// The decay-factor vector of a row for one `(dt, scale)` pair; call
    /// [`MaterializeCache::ensure_decay_factors`] first.
    ///
    /// # Panics
    ///
    /// Panics when the buffer has not been ensured.
    pub fn decay_factors(
        &self,
        bank: usize,
        sub: usize,
        row: usize,
        dt: f64,
        scale: f64,
    ) -> &[f64] {
        self.decay
            .get(&(bank, sub, row, dt.to_bits(), scale.to_bits()))
            .expect("ensure_decay_factors before decay_factors")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DeviceParams;
    use crate::vendor::GroupId;

    fn silicon(seed: u64) -> Silicon {
        Silicon::new(seed, DeviceParams::default(), GroupId::B.profile())
    }

    const COLS: usize = 128;

    #[test]
    fn same_seed_rebuilds_identical_buffers() {
        let s = silicon(42);
        let mut perf = ModelPerf::default();
        let mut a = MaterializeCache::new(42);
        let mut b = MaterializeCache::new(42);
        a.ensure_row(&s, &mut perf, 0, 1, 7, COLS);
        b.ensure_row(&s, &mut perf, 0, 1, 7, COLS);
        assert_eq!(a.row(0, 1, 7), b.row(0, 1, 7));
        a.ensure_cols(&s, &mut perf, 0, 1, COLS);
        b.ensure_cols(&s, &mut perf, 0, 1, COLS);
        assert_eq!(a.cols(0, 1), b.cols(0, 1));
        a.ensure_weights(&s, &mut perf, 0, 1, 2, COLS);
        b.ensure_weights(&s, &mut perf, 0, 1, 2, COLS);
        assert_eq!(a.weights(0, 1, 2), b.weights(0, 1, 2));
    }

    #[test]
    fn buffers_match_direct_silicon_calls() {
        let s = silicon(9);
        let mut perf = ModelPerf::default();
        let mut cache = MaterializeCache::new(9);
        cache.ensure_row(&s, &mut perf, 2, 0, 5, COLS);
        cache.ensure_cols(&s, &mut perf, 2, 0, COLS);
        let row = cache.row(2, 0, 5);
        let cols = cache.cols(2, 0);
        for col in 0..COLS {
            assert_eq!(row.inject[col], s.cell_inject(2, 0, 5, col).value());
            assert_eq!(
                row.cap[col],
                s.cell_capacitance(2, 0, 5, col).value() as f32
            );
            assert_eq!(row.tau20[col], s.leak_tau(2, 0, 5, col).value() as f32);
            assert_eq!(cols.offset[col], s.sense_offset(2, 0, col).value());
            assert_eq!(cols.anti[col], s.is_anti_column(2, 0, col));
            assert_eq!(cols.halfm_asym[col], s.halfm_asymmetry(2, 0, col).value());
        }
        assert_eq!(
            row.vrt.iter().map(|&c| c as usize).collect::<Vec<_>>(),
            (0..COLS)
                .filter(|&c| s.is_vrt(2, 0, 5, c))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_produce_different_buffers() {
        let mut perf = ModelPerf::default();
        let mut a = MaterializeCache::new(1);
        let mut b = MaterializeCache::new(2);
        a.ensure_row(&silicon(1), &mut perf, 0, 0, 0, COLS);
        b.ensure_row(&silicon(2), &mut perf, 0, 0, 0, COLS);
        assert_ne!(a.row(0, 0, 0).inject, b.row(0, 0, 0).inject);
        assert_ne!(a.row(0, 0, 0).tau20, b.row(0, 0, 0).tau20);
    }

    #[test]
    fn hit_and_miss_counters_increment() {
        let s = silicon(7);
        let mut perf = ModelPerf::default();
        let mut cache = MaterializeCache::new(7);
        cache.ensure_row(&s, &mut perf, 0, 0, 3, COLS);
        assert_eq!((perf.cache_misses, perf.cache_hits), (1, 0));
        cache.ensure_row(&s, &mut perf, 0, 0, 3, COLS);
        assert_eq!((perf.cache_misses, perf.cache_hits), (1, 1));
        cache.ensure_row(&s, &mut perf, 0, 0, 4, COLS);
        assert_eq!((perf.cache_misses, perf.cache_hits), (2, 1));
        cache.ensure_cols(&s, &mut perf, 0, 0, COLS);
        cache.ensure_cols(&s, &mut perf, 0, 0, COLS);
        assert_eq!((perf.cache_misses, perf.cache_hits), (3, 2));
    }

    #[test]
    fn exp_memo_is_bit_identical_and_counted() {
        let mut perf = ModelPerf::default();
        let cache = MaterializeCache::new(1);
        let xs = [-0.125, -3.5e-4, 0.75, -88.0, 1e-9];
        for &x in &xs {
            assert_eq!(cache.exp(&mut perf, x).to_bits(), x.exp().to_bits());
        }
        assert_eq!((perf.exp_memo_misses, perf.exp_memo_hits), (5, 0));
        for &x in &xs {
            assert_eq!(cache.exp(&mut perf, x).to_bits(), x.exp().to_bits());
        }
        assert_eq!((perf.exp_memo_misses, perf.exp_memo_hits), (5, 5));
    }

    #[test]
    fn stuck_list_matches_fault_plan() {
        use crate::faults::{FaultConfig, FaultPlan};
        let mut s = silicon(31);
        let plan = FaultPlan::new(
            31,
            FaultConfig {
                stuck_density: 0.1,
                ..FaultConfig::none()
            },
        );
        s.set_faults(Some(plan.clone()));
        let mut perf = ModelPerf::default();
        let mut cache = MaterializeCache::new(31);
        cache.ensure_row(&s, &mut perf, 0, 0, 2, COLS);
        let row = cache.row(0, 0, 2);
        let expected: Vec<u32> = (0..COLS)
            .filter_map(|c| {
                plan.stuck_at(0, 0, 2, c)
                    .map(|rail| (c as u32) << 1 | rail as u32)
            })
            .collect();
        assert!(!expected.is_empty(), "no stuck cell at density 0.1");
        assert_eq!(row.stuck.as_ref(), expected.as_slice());
    }

    #[test]
    fn fault_free_rows_have_empty_stuck_list() {
        let mut perf = ModelPerf::default();
        let mut cache = MaterializeCache::new(7);
        cache.ensure_row(&silicon(7), &mut perf, 0, 0, 3, COLS);
        assert!(cache.row(0, 0, 3).stuck.is_empty());
    }

    #[test]
    fn seed_mismatch_drops_stale_buffers() {
        let mut perf = ModelPerf::default();
        let mut cache = MaterializeCache::new(1);
        cache.ensure_row(&silicon(1), &mut perf, 0, 0, 0, COLS);
        let old = cache.row(0, 0, 0).clone();
        // A different die asks the same cache: stale buffers must go.
        cache.ensure_row(&silicon(2), &mut perf, 0, 0, 0, COLS);
        assert_eq!(cache.seed(), 2);
        assert_ne!(*cache.row(0, 0, 0), old);
        assert_eq!(perf.cache_misses, 2);
    }
}
