//! Materialized silicon statics: contiguous per-row / per-column buffers
//! of the pure-hash parameters the event kernels consume.
//!
//! Every static parameter in [`Silicon`] is a pure function of
//! `(chip seed, parameter id, coordinates)` — see
//! [`crate::variation`]. The kernels used to re-derive some of them
//! (notably the per-cell charge-injection offset, a full hash +
//! Box–Muller per column) on **every** event. This cache builds each
//! buffer exactly once per (chip, coordinate) and hands the kernels
//! plain slices:
//!
//! - [`RowStatics`] per (bank, sub-array, row): cell capacitance,
//!   leakage tau at 20 °C, charge-injection offset, VRT column list;
//! - [`ColStatics`] per (bank, sub-array): sense-amplifier offset,
//!   its temperature coefficient, anti-cell polarity, and the Half-m
//!   closure asymmetry;
//! - per-slot multi-row share weights.
//!
//! **Determinism argument.** Caching cannot change any simulated value:
//! the buffers hold the same `f64`/`f32` bit patterns the direct
//! [`Silicon`] calls return (the builders call those very functions),
//! and the stateful temporal-noise RNG is never involved. The cache is
//! keyed off the silicon seed — asking it about a chip with a different
//! seed drops every buffer and rebuilds, so stale statics can never
//! leak across chips. Experiment stdout is byte-identical with or
//! without the cache; only wall time changes.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::perf::ModelPerf;
use crate::silicon::Silicon;
use crate::variation::splitmix64;

/// Single-`u64` hasher for the `exp()` memo table.
///
/// The memo key is one already-well-mixed `f64` bit pattern; the default
/// SipHash would cost more than the `exp()` it saves. A SplitMix finish
/// is enough to spread mantissa-adjacent keys across buckets.
#[derive(Debug, Default, Clone)]
pub struct ExpKeyHasher {
    hash: u64,
}

impl Hasher for ExpKeyHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reached by non-u64 keys; fold bytes in 8 at a time.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.hash = splitmix64(self.hash ^ u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.hash = splitmix64(i);
    }
}

/// Memoized `exp()` entries are evicted wholesale past this size; big
/// retention sweeps generate unbounded distinct exponent arguments.
const EXP_MEMO_CAP: usize = 1 << 20;

/// Static per-cell parameters of one row, as contiguous buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct RowStatics {
    /// Cell capacitance (fF), one entry per column.
    pub cap: Box<[f32]>,
    /// Leakage time constant at 20 °C (seconds), one entry per column.
    pub tau20: Box<[f32]>,
    /// Charge-injection offset (volts), one entry per column.
    pub inject: Box<[f64]>,
    /// Columns whose cell is VRT (sparse, ascending).
    pub vrt: Box<[u32]>,
    /// Stuck-at cells (sparse, ascending), encoded `col << 1 | rail`.
    /// Empty unless a fault plan with a stuck density is installed.
    pub stuck: Box<[u32]>,
}

/// Static per-column parameters of one sub-array, as contiguous buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct ColStatics {
    /// Sense-amplifier input-referred offset (volts).
    pub offset: Box<[f64]>,
    /// Temperature coefficient of the sense offset (V per °C).
    pub temp_coeff: Box<[f64]>,
    /// Whether the column is wired as anti-cells.
    pub anti: Box<[bool]>,
    /// Raw Half-m closure asymmetry (volts), before the metastability
    /// roll-off applied at close time.
    pub halfm_asym: Box<[f64]>,
}

/// Lazy, seed-keyed cache of materialized silicon statics for one chip.
#[derive(Debug, Clone, Default)]
pub struct MaterializeCache {
    seed: u64,
    cols: HashMap<(usize, usize), Box<ColStatics>>,
    weights: HashMap<(usize, usize, usize), Box<[f32]>>,
    rows: HashMap<(usize, usize, usize), Box<RowStatics>>,
    /// `exp(x)` keyed by `x.to_bits()`. Pure math — seed-independent, so
    /// `sync_seed` leaves it alone. Interior mutability lets the leakage
    /// kernel probe it while holding the row-statics borrow.
    exp_memo: RefCell<HashMap<u64, f64, BuildHasherDefault<ExpKeyHasher>>>,
}

impl MaterializeCache {
    /// An empty cache keyed to `seed` (normally the owning chip's die
    /// seed).
    pub fn new(seed: u64) -> Self {
        MaterializeCache {
            seed,
            cols: HashMap::new(),
            weights: HashMap::new(),
            rows: HashMap::new(),
            exp_memo: RefCell::new(HashMap::default()),
        }
    }

    /// Memoized `x.exp()`, keyed by the exact bit pattern of `x` —
    /// bit-identical to calling `exp` directly, with a counter-visible
    /// hit rate. The leakage kernel's exponent arguments repeat exactly
    /// across trials (same `dt`, same materialized `tau`), so the table
    /// converts its dominant cost into a hash probe.
    #[inline]
    pub fn exp(&self, perf: &mut ModelPerf, x: f64) -> f64 {
        let key = x.to_bits();
        let mut memo = self.exp_memo.borrow_mut();
        if let Some(&v) = memo.get(&key) {
            perf.exp_memo_hits += 1;
            return v;
        }
        perf.exp_memo_misses += 1;
        if memo.len() >= EXP_MEMO_CAP {
            memo.clear();
        }
        let v = x.exp();
        memo.insert(key, v);
        v
    }

    /// The seed the cached buffers were built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drops every stale buffer if `silicon` belongs to a different die
    /// than the cached one.
    fn sync_seed(&mut self, silicon: &Silicon) {
        let seed = silicon.sampler().seed();
        if seed != self.seed {
            self.seed = seed;
            self.cols.clear();
            self.weights.clear();
            self.rows.clear();
        }
    }

    /// Builds (on miss) the per-column statics of one sub-array.
    pub fn ensure_cols(
        &mut self,
        silicon: &Silicon,
        perf: &mut ModelPerf,
        bank: usize,
        sub: usize,
        cols: usize,
    ) {
        self.sync_seed(silicon);
        if self.cols.contains_key(&(bank, sub)) {
            perf.cache_hits += 1;
            return;
        }
        perf.cache_misses += 1;
        let mut offset = Vec::with_capacity(cols);
        let mut temp_coeff = Vec::with_capacity(cols);
        let mut anti = Vec::with_capacity(cols);
        let mut halfm_asym = Vec::with_capacity(cols);
        for col in 0..cols {
            offset.push(silicon.sense_offset(bank, sub, col).value());
            temp_coeff.push(silicon.sense_temp_coeff(bank, sub, col));
            anti.push(silicon.is_anti_column(bank, sub, col));
            halfm_asym.push(silicon.halfm_asymmetry(bank, sub, col).value());
        }
        self.cols.insert(
            (bank, sub),
            Box::new(ColStatics {
                offset: offset.into(),
                temp_coeff: temp_coeff.into(),
                anti: anti.into(),
                halfm_asym: halfm_asym.into(),
            }),
        );
    }

    /// The per-column statics of a sub-array; call
    /// [`MaterializeCache::ensure_cols`] first.
    ///
    /// # Panics
    ///
    /// Panics when the buffer has not been ensured.
    pub fn cols(&self, bank: usize, sub: usize) -> &ColStatics {
        self.cols
            .get(&(bank, sub))
            .expect("ensure_cols before cols")
    }

    /// Builds (on miss) the share weights of one activation-role slot.
    pub fn ensure_weights(
        &mut self,
        silicon: &Silicon,
        perf: &mut ModelPerf,
        bank: usize,
        sub: usize,
        slot: usize,
        cols: usize,
    ) {
        self.sync_seed(silicon);
        if self.weights.contains_key(&(bank, sub, slot)) {
            perf.cache_hits += 1;
            return;
        }
        perf.cache_misses += 1;
        let w: Vec<f32> = (0..cols)
            .map(|col| silicon.share_weight(bank, sub, slot, col) as f32)
            .collect();
        self.weights.insert((bank, sub, slot), w.into());
    }

    /// The share weights of one slot; call
    /// [`MaterializeCache::ensure_weights`] first.
    ///
    /// # Panics
    ///
    /// Panics when the buffer has not been ensured.
    pub fn weights(&self, bank: usize, sub: usize, slot: usize) -> &[f32] {
        self.weights
            .get(&(bank, sub, slot))
            .expect("ensure_weights before weights")
    }

    /// Builds (on miss) the per-cell statics of one row.
    pub fn ensure_row(
        &mut self,
        silicon: &Silicon,
        perf: &mut ModelPerf,
        bank: usize,
        sub: usize,
        row: usize,
        cols: usize,
    ) {
        self.sync_seed(silicon);
        if self.rows.contains_key(&(bank, sub, row)) {
            perf.cache_hits += 1;
            return;
        }
        perf.cache_misses += 1;
        let mut cap = Vec::with_capacity(cols);
        let mut tau20 = Vec::with_capacity(cols);
        let mut inject = Vec::with_capacity(cols);
        let mut vrt = Vec::new();
        let mut stuck = Vec::new();
        for col in 0..cols {
            cap.push(silicon.cell_capacitance(bank, sub, row, col).value() as f32);
            tau20.push(silicon.leak_tau(bank, sub, row, col).value() as f32);
            inject.push(silicon.cell_inject(bank, sub, row, col).value());
            if silicon.is_vrt(bank, sub, row, col) {
                vrt.push(col as u32);
            }
            if let Some(rail) = silicon.stuck_at(bank, sub, row, col) {
                stuck.push((col as u32) << 1 | rail as u32);
            }
        }
        self.rows.insert(
            (bank, sub, row),
            Box::new(RowStatics {
                cap: cap.into(),
                tau20: tau20.into(),
                inject: inject.into(),
                vrt: vrt.into(),
                stuck: stuck.into(),
            }),
        );
    }

    /// The per-cell statics of a row; call
    /// [`MaterializeCache::ensure_row`] first.
    ///
    /// # Panics
    ///
    /// Panics when the buffer has not been ensured.
    pub fn row(&self, bank: usize, sub: usize, row: usize) -> &RowStatics {
        self.rows
            .get(&(bank, sub, row))
            .expect("ensure_row before row")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DeviceParams;
    use crate::vendor::GroupId;

    fn silicon(seed: u64) -> Silicon {
        Silicon::new(seed, DeviceParams::default(), GroupId::B.profile())
    }

    const COLS: usize = 128;

    #[test]
    fn same_seed_rebuilds_identical_buffers() {
        let s = silicon(42);
        let mut perf = ModelPerf::default();
        let mut a = MaterializeCache::new(42);
        let mut b = MaterializeCache::new(42);
        a.ensure_row(&s, &mut perf, 0, 1, 7, COLS);
        b.ensure_row(&s, &mut perf, 0, 1, 7, COLS);
        assert_eq!(a.row(0, 1, 7), b.row(0, 1, 7));
        a.ensure_cols(&s, &mut perf, 0, 1, COLS);
        b.ensure_cols(&s, &mut perf, 0, 1, COLS);
        assert_eq!(a.cols(0, 1), b.cols(0, 1));
        a.ensure_weights(&s, &mut perf, 0, 1, 2, COLS);
        b.ensure_weights(&s, &mut perf, 0, 1, 2, COLS);
        assert_eq!(a.weights(0, 1, 2), b.weights(0, 1, 2));
    }

    #[test]
    fn buffers_match_direct_silicon_calls() {
        let s = silicon(9);
        let mut perf = ModelPerf::default();
        let mut cache = MaterializeCache::new(9);
        cache.ensure_row(&s, &mut perf, 2, 0, 5, COLS);
        cache.ensure_cols(&s, &mut perf, 2, 0, COLS);
        let row = cache.row(2, 0, 5);
        let cols = cache.cols(2, 0);
        for col in 0..COLS {
            assert_eq!(row.inject[col], s.cell_inject(2, 0, 5, col).value());
            assert_eq!(
                row.cap[col],
                s.cell_capacitance(2, 0, 5, col).value() as f32
            );
            assert_eq!(row.tau20[col], s.leak_tau(2, 0, 5, col).value() as f32);
            assert_eq!(cols.offset[col], s.sense_offset(2, 0, col).value());
            assert_eq!(cols.anti[col], s.is_anti_column(2, 0, col));
            assert_eq!(cols.halfm_asym[col], s.halfm_asymmetry(2, 0, col).value());
        }
        assert_eq!(
            row.vrt.iter().map(|&c| c as usize).collect::<Vec<_>>(),
            (0..COLS)
                .filter(|&c| s.is_vrt(2, 0, 5, c))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_produce_different_buffers() {
        let mut perf = ModelPerf::default();
        let mut a = MaterializeCache::new(1);
        let mut b = MaterializeCache::new(2);
        a.ensure_row(&silicon(1), &mut perf, 0, 0, 0, COLS);
        b.ensure_row(&silicon(2), &mut perf, 0, 0, 0, COLS);
        assert_ne!(a.row(0, 0, 0).inject, b.row(0, 0, 0).inject);
        assert_ne!(a.row(0, 0, 0).tau20, b.row(0, 0, 0).tau20);
    }

    #[test]
    fn hit_and_miss_counters_increment() {
        let s = silicon(7);
        let mut perf = ModelPerf::default();
        let mut cache = MaterializeCache::new(7);
        cache.ensure_row(&s, &mut perf, 0, 0, 3, COLS);
        assert_eq!((perf.cache_misses, perf.cache_hits), (1, 0));
        cache.ensure_row(&s, &mut perf, 0, 0, 3, COLS);
        assert_eq!((perf.cache_misses, perf.cache_hits), (1, 1));
        cache.ensure_row(&s, &mut perf, 0, 0, 4, COLS);
        assert_eq!((perf.cache_misses, perf.cache_hits), (2, 1));
        cache.ensure_cols(&s, &mut perf, 0, 0, COLS);
        cache.ensure_cols(&s, &mut perf, 0, 0, COLS);
        assert_eq!((perf.cache_misses, perf.cache_hits), (3, 2));
    }

    #[test]
    fn exp_memo_is_bit_identical_and_counted() {
        let mut perf = ModelPerf::default();
        let cache = MaterializeCache::new(1);
        let xs = [-0.125, -3.5e-4, 0.75, -88.0, 1e-9];
        for &x in &xs {
            assert_eq!(cache.exp(&mut perf, x).to_bits(), x.exp().to_bits());
        }
        assert_eq!((perf.exp_memo_misses, perf.exp_memo_hits), (5, 0));
        for &x in &xs {
            assert_eq!(cache.exp(&mut perf, x).to_bits(), x.exp().to_bits());
        }
        assert_eq!((perf.exp_memo_misses, perf.exp_memo_hits), (5, 5));
    }

    #[test]
    fn stuck_list_matches_fault_plan() {
        use crate::faults::{FaultConfig, FaultPlan};
        let mut s = silicon(31);
        let plan = FaultPlan::new(
            31,
            FaultConfig {
                stuck_density: 0.1,
                ..FaultConfig::none()
            },
        );
        s.set_faults(Some(plan.clone()));
        let mut perf = ModelPerf::default();
        let mut cache = MaterializeCache::new(31);
        cache.ensure_row(&s, &mut perf, 0, 0, 2, COLS);
        let row = cache.row(0, 0, 2);
        let expected: Vec<u32> = (0..COLS)
            .filter_map(|c| {
                plan.stuck_at(0, 0, 2, c)
                    .map(|rail| (c as u32) << 1 | rail as u32)
            })
            .collect();
        assert!(!expected.is_empty(), "no stuck cell at density 0.1");
        assert_eq!(row.stuck.as_ref(), expected.as_slice());
    }

    #[test]
    fn fault_free_rows_have_empty_stuck_list() {
        let mut perf = ModelPerf::default();
        let mut cache = MaterializeCache::new(7);
        cache.ensure_row(&silicon(7), &mut perf, 0, 0, 3, COLS);
        assert!(cache.row(0, 0, 3).stuck.is_empty());
    }

    #[test]
    fn seed_mismatch_drops_stale_buffers() {
        let mut perf = ModelPerf::default();
        let mut cache = MaterializeCache::new(1);
        cache.ensure_row(&silicon(1), &mut perf, 0, 0, 0, COLS);
        let old = cache.row(0, 0, 0).clone();
        // A different die asks the same cache: stale buffers must go.
        cache.ensure_row(&silicon(2), &mut perf, 0, 0, 0, COLS);
        assert_eq!(cache.seed(), 2);
        assert_ne!(*cache.row(0, 0, 0), old);
        assert_eq!(perf.cache_misses, 2);
    }
}
