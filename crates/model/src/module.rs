//! A DRAM module (DIMM rank): several chips operated in lock-step.
//!
//! The platform in the paper exercises DDR3 modules whose 64-bit data bus
//! is built from eight x8 chips; an 8 KB module row spreads across all of
//! them in byte lanes. Commands go to every chip simultaneously; data is
//! striped. A single-chip module is also supported (and is what most
//! experiments use — per-chip behavior is what the paper characterizes).

use crate::chip::{Chip, ChipConfig};
use crate::env::Environment;
use crate::error::{ModelError, Result};
use crate::geometry::{Geometry, RowAddr};
use crate::params::DeviceParams;
use crate::snapshot::ModuleWriteSnapshot;
use crate::units::Volts;
use crate::variation::hash_coords;
use crate::vendor::{GroupId, VendorProfile};

/// Width of one data lane in bits (x8 chips).
pub const LANE_BITS: usize = 8;

/// One command of a pre-timed program, with its absolute issue time and
/// (for writes) the payload already split into per-chip slices — the
/// shape [`Module::run_ops`] consumes.
#[derive(Debug, Clone)]
pub enum BroadcastOp {
    /// ACTIVATE on every chip.
    Activate {
        /// Row to open.
        addr: RowAddr,
        /// Issue cycle.
        t: u64,
    },
    /// PRECHARGE on every chip.
    Precharge {
        /// Bank to close.
        bank: usize,
        /// Issue cycle.
        t: u64,
    },
    /// READ the open row on every chip.
    Read {
        /// Bank to read.
        bank: usize,
        /// Issue cycle.
        t: u64,
    },
    /// WRITE a full module row, pre-striped with [`Module::stripe`].
    Write {
        /// Bank to write.
        bank: usize,
        /// One full-width payload per chip.
        per_chip: Vec<Vec<bool>>,
        /// Issue cycle.
        t: u64,
    },
    /// REFRESH a bank on every chip.
    Refresh {
        /// Bank to refresh.
        bank: usize,
        /// Issue cycle.
        t: u64,
    },
    /// No chip work (keeps op indices aligned with program
    /// instructions).
    Nop,
}

/// One chip's read bursts, or the failing `(op index, error)` pair.
type ChipOpsResult = std::result::Result<Vec<Vec<bool>>, (usize, ModelError)>;

/// Runs one chip through a whole op sequence, collecting its read
/// bursts. On failure, returns the op index alongside the error so the
/// module can resolve a deterministic first failure across chips.
fn run_chip_ops(chip: &mut Chip, index: usize, ops: &[BroadcastOp]) -> ChipOpsResult {
    let mut reads = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let outcome = match op {
            BroadcastOp::Activate { addr, t } => chip.activate(*addr, *t),
            BroadcastOp::Precharge { bank, t } => chip.precharge(*bank, *t),
            BroadcastOp::Read { bank, t } => match chip.read(*bank, *t) {
                Ok(bits) => {
                    reads.push(bits);
                    Ok(())
                }
                Err(e) => Err(e),
            },
            BroadcastOp::Write { bank, per_chip, t } => chip.write(*bank, 0, &per_chip[index], *t),
            BroadcastOp::Refresh { bank, t } => chip.refresh(*bank, *t),
            BroadcastOp::Nop => Ok(()),
        };
        if let Err(e) = outcome {
            return Err((i, e));
        }
    }
    Ok(reads)
}

/// Configuration of a module.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleConfig {
    /// Vendor group of all chips on the module.
    pub group: GroupId,
    /// Module seed; each chip derives its own die seed from it.
    pub seed: u64,
    /// Geometry of each chip.
    pub geometry: Geometry,
    /// Number of chips (1 for single-chip studies, 8 for a realistic
    /// 64-bit rank).
    pub chips: usize,
    /// Analog parameters shared by all chips.
    pub params: DeviceParams,
}

impl ModuleConfig {
    /// A single-chip module with default parameters.
    pub fn single_chip(group: GroupId, seed: u64, geometry: Geometry) -> Self {
        ModuleConfig {
            group,
            seed,
            geometry,
            chips: 1,
            params: DeviceParams::default(),
        }
    }

    /// A realistic eight-chip rank with default parameters.
    pub fn rank(group: GroupId, seed: u64, geometry: Geometry) -> Self {
        ModuleConfig {
            group,
            seed,
            geometry,
            chips: 8,
            params: DeviceParams::default(),
        }
    }
}

/// A simulated DRAM module.
#[derive(Debug, Clone)]
pub struct Module {
    config: ModuleConfig,
    chips: Vec<Chip>,
}

impl Module {
    /// Builds a module; chip `i` receives die seed
    /// `hash(module_seed, i)`.
    pub fn new(config: ModuleConfig) -> Self {
        assert!(config.chips >= 1, "a module needs at least one chip");
        let chips = (0..config.chips)
            .map(|i| {
                Chip::new(ChipConfig {
                    group: config.group,
                    seed: hash_coords(&[config.seed, i as u64]),
                    geometry: config.geometry,
                    params: config.params.clone(),
                })
            })
            .collect();
        Module { config, chips }
    }

    /// The module configuration.
    pub fn config(&self) -> &ModuleConfig {
        &self.config
    }

    /// The vendor profile of the module's chips.
    pub fn profile(&self) -> VendorProfile {
        self.config.group.profile()
    }

    /// Per-chip geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.config.geometry
    }

    /// Total row width in bits across all chips.
    pub fn row_bits(&self) -> usize {
        self.config.geometry.columns * self.chips.len()
    }

    /// The chips of the module.
    pub fn chips(&self) -> &[Chip] {
        &self.chips
    }

    /// Mutable access to one chip (test-bench instrumentation).
    pub fn chip_mut(&mut self, index: usize) -> &mut Chip {
        &mut self.chips[index]
    }

    /// Detaches every chip's materialize cache, in chip order — the
    /// fleet/serve sharing hook. See [`Chip::take_cache`].
    pub fn take_caches(&mut self) -> Vec<crate::materialize::MaterializeCache> {
        self.chips.iter_mut().map(Chip::take_cache).collect()
    }

    /// Donation-stamped copies of every chip's materialize cache, in
    /// chip order, without disturbing this module — the serve pool uses
    /// it so a warm die can seed a freshly touched one. See
    /// [`Chip::clone_cache`].
    pub fn clone_caches(&self) -> Vec<crate::materialize::MaterializeCache> {
        self.chips.iter().map(Chip::clone_cache).collect()
    }

    /// Credits cross-bank scheduler activity (recorded onto chip 0, so
    /// [`Module::model_perf`] roll-ups include it exactly once).
    pub fn record_sched(&mut self, merges: u64, overlapped_ticks: u64, fallbacks: u64) {
        self.chips[0].record_sched(merges, overlapped_ticks, fallbacks);
    }

    /// Installs donated caches chip-by-chip (extra donations are
    /// dropped; chips past the donation keep their fresh cache). Each
    /// chip re-keys its donation to its own die seed, so a module
    /// simulating different dies just rebuilds — donated statics can
    /// never leak across dies. See [`Chip::install_cache`].
    pub fn install_caches(&mut self, caches: Vec<crate::materialize::MaterializeCache>) {
        for (chip, cache) in self.chips.iter_mut().zip(caches) {
            chip.install_cache(cache);
        }
    }

    /// Sets the operating environment of every chip.
    pub fn set_environment(&mut self, env: Environment) {
        for chip in &mut self.chips {
            chip.set_environment(env);
        }
    }

    /// Current environment (all chips share it).
    pub fn environment(&self) -> &Environment {
        self.chips[0].environment()
    }

    /// Installs a fault configuration on every chip; each die derives
    /// its own deterministic [`crate::faults::FaultPlan`] from its own
    /// seed. A disabled configuration removes any installed plans.
    pub fn set_fault_config(&mut self, config: &crate::faults::FaultConfig) {
        for chip in &mut self.chips {
            chip.set_fault_config(config);
        }
    }

    /// Whether no chip has an injected excursion window overlapping the
    /// cycle range `[a, b)` — precondition for the write-prefix snapshot
    /// fast path under fault injection.
    pub fn fault_windows_clear(&self, a: u64, b: u64) -> bool {
        self.chips.iter().all(|c| c.fault_windows_clear(a, b))
    }

    /// Whether any chip has an active fault plan installed.
    pub fn faults_enabled(&self) -> bool {
        self.chips.iter().any(|c| c.fault_plan().is_some())
    }

    /// Kernel performance counters summed across every chip.
    pub fn model_perf(&self) -> crate::perf::ModelPerf {
        let mut total = crate::perf::ModelPerf::default();
        for chip in &self.chips {
            total.accumulate(chip.model_perf());
        }
        total
    }

    /// Splits a module-wide row pattern into the per-chip payloads the
    /// byte-lane striping assigns (inverse of the de-striping a module
    /// read performs). `bits` must be a full module row.
    pub fn stripe(&self, bits: &[bool]) -> Vec<Vec<bool>> {
        let chip_cols = self.config.geometry.columns;
        let mut per_chip = vec![vec![false; chip_cols]; self.chips.len()];
        for (col, &bit) in bits.iter().enumerate() {
            let (chip, chip_col) = self.map_column(col);
            per_chip[chip][chip_col] = bit;
        }
        per_chip
    }

    /// Executes a pre-timed command sequence on every chip, returning
    /// the de-striped reads in program order. With `jobs > 1` and more
    /// than one chip, chips run on scoped worker threads — byte-exact
    /// with sequential execution by construction: chips share no
    /// mutable state, and temporal noise is a pure function of each
    /// event's fire time and coordinates, not of cross-chip order.
    ///
    /// # Errors
    ///
    /// Returns the failing op index and error, resolved
    /// deterministically as the lowest `(op index, chip index)` pair
    /// across chips regardless of worker count. After an error the
    /// module state is unspecified (chips may have advanced past the
    /// failing op).
    pub fn run_ops(
        &mut self,
        ops: &[BroadcastOp],
        jobs: usize,
    ) -> std::result::Result<Vec<Vec<bool>>, (usize, ModelError)> {
        let n = self.chips.len();
        let jobs = jobs.clamp(1, n);
        let results: Vec<ChipOpsResult> = if jobs > 1 {
            let chunk = n.div_ceil(jobs);
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .chips
                    .chunks_mut(chunk)
                    .enumerate()
                    .map(|(w, chips)| {
                        s.spawn(move || {
                            chips
                                .iter_mut()
                                .enumerate()
                                .map(|(i, c)| run_chip_ops(c, w * chunk + i, ops))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("chip worker panicked"))
                    .collect()
            })
        } else {
            self.chips
                .iter_mut()
                .enumerate()
                .map(|(i, c)| run_chip_ops(c, i, ops))
                .collect()
        };
        let mut chip_reads: Vec<Vec<Vec<bool>>> = Vec::with_capacity(n);
        let mut first_err: Option<(usize, usize, ModelError)> = None;
        for (chip_idx, r) in results.into_iter().enumerate() {
            match r {
                Ok(reads) => chip_reads.push(reads),
                Err((op_idx, e)) => {
                    if first_err
                        .as_ref()
                        .is_none_or(|(o, c, _)| (op_idx, chip_idx) < (*o, *c))
                    {
                        first_err = Some((op_idx, chip_idx, e));
                    }
                    chip_reads.push(Vec::new());
                }
            }
        }
        if let Some((op_idx, _, e)) = first_err {
            return Err((op_idx, e));
        }
        if n == 1 {
            return Ok(chip_reads.pop().unwrap());
        }
        let width = self.row_bits();
        let count = chip_reads[0].len();
        let mut out = vec![vec![false; width]; count];
        for (r, word) in out.iter_mut().enumerate() {
            for (col, bit) in word.iter_mut().enumerate() {
                let (chip, chip_col) = self.map_column(col);
                *bit = chip_reads[chip][r][chip_col];
            }
        }
        Ok(out)
    }

    /// Maps a module-level column to `(chip index, chip column)` using
    /// byte-lane striping.
    pub fn map_column(&self, col: usize) -> (usize, usize) {
        let n = self.chips.len();
        if n == 1 {
            // Lane math degenerates to the identity for one chip:
            // `(col / L) % 1 == 0` and `(col / L) * L + col % L == col`.
            return (0, col);
        }
        let lane = (col / LANE_BITS) % n;
        let chip_col = (col / (LANE_BITS * n)) * LANE_BITS + col % LANE_BITS;
        (lane, chip_col)
    }

    // ------------------------------------------------------------------
    // Broadcast command interface
    // ------------------------------------------------------------------

    /// ACTIVATE on every chip.
    ///
    /// # Errors
    ///
    /// Propagates address-range errors.
    pub fn activate(&mut self, addr: RowAddr, t: u64) -> Result<()> {
        for chip in &mut self.chips {
            chip.activate(addr, t)?;
        }
        Ok(())
    }

    /// PRECHARGE on every chip.
    ///
    /// # Errors
    ///
    /// Propagates address-range errors.
    pub fn precharge(&mut self, bank: usize, t: u64) -> Result<()> {
        for chip in &mut self.chips {
            chip.precharge(bank, t)?;
        }
        Ok(())
    }

    /// REFRESH a bank on every chip.
    ///
    /// # Errors
    ///
    /// Propagates address-range errors.
    pub fn refresh(&mut self, bank: usize, t: u64) -> Result<()> {
        for chip in &mut self.chips {
            chip.refresh(bank, t)?;
        }
        Ok(())
    }

    /// Reads the full module row (logical bits, byte-lane de-striped).
    ///
    /// # Errors
    ///
    /// Fails if any chip's bank has no sensed open row.
    pub fn read(&mut self, bank: usize, t: u64) -> Result<Vec<bool>> {
        let mut out = Vec::new();
        self.read_into(bank, t, &mut out)?;
        Ok(out)
    }

    /// [`Module::read`] into a caller-provided buffer (cleared and
    /// refilled). Single-chip modules — the serve pool and most
    /// experiments — fill it straight from the chip with no
    /// intermediate allocation; multi-chip modules de-stripe into it.
    ///
    /// # Errors
    ///
    /// Fails if any chip's bank has no sensed open row.
    pub fn read_into(&mut self, bank: usize, t: u64, out: &mut Vec<bool>) -> Result<()> {
        if self.chips.len() == 1 {
            // One chip: the lane interleave is the identity, so the
            // chip's burst already is the module word.
            return self.chips[0].read_into(bank, t, out);
        }
        let per_chip: Vec<Vec<bool>> = self
            .chips
            .iter_mut()
            .map(|c| c.read(bank, t))
            .collect::<Result<_>>()?;
        let width = self.row_bits();
        out.clear();
        out.resize(width, false);
        for (col, bit) in out.iter_mut().enumerate() {
            let (chip, chip_col) = self.map_column(col);
            *bit = per_chip[chip][chip_col];
        }
        Ok(())
    }

    /// Writes a full module row (logical bits).
    ///
    /// # Errors
    ///
    /// Fails if any chip's bank is closed or `bits` has the wrong width.
    pub fn write(&mut self, bank: usize, bits: &[bool], t: u64) -> Result<()> {
        let width = self.row_bits();
        if bits.len() != width {
            return Err(crate::error::ModelError::WidthMismatch {
                got: bits.len(),
                expected: width,
            });
        }
        let per_chip = self.stripe(bits);
        for (chip, data) in self.chips.iter_mut().zip(&per_chip) {
            chip.write(bank, 0, data, t)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Write-prefix snapshot support
    // ------------------------------------------------------------------

    /// Whether a full-row write to sub-array `sub` of `bank` may take
    /// the snapshot fast path: no command-timing guard (guarded groups
    /// resolve their own effective times, so their programs must run
    /// live) and, on every chip, [`Chip::write_fastpath_ready`] — the
    /// target sub-array free to drain anything pending (a live ACTIVATE
    /// would fire the same events at the same fire times, and noise is
    /// keyed on fire time), siblings at most waiting on word-line
    /// closes, which have no analog outcome.
    pub fn write_fastpath_eligible(&self, bank: usize, sub: usize) -> bool {
        !self.profile().timing_guard && self.chips.iter().all(|c| c.write_fastpath_ready(bank, sub))
    }

    /// Fires pending events up to `t` in `bank` on every chip.
    pub fn drain_bank(&mut self, bank: usize, t: u64) {
        for chip in &mut self.chips {
            chip.drain_bank(bank, t);
        }
    }

    /// Whether `bank` is fully idle on every chip.
    pub fn bank_idle(&self, bank: usize) -> bool {
        self.chips.iter().all(|c| c.bank_idle(bank))
    }

    /// Captures the write-prefix state of `(bank, sub, local row)` on
    /// every chip, relative to `anchor`.
    pub fn capture_write_snapshot(
        &mut self,
        bank: usize,
        sub: usize,
        local_row: usize,
        anchor: u64,
    ) -> ModuleWriteSnapshot {
        let env = *self.environment();
        let states = self
            .chips
            .iter_mut()
            .map(|c| c.capture_subarray(bank, sub, &[local_row], anchor))
            .collect();
        ModuleWriteSnapshot { states, env }
    }

    /// Restores a captured write prefix at `anchor`: reimposes the
    /// captured sub-array state and overwrites the written row with the
    /// (possibly different) logical pattern `bits` at time `t_write` —
    /// byte-identical to replaying the captured write program with
    /// `bits` as payload. No noise bookkeeping is needed: temporal noise
    /// is a pure function of each event's fire time and coordinates, and
    /// the restored program's suffix events fire at the same absolute
    /// cycles as a live replay would.
    ///
    /// # Errors
    ///
    /// Fails if `bits` has the wrong width.
    pub fn restore_write_snapshot(
        &mut self,
        snap: &ModuleWriteSnapshot,
        anchor: u64,
        bits: &[bool],
        t_write: u64,
    ) -> Result<()> {
        let width = self.row_bits();
        if bits.len() != width {
            return Err(crate::error::ModelError::WidthMismatch {
                got: bits.len(),
                expected: width,
            });
        }
        let per_chip = self.stripe(bits);
        for (i, chip) in self.chips.iter_mut().enumerate() {
            let state = &snap.states[i];
            chip.restore_subarray(state, anchor);
            chip.rewrite_row(state.bank(), state.index(), &per_chip[i], t_write);
        }
        Ok(())
    }

    /// Captures the state of `(bank, sub)` for an arbitrary row set on
    /// every chip, relative to `anchor` — the multi-row generalization
    /// of [`Module::capture_write_snapshot`] (the TRNG refill prefix
    /// touches its four seed rows plus the activation quad).
    pub fn capture_rows_snapshot(
        &mut self,
        bank: usize,
        sub: usize,
        rows: &[usize],
        anchor: u64,
    ) -> ModuleWriteSnapshot {
        let env = *self.environment();
        let states = self
            .chips
            .iter_mut()
            .map(|c| c.capture_subarray(bank, sub, rows, anchor))
            .collect();
        ModuleWriteSnapshot { states, env }
    }

    /// Reimposes a [`Module::capture_rows_snapshot`] at `anchor`
    /// verbatim — no rewrite step, for prefixes whose data is a
    /// constant of the capture (the TRNG's seed-row refill).
    pub fn restore_rows_snapshot(&mut self, snap: &ModuleWriteSnapshot, anchor: u64) {
        for (chip, state) in self.chips.iter_mut().zip(&snap.states) {
            chip.restore_subarray(state, anchor);
        }
    }

    /// Direct view of one cell's voltage (module column addressing).
    pub fn probe_cell_voltage(&mut self, addr: RowAddr, col: usize, t: u64) -> Volts {
        let (chip, chip_col) = self.map_column(col);
        self.chips[chip].probe_cell_voltage(addr, chip_col, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(chips: usize) -> Module {
        Module::new(ModuleConfig {
            group: GroupId::B,
            seed: 99,
            geometry: Geometry::tiny(),
            chips,
            params: DeviceParams::default(),
        })
    }

    #[test]
    fn column_mapping_is_a_bijection() {
        let m = module(8);
        let width = m.row_bits();
        let mut seen = vec![false; width];
        for col in 0..width {
            let (chip, chip_col) = m.map_column(col);
            let flat = chip * m.geometry().columns + chip_col;
            assert!(!seen[flat], "collision at module col {col}");
            seen[flat] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_chip_mapping_is_identity() {
        let m = module(1);
        for col in 0..m.row_bits() {
            assert_eq!(m.map_column(col), (0, col));
        }
    }

    #[test]
    fn module_roundtrip() {
        let mut m = module(8);
        let width = m.row_bits();
        let pattern: Vec<bool> = (0..width).map(|i| (i * 13) % 7 < 3).collect();
        let addr = RowAddr::new(0, 4);
        m.activate(addr, 100).unwrap();
        m.write(0, &pattern, 110).unwrap();
        m.precharge(0, 120).unwrap();
        m.activate(addr, 150).unwrap();
        let bits = m.read(0, 160).unwrap();
        m.precharge(0, 170).unwrap();
        assert_eq!(bits, pattern);
    }

    #[test]
    fn chips_on_same_module_are_distinct_dies() {
        let m = module(2);
        let a = m.chips()[0].silicon().sense_offset(0, 0, 0);
        let b = m.chips()[1].silicon().sense_offset(0, 0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn different_modules_are_distinct() {
        let m1 = Module::new(ModuleConfig::single_chip(GroupId::B, 1, Geometry::tiny()));
        let m2 = Module::new(ModuleConfig::single_chip(GroupId::B, 2, Geometry::tiny()));
        assert_ne!(
            m1.chips()[0].silicon().sense_offset(0, 0, 0),
            m2.chips()[0].silicon().sense_offset(0, 0, 0)
        );
    }

    #[test]
    fn run_ops_parallel_matches_sequential() {
        let addr = RowAddr::new(0, 4);
        let mut seq = module(8);
        let mut par = seq.clone();
        let width = seq.row_bits();
        let pattern: Vec<bool> = (0..width).map(|i| (i * 13) % 7 < 3).collect();
        let ops = vec![
            BroadcastOp::Activate { addr, t: 100 },
            BroadcastOp::Write {
                bank: 0,
                per_chip: seq.stripe(&pattern),
                t: 110,
            },
            BroadcastOp::Precharge { bank: 0, t: 120 },
            BroadcastOp::Nop,
            // An out-of-spec Frac, so charge actually diverges from the
            // rails and analog noise matters.
            BroadcastOp::Activate { addr, t: 150 },
            BroadcastOp::Precharge { bank: 0, t: 151 },
            BroadcastOp::Activate { addr, t: 300 },
            BroadcastOp::Read { bank: 0, t: 310 },
            BroadcastOp::Precharge { bank: 0, t: 320 },
        ];
        let a = seq.run_ops(&ops, 1).unwrap();
        let b = par.run_ops(&ops, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        for col in [0, 9, 100, width - 1] {
            assert_eq!(
                seq.probe_cell_voltage(addr, col, 5_000),
                par.probe_cell_voltage(addr, col, 5_000),
                "col {col}"
            );
        }
        // Event/draw counts must match exactly; wall-time counters
        // legitimately differ between runs.
        let strip_ns = |mut p: crate::perf::ModelPerf| {
            p.share_ns = 0;
            p.sense_ns = 0;
            p.close_ns = 0;
            p.leak_ns = 0;
            p.noise_ns = 0;
            p
        };
        assert_eq!(strip_ns(seq.model_perf()), strip_ns(par.model_perf()));
    }

    #[test]
    fn run_ops_reports_lowest_failing_op() {
        let mut m = module(2);
        let ops = vec![
            BroadcastOp::Activate {
                addr: RowAddr::new(0, 0),
                t: 100,
            },
            // Bank 9 does not exist: every chip fails at op 1.
            BroadcastOp::Read { bank: 9, t: 110 },
        ];
        let (op_idx, err) = m.run_ops(&ops, 2).unwrap_err();
        assert_eq!(op_idx, 1);
        assert!(matches!(err, ModelError::BankOutOfRange { .. }));
    }

    #[test]
    fn write_width_checked() {
        let mut m = module(2);
        let addr = RowAddr::new(0, 0);
        m.activate(addr, 10).unwrap();
        assert!(m.write(0, &[true; 3], 20).is_err());
    }

    #[test]
    fn rank_config_has_eight_chips() {
        let m = Module::new(ModuleConfig::rank(GroupId::C, 5, Geometry::tiny()));
        assert_eq!(m.chips().len(), 8);
        assert_eq!(m.row_bits(), 8 * Geometry::tiny().columns);
    }
}
