//! Cell-level charge dynamics: storage, leakage, and retention math.
//!
//! A DRAM cell is a capacitor; its voltage occupies the full continuum
//! between ground and `Vdd` — the "grey part" the paper exploits. This
//! module provides the pure functions the sub-array state machine uses to
//! evolve cell voltages over time.

use crate::units::{Seconds, Volts};

/// Exponential charge decay: a cell at voltage `v` decays toward ground
/// with time constant `tau` over duration `dt`.
///
/// Leakage is monotonic — the foundation of the paper's retention-time
/// verification method (§IV-B1): "the higher the initial voltage is, the
/// longer the retention time will be".
pub fn decay(v: Volts, dt: Seconds, tau: Seconds) -> Volts {
    if dt.value() <= 0.0 || v.value() == 0.0 {
        return v;
    }
    Volts(v.value() * (-dt.value() / tau.value()).exp())
}

/// Time for a cell starting at `v0` to decay below `threshold`:
/// `tau * ln(v0 / threshold)`. Returns zero when the cell already reads
/// below the threshold — the paper's "zero retention time" bucket.
pub fn retention_time(v0: Volts, threshold: Volts, tau: Seconds) -> Seconds {
    if v0.value() <= threshold.value() {
        return Seconds(0.0);
    }
    Seconds(tau.value() * (v0.value() / threshold.value()).ln())
}

/// One charge-sharing step between a cell and a bit-line, with partial
/// settling: the cell moves `settle_fraction` of the way to the bit-line
/// voltage. A full (uninterrupted) activation uses `settle_fraction = 1`;
/// the interrupted activations of Frac/Half-m use the much smaller value
/// from [`DeviceParams::interrupted_settle`].
///
/// [`DeviceParams::interrupted_settle`]: crate::params::DeviceParams::interrupted_settle
pub fn settle_toward(cell: Volts, bitline: Volts, settle_fraction: f64) -> Volts {
    Volts(cell.value() + settle_fraction * (bitline.value() - cell.value()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_is_monotonic_in_time() {
        let v0 = Volts(1.5);
        let tau = Seconds::from_hours(10.0);
        let mut prev = v0;
        for h in 1..20 {
            let v = decay(v0, Seconds::from_hours(h as f64), tau);
            assert!(v < prev);
            assert!(v.value() > 0.0);
            prev = v;
        }
    }

    #[test]
    fn decay_zero_dt_is_identity() {
        let v = Volts(0.9);
        assert_eq!(decay(v, Seconds(0.0), Seconds(100.0)), v);
    }

    #[test]
    fn higher_voltage_longer_retention() {
        let tau = Seconds::from_hours(5.0);
        let th = Volts(0.75);
        let t_full = retention_time(Volts(1.5), th, tau);
        let t_frac = retention_time(Volts(0.9), th, tau);
        assert!(t_full > t_frac);
        assert!(t_frac.value() > 0.0);
    }

    #[test]
    fn below_threshold_is_zero_retention() {
        let t = retention_time(Volts(0.7), Volts(0.75), Seconds::from_hours(5.0));
        assert_eq!(t, Seconds(0.0));
    }

    #[test]
    fn retention_matches_decay() {
        // decay(v0, retention_time) lands exactly on the threshold.
        let v0 = Volts(1.5);
        let th = Volts(0.6);
        let tau = Seconds::from_hours(3.0);
        let t = retention_time(v0, th, tau);
        let v = decay(v0, t, tau);
        assert!((v.value() - th.value()).abs() < 1e-9);
    }

    #[test]
    fn settle_full_reaches_bitline() {
        let v = settle_toward(Volts(1.5), Volts(0.75), 1.0);
        assert_eq!(v, Volts(0.75));
    }

    #[test]
    fn settle_partial_moves_proportionally() {
        let v = settle_toward(Volts(1.5), Volts(0.75), 0.35);
        assert!((v.value() - (1.5 + 0.35 * (0.75 - 1.5))).abs() < 1e-12);
        // Direction is correct from below, too.
        let up = settle_toward(Volts(0.0), Volts(0.75), 0.35);
        assert!((up.value() - 0.2625).abs() < 1e-12);
    }
}
