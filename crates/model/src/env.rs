//! Operating environment: temperature and supply voltage.
//!
//! The paper evaluates the Frac-PUF at a reduced supply voltage (1.4 V vs
//! the nominal 1.5 V) and at elevated temperatures (Fig. 12). The
//! environment is a property of the *test bench*, not the chip, so it can
//! be changed between operations on the same simulated module.

use crate::units::Volts;

/// Ambient conditions the DRAM module operates under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    /// Die temperature in degrees Celsius.
    pub temperature_c: f64,
    /// Supply voltage.
    pub vdd: Volts,
}

impl Environment {
    /// Room temperature (20 °C, per the paper) at the nominal DDR3 supply
    /// voltage of 1.5 V.
    pub fn nominal() -> Self {
        Environment {
            temperature_c: 20.0,
            vdd: Volts(1.5),
        }
    }

    /// Same temperature, different supply voltage.
    pub fn with_vdd(self, vdd: Volts) -> Self {
        Environment { vdd, ..self }
    }

    /// Same supply voltage, different temperature.
    pub fn with_temperature(self, temperature_c: f64) -> Self {
        Environment {
            temperature_c,
            ..self
        }
    }

    /// Multiplicative factor applied to leakage time constants at this
    /// temperature: leakage roughly doubles every `halving_celsius`
    /// degrees above the 20 °C reference.
    pub fn leakage_tau_scale(&self, halving_celsius: f64) -> f64 {
        2f64.powf(-(self.temperature_c - 20.0) / halving_celsius)
    }
}

impl Default for Environment {
    fn default() -> Self {
        Environment::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_matches_paper_setup() {
        let e = Environment::nominal();
        assert_eq!(e.temperature_c, 20.0);
        assert_eq!(e.vdd, Volts(1.5));
    }

    #[test]
    fn builders_replace_one_field() {
        let e = Environment::nominal()
            .with_vdd(Volts(1.4))
            .with_temperature(60.0);
        assert_eq!(e.vdd, Volts(1.4));
        assert_eq!(e.temperature_c, 60.0);
    }

    #[test]
    fn hotter_leaks_faster() {
        let cold = Environment::nominal();
        let hot = cold.with_temperature(40.0);
        assert_eq!(cold.leakage_tau_scale(10.0), 1.0);
        // +20 °C with a 10 °C halving period: tau shrinks 4x.
        assert!((hot.leakage_tau_scale(10.0) - 0.25).abs() < 1e-12);
    }
}
