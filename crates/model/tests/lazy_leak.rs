//! Exactness guarantees of the lazy closed-form leakage path and the
//! donor-stamped materialize-cache sharing.
//!
//! The lazy `leak_row` kernel evaluates each row's decay at its next
//! touch through a cached per-`(row, dt, scale)` factor vector instead
//! of stepping per event. Exactness rests on two claims, each pinned
//! here as a bit-identity property:
//!
//! 1. the cached factor vector holds exactly the scalar
//!    `(-dt / (tau20[col] * scale)).exp()` the stepped kernel computed
//!    inline (no hoisted reciprocals, no batch-vs-scalar drift), and
//! 2. donating a warm cache to another controller of the *same*
//!    [`fracdram_model::ChipConfig`] never changes any simulated value,
//!    while donating across configs (different seed, different device
//!    parameters, or an armed fault plan) never leaks stale statics.

use fracdram_model::silicon::Silicon;
use fracdram_model::{
    DeviceParams, Environment, FaultConfig, Geometry, GroupId, MaterializeCache, ModelPerf, Module,
    ModuleConfig, RowAddr, Volts,
};

#[test]
fn decay_factor_vectors_match_inline_scalar_exp() {
    let cols = 64;
    for seed in [1u64, 7, 0xFEED] {
        for group in [GroupId::B, GroupId::C] {
            let silicon = Silicon::new(seed, DeviceParams::default(), group.profile());
            let mut cache = MaterializeCache::new(seed);
            let mut perf = ModelPerf::default();
            for (bank, sub, row) in [(0usize, 0usize, 0usize), (1, 2, 31)] {
                // dt spans refresh-interval-scale waits down to
                // single-command gaps; scale covers nominal and
                // excursion-window temperature accelerations.
                for dt in [1.0e-6, 3.2e-3, 64.0e-3, 512.0e-3] {
                    for scale in [1.0f64, 0.514, 2.375] {
                        cache.ensure_decay_factors(
                            &silicon, &mut perf, bank, sub, row, cols, dt, scale,
                        );
                        let factors = cache.decay_factors(bank, sub, row, dt, scale).to_vec();
                        let tau20 = cache.row(bank, sub, row).tau20.clone();
                        for col in 0..cols {
                            let inline = (-dt / (tau20[col] as f64 * scale)).exp();
                            assert_eq!(
                                factors[col].to_bits(),
                                inline.to_bits(),
                                "seed {seed} {group} ({bank},{sub},{row}) col {col} \
                                 dt {dt} scale {scale}: {} != {inline}",
                                factors[col],
                            );
                        }
                    }
                }
            }
            assert!(perf.exp_batch_calls > 0);
            assert_eq!(perf.exp_batch_lanes, perf.exp_batch_calls * cols as u64);
        }
    }
}

/// Drives a seeded write/retire/read-back pattern with long retention
/// waits (so leakage decays measurably) and returns every observable:
/// read-back rows and probed cell voltages.
fn drive(module: &mut Module, pattern_seed: u64) -> (Vec<Vec<bool>>, Vec<Volts>) {
    let width = module.row_bits();
    let mut reads = Vec::new();
    let mut volts = Vec::new();
    let mut t = 1_000u64;
    for round in 0..4u64 {
        let addr = RowAddr::new((round % 2) as usize, (3 + round) as usize);
        let pattern: Vec<bool> = (0..width as u64)
            .map(|i| (i * 13 + pattern_seed + round) % 7 < 3)
            .collect();
        module.activate(addr, t).unwrap();
        module.write(addr.bank, &pattern, t + 10).unwrap();
        module.precharge(addr.bank, t + 20).unwrap();
        t += 40_000_000 * (round + 1);
        module.activate(addr, t).unwrap();
        reads.push(module.read(addr.bank, t + 10).unwrap());
        module.precharge(addr.bank, t + 20).unwrap();
        volts.push(module.probe_cell_voltage(addr, round as usize, t + 30));
        t += 1_000;
    }
    (reads, volts)
}

#[test]
fn donated_caches_do_not_change_module_behavior() {
    // (fault plan armed, temperature) variants: nominal, faulty
    // silicon, and a hot environment (different leak scale).
    for (fault, temp) in [(false, 20.0), (true, 20.0), (false, 45.0)] {
        let cfg = ModuleConfig::single_chip(GroupId::B, 77, Geometry::tiny());
        let make = || {
            let mut m = Module::new(cfg.clone());
            m.set_environment(Environment {
                temperature_c: temp,
                vdd: Volts(1.5),
            });
            if fault {
                m.set_fault_config(&FaultConfig {
                    stuck_density: 0.01,
                    weak_density: 0.05,
                    ..FaultConfig::none()
                });
            }
            m
        };
        let mut warmup = make();
        let baseline = drive(&mut warmup, 5);
        let caches = warmup.take_caches();

        let mut donated = make();
        donated.install_caches(caches);
        assert_eq!(
            drive(&mut donated, 5),
            baseline,
            "fault={fault} temp={temp}: warm-donated run diverged from cold"
        );
        if !fault {
            assert!(
                donated.model_perf().cache_share_hits > 0,
                "same-config donation should credit share hits"
            );
        }

        let mut cold = make();
        assert_eq!(drive(&mut cold, 5), baseline);
    }
}

#[test]
fn mismatched_donor_caches_are_cleared_not_reused() {
    let geometry = Geometry::tiny();

    // Different die seed: stale buffers must not cross.
    let mut a = Module::new(ModuleConfig::single_chip(GroupId::B, 1, geometry));
    drive(&mut a, 9);
    let mut donated = Module::new(ModuleConfig::single_chip(GroupId::B, 2, geometry));
    donated.install_caches(a.take_caches());
    assert_eq!(donated.model_perf().cache_share_hits, 0);
    let mut cold = Module::new(ModuleConfig::single_chip(GroupId::B, 2, geometry));
    assert_eq!(drive(&mut donated, 9), drive(&mut cold, 9));

    // Same seed, different device parameters (the ablation sweep
    // shape): full-config donor stamping must reject the donation even
    // though the seed matches.
    let mut tweaked = DeviceParams::default();
    tweaked.cell_cap_rel_sigma *= 2.0;
    let base_cfg = ModuleConfig::single_chip(GroupId::B, 3, geometry);
    let tweaked_cfg = ModuleConfig {
        params: tweaked,
        ..base_cfg.clone()
    };
    let mut base = Module::new(base_cfg);
    drive(&mut base, 4);
    let mut donated = Module::new(tweaked_cfg.clone());
    donated.install_caches(base.take_caches());
    assert_eq!(donated.model_perf().cache_share_hits, 0);
    let mut cold = Module::new(tweaked_cfg);
    assert_eq!(drive(&mut donated, 4), drive(&mut cold, 4));
}
