//! End-to-end tests of the daemon over real loopback TCP: replay
//! determinism, concurrent-vs-serial equivalence, fault degradation,
//! and queue backpressure.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use fracdram_experiments::Json;
use fracdram_serve::{run_replay, start, ServeConfig, ServerHandle};

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        assert!(!response.is_empty(), "server closed mid-request");
        response.trim_end().to_string()
    }
}

fn small_cfg() -> ServeConfig {
    ServeConfig {
        dies: 4,
        shards: 2,
        ..ServeConfig::default()
    }
}

/// The mixed per-client workload both halves of the equivalence tests
/// drive: TRNG, Frac writes, copies, reads, PUF evaluation, enrollment
/// and verification, all on the client's own die.
fn workload(die: usize, requests: usize) -> Vec<String> {
    (0..requests)
        .map(|i| match i % 7 {
            0 => format!(r#"{{"op":"trng","die":{die},"bits":32}}"#),
            1 => format!(
                r#"{{"op":"write","die":{die},"bank":1,"row":{},"fill":{},"frac":{}}}"#,
                3 + i % 16,
                i % 2 == 0,
                i % 3
            ),
            2 => format!(
                r#"{{"op":"read","die":{die},"bank":1,"row":{}}}"#,
                3 + i % 16
            ),
            3 => format!(
                r#"{{"op":"puf","die":{die},"bank":1,"row":{}}}"#,
                40 + i % 20
            ),
            4 => format!(
                r#"{{"op":"copy","die":{die},"bank":1,"src":{},"dst":{}}}"#,
                3 + i % 16,
                20 + i % 4
            ),
            5 => format!(r#"{{"op":"enroll","die":{die},"bank":1,"row":44,"reps":3}}"#),
            _ => format!(r#"{{"op":"verify","die":{die},"bank":1,"row":44}}"#),
        })
        .collect()
}

#[test]
fn replayed_request_log_reproduces_responses_byte_for_byte() {
    let cfg = small_cfg();
    let handle = start(cfg.clone()).expect("start server");
    // Three clients race on two dies, so live arrival order on each die
    // is genuinely nondeterministic; the canonical log pins it down.
    let workers: Vec<_> = (0..3)
        .map(|c| {
            let mut client = Client::connect(&handle);
            let lines = workload(c % 2, 21);
            std::thread::spawn(move || {
                for line in &lines {
                    let response = client.send(line);
                    assert!(response.contains("\"ok\":true"), "failed: {response}");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client panicked");
    }
    handle.stop();
    let report = handle.join();
    assert_eq!(report.processed, 63);
    assert_eq!(report.shed, 0);
    assert_eq!(
        report.request_log.lines().count(),
        report.response_log.lines().count()
    );

    let replayed = run_replay(&cfg, &report.request_log).expect("replay");
    assert_eq!(
        replayed, report.response_log,
        "replayed response log must be byte-identical"
    );
}

#[test]
fn concurrent_clients_match_single_client_ground_truth() {
    let cfg = small_cfg();
    let per_client = 14;

    // Ground truth: one client drains each die's workload serially.
    let serial = start(cfg.clone()).expect("start serial server");
    {
        let mut client = Client::connect(&serial);
        for die in 0..cfg.dies {
            for line in workload(die, per_client) {
                client.send(&line);
            }
        }
    }
    serial.stop();
    let serial_report = serial.join();

    // Same per-die request streams, now from racing client threads.
    let concurrent = start(cfg.clone()).expect("start concurrent server");
    let workers: Vec<_> = (0..cfg.dies)
        .map(|die| {
            let mut client = Client::connect(&concurrent);
            let lines = workload(die, per_client);
            std::thread::spawn(move || {
                for line in &lines {
                    client.send(line);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client panicked");
    }
    concurrent.stop();
    let concurrent_report = concurrent.join();

    assert_eq!(concurrent_report.response_log, serial_report.response_log);
    assert_eq!(concurrent_report.request_log, serial_report.request_log);
}

#[test]
fn die_marked_bad_mid_stream_remaps_without_losing_requests() {
    let cfg = ServeConfig {
        dies: 2,
        shards: 1,
        ..ServeConfig::default()
    };
    let handle = start(cfg.clone()).expect("start server");
    let mut client = Client::connect(&handle);

    let enroll = r#"{"op":"enroll","die":0,"bank":1,"row":44,"reps":3}"#;
    let verify = r#"{"op":"verify","die":0,"bank":1,"row":44}"#;
    let doc = Json::parse(&client.send(enroll)).unwrap();
    assert_eq!(doc.get("cached").unwrap().as_bool(), Some(false));
    let doc = Json::parse(&client.send(verify)).unwrap();
    assert_eq!(doc.get("match").unwrap().as_bool(), Some(true));
    assert_eq!(doc.get("gen").unwrap().as_usize(), Some(0));

    // Degrade the die mid-stream while traffic continues.
    let mut responses = Vec::new();
    for i in 0..12 {
        if i == 4 {
            let doc = Json::parse(&client.send(r#"{"op":"mark-bad","die":0}"#)).unwrap();
            assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
            responses.push(doc);
        }
        let line = format!(
            r#"{{"op":"write","die":0,"bank":1,"row":{},"fill":true,"frac":1}}"#,
            3 + i
        );
        responses.push(Json::parse(&client.send(&line)).unwrap());
    }
    for doc in &responses {
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true), "lost: {doc}");
    }
    let last_gen = responses.last().unwrap().get("gen").unwrap().as_usize();
    assert_eq!(
        last_gen,
        Some(1),
        "traffic after mark-bad runs on fresh silicon"
    );

    // The remap cleared the enrollment cache: verify reports
    // un-enrolled (not an error), and re-enrolling works.
    let doc = Json::parse(&client.send(verify)).unwrap();
    assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(doc.get("enrolled").unwrap().as_bool(), Some(false));
    let doc = Json::parse(&client.send(enroll)).unwrap();
    assert_eq!(doc.get("cached").unwrap().as_bool(), Some(false));
    let doc = Json::parse(&client.send(verify)).unwrap();
    assert_eq!(doc.get("match").unwrap().as_bool(), Some(true));

    // Status reports the remap.
    let status = Json::parse(&client.send(r#"{"op":"status"}"#)).unwrap();
    let Some(Json::Arr(remaps)) = status.get("remaps") else {
        panic!("status has no remaps array: {status}");
    };
    assert_eq!(remaps.len(), 1);
    assert_eq!(remaps[0].get("die").unwrap().as_usize(), Some(0));
    assert_eq!(remaps[0].get("gen").unwrap().as_usize(), Some(1));

    drop(client);
    handle.stop();
    let report = handle.join();
    assert_eq!(report.shed, 0);
    // And the whole degraded run replays byte-for-byte.
    let replayed = run_replay(&cfg, &report.request_log).expect("replay");
    assert_eq!(replayed, report.response_log);
}

#[test]
fn shutdown_completes_while_a_client_sits_idle() {
    // Connection threads poll the shutdown flag on a short read
    // timeout, so a client that connects and then goes silent must not
    // block the drain. Without the polling loop this test hangs.
    let handle = start(small_cfg()).expect("start server");
    let mut busy = Client::connect(&handle);
    let _idle = Client::connect(&handle);

    let response = busy.send(r#"{"op":"read","die":0,"bank":1,"row":3}"#);
    assert!(response.contains("\"ok\":true"));
    let status = Json::parse(&busy.send(r#"{"op":"status"}"#)).unwrap();
    assert_eq!(
        status.get("io_timeout_ms").and_then(Json::as_usize),
        Some(30_000),
        "status must surface the connection I/O timeout"
    );
    assert_eq!(
        status.get("deadline_ms").and_then(Json::as_usize),
        Some(5_000),
        "status must surface the request deadline"
    );

    handle.stop();
    let start_join = std::time::Instant::now();
    let report = handle.join();
    assert!(
        start_join.elapsed() < std::time::Duration::from_secs(5),
        "idle connection stalled the drain for {:?}",
        start_join.elapsed()
    );
    // Only the die-routed read goes through a shard; status is answered
    // at the connection layer.
    assert_eq!(report.processed, 1);
}

#[test]
fn idle_connections_are_closed_after_the_io_timeout() {
    let cfg = ServeConfig {
        dies: 2,
        shards: 1,
        io_timeout_ms: 150,
        ..ServeConfig::default()
    };
    let handle = start(cfg).expect("start server");
    let mut client = Client::connect(&handle);
    let response = client.send(r#"{"op":"read","die":0,"bank":1,"row":3}"#);
    assert!(response.contains("\"ok\":true"));

    // Go silent past the timeout: the server must hang up on us.
    std::thread::sleep(std::time::Duration::from_millis(600));
    let mut line = String::new();
    let got = client.reader.read_line(&mut line).expect("read after idle");
    assert_eq!(got, 0, "server must close an idle connection, got {line:?}");

    handle.stop();
    handle.join();
}

#[test]
fn deadline_zero_disables_deadline_shedding() {
    // --deadline-ms 0 means "no deadline", not "a 0 ms deadline": a
    // request that waits in a shard queue arbitrarily long must still
    // execute rather than shed with 503.
    let cfg = ServeConfig {
        dies: 1,
        shards: 1,
        deadline_ms: 0,
        ..ServeConfig::default()
    };
    let handle = start(cfg).expect("start server");

    // Occupy the only shard, then queue a read behind the stall so it
    // ages ~200 ms before its drain — far past any accidental 1 ms
    // floor.
    let stall_client = Client::connect(&handle);
    let staller = std::thread::spawn(move || {
        let mut client = stall_client;
        client.send(r#"{"op":"stall","die":0,"millis":300}"#)
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mut client = Client::connect(&handle);
    let response = client.send(r#"{"op":"read","die":0,"bank":1,"row":3}"#);
    assert!(
        response.contains("\"ok\":true"),
        "aged request must execute with deadlines disabled: {response}"
    );
    assert!(staller.join().expect("staller").contains("\"ok\":true"));

    let status = Json::parse(&client.send(r#"{"op":"status"}"#)).unwrap();
    assert_eq!(status.get("deadline_ms").and_then(Json::as_usize), Some(0));
    assert_eq!(
        status.get("deadline_shed").and_then(Json::as_usize),
        Some(0)
    );

    handle.stop();
    let report = handle.join();
    assert_eq!(report.shed, 0);
}

#[test]
fn invalid_utf8_line_gets_400_not_disconnect() {
    // A request line that is not valid UTF-8 is a client error, not a
    // transport failure: the server answers 400 and keeps the
    // connection serving.
    let handle = start(small_cfg()).expect("start server");
    let mut client = Client::connect(&handle);
    client
        .writer
        .write_all(b"\xff\xfe\xfd{\"op\":\"status\"}\n")
        .expect("send invalid UTF-8");
    let mut response = String::new();
    client.reader.read_line(&mut response).expect("receive");
    let doc = Json::parse(response.trim_end()).expect("400 must still be JSON");
    assert_eq!(doc.get("code").and_then(Json::as_usize), Some(400));

    // A multi-byte sequence split across the server's 50 ms read
    // timeout must survive intact (bytes, not UTF-8 prefixes, carry
    // across timeouts) — the reassembled line parses as one request.
    client
        .writer
        .write_all("{\"op\":\"read\",\"die\":0,\"bank\":1,\"row\":3}".as_bytes())
        .expect("send first half");
    let split = "é".as_bytes(); // 2-byte UTF-8 sequence
    client
        .writer
        .write_all(&split[..1])
        .expect("send half char");
    std::thread::sleep(std::time::Duration::from_millis(120));
    client
        .writer
        .write_all(&split[1..])
        .expect("send other half");
    client.writer.write_all(b"\n").expect("send newline");
    let mut response = String::new();
    client.reader.read_line(&mut response).expect("receive");
    assert!(
        response.contains("400"),
        "trailing é makes the JSON malformed, but the line must arrive \
         whole as one request: {response}"
    );

    // And the connection still works.
    let response = client.send(r#"{"op":"read","die":0,"bank":1,"row":3}"#);
    assert!(response.contains("\"ok\":true"), "{response}");

    handle.stop();
    handle.join();
}

#[test]
fn full_queue_sheds_with_503_instead_of_blocking() {
    let cfg = ServeConfig {
        dies: 1,
        shards: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    };
    let handle = start(cfg).expect("start server");

    // Occupy the only shard for a while...
    let stall_handleref = Client::connect(&handle);
    let staller = std::thread::spawn(move || {
        let mut client = stall_handleref;
        client.send(r#"{"op":"stall","die":0,"millis":400}"#)
    });
    std::thread::sleep(std::time::Duration::from_millis(100));

    // ...then flood it from ten connections at once. With a queue bound
    // of 1, most of them must be shed immediately with a 503.
    let floods: Vec<_> = (0..10)
        .map(|_| {
            let mut client = Client::connect(&handle);
            std::thread::spawn(move || client.send(r#"{"op":"read","die":0,"bank":0,"row":0}"#))
        })
        .collect();
    let mut shed = 0;
    let mut served = 0;
    for flood in floods {
        let response = flood.join().expect("flood client panicked");
        let doc = Json::parse(&response).unwrap();
        if doc.get("code").and_then(Json::as_usize) == Some(503) {
            shed += 1;
        } else {
            assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
            served += 1;
        }
    }
    assert!(shed >= 1, "queue bound 1 must shed under a 10-deep flood");
    assert!(served >= 1, "queued requests still drain");
    let stalled = staller.join().expect("staller panicked");
    assert!(stalled.contains("\"ok\":true"));

    handle.stop();
    let report = handle.join();
    assert_eq!(report.shed, shed);
}
