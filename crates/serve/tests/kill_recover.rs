//! Kill→recover durability, end to end against the real daemon binary:
//! a mixed workload is driven over loopback TCP, the process is
//! hard-killed (SIGKILL — no drain, no WAL seal) mid-workload, a fresh
//! process is restarted on the same `--wal-dir`, and the remainder of
//! the workload plus a full read-back sweep must match an uninterrupted
//! control run byte-for-byte. Acknowledge-after-log is the invariant
//! under test: every response the client saw before the kill must be
//! reconstructed from the journal alone.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

const SERVE_BIN: &str = env!("CARGO_BIN_EXE_fracdram-serve");
const DIES: usize = 3;
const WORKLOAD: usize = 60;

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns the real daemon binary and parses the listen address off
    /// its stderr banner. Remaining stderr drains in a background
    /// thread so a chatty shutdown can never fill the pipe.
    fn spawn(wal_dir: Option<&std::path::Path>) -> Daemon {
        let mut cmd = Command::new(SERVE_BIN);
        cmd.args([
            "--port", "0", "--dies", "3", "--shards", "2", "--cols", "64",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
        if let Some(dir) = wal_dir {
            cmd.arg("--wal-dir").arg(dir);
        }
        let mut child = cmd.spawn().expect("spawn fracdram-serve");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut reader = BufReader::new(stderr);
        let mut addr = None;
        let mut line = String::new();
        while reader.read_line(&mut line).expect("read daemon stderr") > 0 {
            if let Some(rest) = line.split("listening on ").nth(1) {
                addr = rest.split_whitespace().next().map(str::to_string);
                break;
            }
            line.clear();
        }
        let addr = addr.expect("daemon never printed its listen address");
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let _ = reader.read_to_end(&mut sink);
        });
        Daemon { child, addr }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    /// Hard stop: SIGKILL, no drain, no WAL seal.
    fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
    }

    /// Graceful stop via the shutdown op.
    fn shutdown(mut self) {
        let mut client = self.connect();
        let response = client.send(r#"{"op":"shutdown"}"#);
        assert!(
            response.contains("\"ok\":true"),
            "shutdown failed: {response}"
        );
        self.child.wait().expect("reap daemon");
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn send(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        assert!(!response.is_empty(), "server closed mid-request");
        response.trim_end().to_string()
    }
}

/// The mixed workload: writes, reads, copies, enrollment, verification
/// and TRNG draws interleaved across all three dies, so the journal
/// carries every state-mutating op class plus clock-advancing reads.
fn request_line(index: usize) -> String {
    let die = index % DIES;
    match (index / DIES) % 6 {
        0 => format!(
            r#"{{"op":"write","die":{die},"bank":1,"row":{},"fill":{},"frac":{}}}"#,
            3 + index % 16,
            index.is_multiple_of(2),
            index % 3
        ),
        1 => format!(
            r#"{{"op":"read","die":{die},"bank":1,"row":{}}}"#,
            3 + index % 16
        ),
        2 => format!(r#"{{"op":"enroll","die":{die},"bank":1,"row":44,"reps":2}}"#),
        3 => format!(r#"{{"op":"verify","die":{die},"bank":1,"row":44}}"#),
        4 => format!(
            r#"{{"op":"copy","die":{die},"bank":1,"src":{},"dst":{}}}"#,
            3 + index % 16,
            20 + index % 4
        ),
        _ => format!(r#"{{"op":"trng","die":{die},"bits":64}}"#),
    }
}

/// Reads back every row the workload touched plus the enrollment, on
/// every die. Byte-equality of two sweeps implies the die states (and
/// per-die clocks, via the `seq` field) are identical.
fn sweep(client: &mut Client) -> String {
    let mut out = String::new();
    for die in 0..DIES {
        for row in (3usize..19).chain(20..24) {
            let line = format!(r#"{{"op":"read","die":{die},"bank":1,"row":{row}}}"#);
            out.push_str(&client.send(&line));
            out.push('\n');
        }
        let line = format!(r#"{{"op":"verify","die":{die},"bank":1,"row":44}}"#);
        out.push_str(&client.send(&line));
        out.push('\n');
    }
    out
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fracdram-kill-recover-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkilled_daemon_recovers_every_acked_request() {
    let wal_dir = temp_dir("wal");
    let kill_at = 23;

    // Phase 1: drive the first part of the workload, then SIGKILL the
    // process. Every request below was acknowledged, so by the
    // acknowledge-after-log contract every one is fsynced in the WAL.
    let daemon = Daemon::spawn(Some(&wal_dir));
    let mut acked = Vec::new();
    {
        let mut client = daemon.connect();
        for index in 0..kill_at {
            let response = client.send(&request_line(index));
            assert!(response.contains("\"ok\":true"), "failed: {response}");
            acked.push(response);
        }
    }
    daemon.kill();

    // The journal is unsealed; an offline recovery dump must be stable
    // across invocations and carry exactly the acked responses.
    let dump_a = recover_dump(&wal_dir);
    let dump_b = recover_dump(&wal_dir);
    assert_eq!(dump_a, dump_b, "recovery dump must be deterministic");
    let dumped: BTreeSet<&str> = dump_a.lines().collect();
    let acked_set: BTreeSet<&str> = acked.iter().map(String::as_str).collect();
    assert_eq!(
        dumped, acked_set,
        "recovered responses must be exactly the acknowledged ones"
    );

    // Phase 2: restart on the same WAL dir and finish the workload.
    let daemon = Daemon::spawn(Some(&wal_dir));
    let interrupted_sweep;
    {
        let mut client = daemon.connect();
        let status = client.send(r#"{"op":"status"}"#);
        assert!(
            status.contains(&format!("\"recovered\":{kill_at}")),
            "status must report {kill_at} recovered entries: {status}"
        );
        for index in kill_at..WORKLOAD {
            let response = client.send(&request_line(index));
            assert!(response.contains("\"ok\":true"), "failed: {response}");
        }
        interrupted_sweep = sweep(&mut client);
    }
    daemon.shutdown();

    // Control: the same workload, uninterrupted, in one process.
    let daemon = Daemon::spawn(None);
    let control_sweep;
    {
        let mut client = daemon.connect();
        for index in 0..WORKLOAD {
            let response = client.send(&request_line(index));
            assert!(response.contains("\"ok\":true"), "failed: {response}");
        }
        control_sweep = sweep(&mut client);
    }
    daemon.shutdown();

    assert_eq!(
        interrupted_sweep, control_sweep,
        "kill→recover run must end in the same state as the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Runs `fracdram-serve --recover-dump` offline and returns the
/// recovered response log.
fn recover_dump(wal_dir: &std::path::Path) -> String {
    let output = Command::new(SERVE_BIN)
        .args(["--dies", "3", "--shards", "2", "--cols", "64"])
        .arg("--recover-dump")
        .arg(wal_dir)
        .output()
        .expect("run --recover-dump");
    assert!(
        output.status.success(),
        "--recover-dump failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 dump")
}

#[test]
fn graceful_shutdown_seals_the_wal() {
    let wal_dir = temp_dir("sealed");
    let daemon = Daemon::spawn(Some(&wal_dir));
    {
        let mut client = daemon.connect();
        for index in 0..12 {
            let response = client.send(&request_line(index));
            assert!(response.contains("\"ok\":true"), "failed: {response}");
        }
    }
    daemon.shutdown();

    // Every shard journal must now carry a seal line.
    for shard in 0..2 {
        let path = wal_dir.join(format!("wal-shard-{shard}.log"));
        let text = std::fs::read_to_string(&path).expect("read sealed journal");
        let last = text.lines().last().unwrap_or_default();
        assert!(
            last.starts_with("S "),
            "{} must end with a seal line, got {last:?}",
            path.display()
        );
    }
    // And a restart reports a clean (sealed) recovery of all 12 entries.
    let daemon = Daemon::spawn(Some(&wal_dir));
    {
        let mut client = daemon.connect();
        let status = client.send(r#"{"op":"status"}"#);
        assert!(
            status.contains("\"recovered\":12"),
            "sealed journal must recover all 12 entries: {status}"
        );
    }
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
}
