//! Pins the daemon's replay output to a committed golden: the default
//! pool config must answer the recorded mixed request log (TRNG, PUF
//! enroll/verify across a remap, fault injection, Frac storage, and
//! validation errors) byte-for-byte the same on every host and at any
//! thread count. Regenerate with
//! `cargo run --release -p fracdram-experiments --bin regen-goldens`.

use fracdram_serve::{run_replay, ServeConfig};

const REQUESTS: &str = include_str!("golden/replay_requests.log");
const RESPONSES: &str = include_str!("golden/replay_responses.log");

#[test]
fn replay_matches_committed_golden() {
    let replayed = run_replay(&ServeConfig::default(), REQUESTS).expect("replay");
    assert_eq!(
        replayed, RESPONSES,
        "server replay diverged from the committed golden \
         (crates/serve/tests/golden/replay_responses.log)"
    );
}
