//! Pins the chaos-mode replay to a committed golden: with a fixed
//! chaos seed and die-failure density, the injected failures, remap
//! generation bumps, circuit-breaker trips, open-state 503 rejections
//! and half-open probes must land on exactly the same requests on
//! every host and at any thread count — the `ChaosPlan` is a pure
//! function of `(seed, config)` and each injection is keyed by
//! `(die, seq)`. Regenerate with
//! `cargo run --release -p fracdram-experiments --bin regen-goldens`.

use fracdram_serve::{run_replay, BreakerConfig, ChaosConfig, ChaosSpec, ServeConfig};

const REQUESTS: &str = include_str!("golden/chaos_requests.log");
const RESPONSES: &str = include_str!("golden/chaos_responses.log");

fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        breaker: BreakerConfig { trip: 1, open: 3 },
        chaos: Some(ChaosSpec {
            seed: 11,
            config: ChaosConfig {
                die_fail: 0.2,
                ..ChaosConfig::none()
            },
        }),
        ..ServeConfig::default()
    }
}

#[test]
fn chaos_replay_matches_committed_golden() {
    let replayed = run_replay(&chaos_cfg(), REQUESTS).expect("replay");
    assert_eq!(
        replayed, RESPONSES,
        "chaos replay diverged from the committed golden \
         (crates/serve/tests/golden/chaos_responses.log)"
    );
}

#[test]
fn chaos_golden_shows_the_full_breaker_lifecycle() {
    // Guard against regenerating the golden into something inert: it
    // must contain open-state rejections, post-remap generations, and
    // at least one die (die 3) the plan leaves untouched.
    let rejections = RESPONSES
        .lines()
        .filter(|l| l.contains("circuit breaker open"))
        .count();
    assert!(rejections >= 3, "golden lost its breaker rejections");
    assert!(RESPONSES.contains("\"gen\":2"), "golden lost its remaps");
    let die3_clean = RESPONSES
        .lines()
        .filter(|l| l.contains("\"die\":3"))
        .all(|l| l.contains("\"ok\":true"));
    assert!(die3_clean, "die 3 must stay failure-free at this seed");
}
