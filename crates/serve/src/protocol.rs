//! The wire protocol of `fracdram-serve`.
//!
//! One request per line, one response per line, both JSON objects. A
//! request names its operation with an `"op"` field and addresses a die
//! with `"die"`; everything else is per-operation. Responses always
//! carry `"ok"`, the echoed `"op"`, and — for die-routed operations —
//! `"die"`, `"seq"` (the per-die sequence number the server assigned)
//! and `"gen"` (the generation of the die that served it, which bumps
//! on every remap). Failures carry `"code"` (HTTP-flavored: `400`
//! malformed, `500` execution failure, `503` shed) and `"error"`.
//!
//! Canonicalization: [`Request::canonical`] re-serializes a parsed
//! request from its typed form, so the recorded request log is
//! independent of client-side key order and whitespace. Replaying a
//! canonical log therefore reproduces the response log byte for byte
//! (see DESIGN.md §"FracDRAM as a service").

use fracdram_experiments::Json;
use fracdram_stats::bits::BitVec;

/// Default PUF enrollment repetitions when the request omits `"reps"`.
pub const DEFAULT_ENROLL_REPS: usize = 3;
/// Default authentication threshold when `"verify"` omits it.
pub const DEFAULT_VERIFY_THRESHOLD: f64 = 0.15;
/// Default Frac operation count for `"write"` requests with `"frac": true`.
pub const DEFAULT_FRAC_OPS: usize = 2;

/// Payload of a `"write"` request: either a fill bit replicated across
/// the row, or explicit row data as hex nibbles (MSB-first within each
/// nibble, nibble 0 covering columns 0–3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WritePayload {
    /// Every column gets this bit.
    Fill(bool),
    /// Explicit bits, 4 per hex character.
    Hex(String),
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Draw `bits` whitened TRNG bits from `die`.
    Trng {
        /// Target die.
        die: usize,
        /// Number of extracted bits requested.
        bits: usize,
    },
    /// Evaluate the Frac-PUF challenge `(bank, row)` on `die`.
    Puf {
        /// Target die.
        die: usize,
        /// Challenge bank.
        bank: usize,
        /// Challenge row.
        row: usize,
    },
    /// Enroll the challenge `(bank, row)`: capture a majority-of-`reps`
    /// signature into the die's seed-keyed enrollment cache.
    Enroll {
        /// Target die.
        die: usize,
        /// Challenge bank.
        bank: usize,
        /// Challenge row.
        row: usize,
        /// Majority repetitions for the captured signature.
        reps: usize,
    },
    /// Re-evaluate the challenge and authenticate against the enrolled
    /// signature.
    Verify {
        /// Target die.
        die: usize,
        /// Challenge bank.
        bank: usize,
        /// Challenge row.
        row: usize,
        /// Maximum fractional Hamming distance accepted as a match.
        threshold: f64,
    },
    /// Store a row, optionally driving it fractional afterwards.
    Write {
        /// Target die.
        die: usize,
        /// Target bank.
        bank: usize,
        /// Target row.
        row: usize,
        /// Row contents.
        payload: WritePayload,
        /// Number of Frac operations to apply after the write (0 = a
        /// plain rail-value store).
        frac: usize,
    },
    /// In-array row copy (same bank and sub-array).
    Copy {
        /// Target die.
        die: usize,
        /// Bank holding both rows.
        bank: usize,
        /// Source row.
        src: usize,
        /// Destination row.
        dst: usize,
    },
    /// Read a row back.
    Read {
        /// Target die.
        die: usize,
        /// Target bank.
        bank: usize,
        /// Target row.
        row: usize,
    },
    /// Arm fault injection on `die` at the given stuck-cell density
    /// (weak cells at twice, sense flips at half the density).
    Fault {
        /// Target die.
        die: usize,
        /// Stuck-cell density; 0 disarms.
        density: f64,
    },
    /// Administratively mark `die` bad: drain, remap to a fresh healthy
    /// die (generation bump), report via `"status"`.
    MarkBad {
        /// Target die.
        die: usize,
    },
    /// Hold the die's shard for `millis` (live servers only; replay
    /// skips the sleep). Exists so tests can force queue backpressure.
    Stall {
        /// Target die.
        die: usize,
        /// Milliseconds to hold the shard thread.
        millis: u64,
    },
    /// Server status snapshot (answered out-of-band, never queued).
    Status,
    /// Ask the server to stop accepting connections and drain.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the line is not a JSON
    /// object, names no/an unknown `"op"`, or is missing a field.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line)?;
        if !matches!(doc, Json::Obj(_)) {
            return Err("request must be a JSON object".to_string());
        }
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"op\"".to_string())?;
        let req = match op {
            "trng" => Request::Trng {
                die: need_usize(&doc, "die")?,
                bits: opt_usize(&doc, "bits", 64)?,
            },
            "puf" => Request::Puf {
                die: need_usize(&doc, "die")?,
                bank: need_usize(&doc, "bank")?,
                row: need_usize(&doc, "row")?,
            },
            "enroll" => Request::Enroll {
                die: need_usize(&doc, "die")?,
                bank: need_usize(&doc, "bank")?,
                row: need_usize(&doc, "row")?,
                reps: opt_usize(&doc, "reps", DEFAULT_ENROLL_REPS)?,
            },
            "verify" => Request::Verify {
                die: need_usize(&doc, "die")?,
                bank: need_usize(&doc, "bank")?,
                row: need_usize(&doc, "row")?,
                threshold: opt_f64(&doc, "threshold", DEFAULT_VERIFY_THRESHOLD)?,
            },
            "write" => {
                let payload = match (doc.get("data"), doc.get("fill")) {
                    (Some(data), _) => {
                        let hex = data
                            .as_str()
                            .ok_or_else(|| "\"data\" must be a hex string".to_string())?;
                        if hex.is_empty() || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                            return Err("\"data\" must be non-empty hex".to_string());
                        }
                        WritePayload::Hex(hex.to_ascii_lowercase())
                    }
                    (None, Some(fill)) => WritePayload::Fill(
                        fill.as_bool()
                            .ok_or_else(|| "\"fill\" must be a bool".to_string())?,
                    ),
                    (None, None) => {
                        return Err("\"write\" needs \"data\" (hex) or \"fill\" (bool)".to_string())
                    }
                };
                Request::Write {
                    die: need_usize(&doc, "die")?,
                    bank: need_usize(&doc, "bank")?,
                    row: need_usize(&doc, "row")?,
                    payload,
                    frac: opt_usize(&doc, "frac", 0)?,
                }
            }
            "copy" => Request::Copy {
                die: need_usize(&doc, "die")?,
                bank: need_usize(&doc, "bank")?,
                src: need_usize(&doc, "src")?,
                dst: need_usize(&doc, "dst")?,
            },
            "read" => Request::Read {
                die: need_usize(&doc, "die")?,
                bank: need_usize(&doc, "bank")?,
                row: need_usize(&doc, "row")?,
            },
            "fault" => Request::Fault {
                die: need_usize(&doc, "die")?,
                density: opt_f64(&doc, "density", 0.02)?,
            },
            "mark-bad" => Request::MarkBad {
                die: need_usize(&doc, "die")?,
            },
            "stall" => Request::Stall {
                die: need_usize(&doc, "die")?,
                millis: opt_usize(&doc, "millis", 50)? as u64,
            },
            "status" => Request::Status,
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok(req)
    }

    /// The die this request is routed to, or `None` for the
    /// out-of-band operations (`status`, `shutdown`).
    pub fn die(&self) -> Option<usize> {
        match *self {
            Request::Trng { die, .. }
            | Request::Puf { die, .. }
            | Request::Enroll { die, .. }
            | Request::Verify { die, .. }
            | Request::Write { die, .. }
            | Request::Copy { die, .. }
            | Request::Read { die, .. }
            | Request::Fault { die, .. }
            | Request::MarkBad { die }
            | Request::Stall { die, .. } => Some(die),
            Request::Status | Request::Shutdown => None,
        }
    }

    /// The operation name, as it appears on the wire.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Trng { .. } => "trng",
            Request::Puf { .. } => "puf",
            Request::Enroll { .. } => "enroll",
            Request::Verify { .. } => "verify",
            Request::Write { .. } => "write",
            Request::Copy { .. } => "copy",
            Request::Read { .. } => "read",
            Request::Fault { .. } => "fault",
            Request::MarkBad { .. } => "mark-bad",
            Request::Stall { .. } => "stall",
            Request::Status => "status",
            Request::Shutdown => "shutdown",
        }
    }

    /// Whether the operation mutates state a restarted daemon must
    /// reconstruct: stored rows (`write`/`copy`), the enrollment cache
    /// (`enroll`), or die control state (`fault`/`mark-bad`). Note the
    /// WAL journals a *superset* of these — every die-routed op — since
    /// in this simulator even reads advance the die's controller clock
    /// and consume a seq, so the full per-die sequence is what replays
    /// state exactly (see DESIGN.md §"Crash-safe durability").
    pub fn is_state_mutating(&self) -> bool {
        matches!(
            self,
            Request::Write { .. }
                | Request::Copy { .. }
                | Request::Enroll { .. }
                | Request::Fault { .. }
                | Request::MarkBad { .. }
        )
    }

    /// Canonical single-line serialization: fixed key order, every
    /// default made explicit. Two requests that parse equal
    /// canonicalize identically, regardless of how the client spelled
    /// them.
    pub fn canonical(&self) -> String {
        let doc = Json::obj().field("op", self.op());
        let doc = match self {
            Request::Trng { die, bits } => doc.field("die", *die).field("bits", *bits),
            Request::Puf { die, bank, row } => doc
                .field("die", *die)
                .field("bank", *bank)
                .field("row", *row),
            Request::Enroll {
                die,
                bank,
                row,
                reps,
            } => doc
                .field("die", *die)
                .field("bank", *bank)
                .field("row", *row)
                .field("reps", *reps),
            Request::Verify {
                die,
                bank,
                row,
                threshold,
            } => doc
                .field("die", *die)
                .field("bank", *bank)
                .field("row", *row)
                .field("threshold", *threshold),
            Request::Write {
                die,
                bank,
                row,
                payload,
                frac,
            } => {
                let doc = doc
                    .field("die", *die)
                    .field("bank", *bank)
                    .field("row", *row);
                let doc = match payload {
                    WritePayload::Fill(bit) => doc.field("fill", *bit),
                    WritePayload::Hex(hex) => doc.field("data", hex.as_str()),
                };
                doc.field("frac", *frac)
            }
            Request::Copy {
                die,
                bank,
                src,
                dst,
            } => doc
                .field("die", *die)
                .field("bank", *bank)
                .field("src", *src)
                .field("dst", *dst),
            Request::Read { die, bank, row } => doc
                .field("die", *die)
                .field("bank", *bank)
                .field("row", *row),
            Request::Fault { die, density } => doc.field("die", *die).field("density", *density),
            Request::MarkBad { die } => doc.field("die", *die),
            Request::Stall { die, millis } => {
                doc.field("die", *die).field("millis", *millis as usize)
            }
            Request::Status | Request::Shutdown => doc,
        };
        doc.to_string()
    }
}

fn need_usize(doc: &Json, key: &str) -> Result<usize, String> {
    doc.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

fn opt_usize(doc: &Json, key: &str, default: usize) -> Result<usize, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

fn opt_f64(doc: &Json, key: &str, default: f64) -> Result<f64, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

/// Packs bits into lowercase hex, 4 bits per character, bit 0 as the
/// most significant bit of nibble 0. A trailing partial nibble is
/// zero-padded.
pub fn bits_to_hex(bits: &BitVec) -> String {
    let mut out = String::with_capacity(bits.len().div_ceil(4));
    for chunk_start in (0..bits.len()).step_by(4) {
        let mut nibble = 0u8;
        for offset in 0..4 {
            nibble <<= 1;
            if bits.get(chunk_start + offset) == Some(true) {
                nibble |= 1;
            }
        }
        out.push(char::from_digit(nibble as u32, 16).unwrap());
    }
    out
}

/// Inverse of [`bits_to_hex`]: expands each hex character into 4 bits.
///
/// # Errors
///
/// Returns a message naming the first non-hex character.
pub fn hex_to_bits(hex: &str) -> Result<Vec<bool>, String> {
    let mut out = Vec::with_capacity(hex.len() * 4);
    for ch in hex.chars() {
        let nibble = ch
            .to_digit(16)
            .ok_or_else(|| format!("invalid hex character {ch:?}"))?;
        for shift in (0..4).rev() {
            out.push(nibble >> shift & 1 == 1);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_canonicalize_is_key_order_independent() {
        let a = Request::parse(r#"{"op":"puf","die":3,"bank":1,"row":40}"#).unwrap();
        let b = Request::parse(r#"{ "row": 40, "die": 3, "op": "puf", "bank": 1 }"#).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), r#"{"op":"puf","die":3,"bank":1,"row":40}"#);
    }

    #[test]
    fn canonical_makes_defaults_explicit() {
        let req = Request::parse(r#"{"op":"trng","die":0}"#).unwrap();
        assert_eq!(req.canonical(), r#"{"op":"trng","die":0,"bits":64}"#);
        // A canonical line re-parses to the same request (idempotent).
        let again = Request::parse(&req.canonical()).unwrap();
        assert_eq!(req, again);
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"die":0}"#).is_err());
        assert!(Request::parse(r#"{"op":"warp","die":0}"#).is_err());
        assert!(Request::parse(r#"{"op":"puf","die":0}"#).is_err());
        assert!(Request::parse(r#"{"op":"write","die":0,"bank":0,"row":1}"#).is_err());
        assert!(Request::parse(r#"{"op":"write","die":0,"bank":0,"row":1,"data":"zz"}"#).is_err());
    }

    #[test]
    fn hex_round_trips() {
        let bits = BitVec::from_bools(&[
            true, false, true, true, false, false, false, true, true, true, true, true,
        ]);
        let hex = bits_to_hex(&bits);
        assert_eq!(hex, "b1f");
        assert_eq!(hex_to_bits(&hex).unwrap(), bits.to_bools());
    }
}
