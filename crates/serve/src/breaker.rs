//! A per-die circuit breaker layered over the PR 6 remap path.
//!
//! The remap path already replaces a die that fails under a request —
//! but a die that fails *persistently* (armed faults past the limit,
//! chaos injection, genuinely bad silicon) would otherwise burn a full
//! device-level attempt + remap on every request. The breaker tracks a
//! consecutive-failure health score per die **id** (surviving remaps,
//! which is the point: the id keeps failing across generations) and,
//! once tripped, rejects requests up front with a `503` until a
//! deterministic half-open probe readmits the id.
//!
//! State machine:
//!
//! ```text
//! Closed --[trip consecutive failures]--> Open(open_after)
//! Open   --[open_after rejections]------> HalfOpen
//! HalfOpen --[probe succeeds]-----------> Closed   (breaker_closes +1)
//! HalfOpen --[probe fails]--------------> Open(open_after)
//! any    --[mark-bad]-------------------> Closed   (operator reset)
//! ```
//!
//! Everything advances on the die's own request sequence — rejections
//! consume a seq and are WAL-logged like any other response — so the
//! breaker is replay-deterministic: recovery replays the same request
//! stream and lands every breaker in the same phase. No wall-clock
//! cool-down, deliberately: time-based reopening would make recovery
//! depend on timing, which is exactly what the replay contract forbids.

/// Trip/reopen thresholds, pinned in the WAL fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive die-level failures that trip the breaker.
    pub trip: u32,
    /// Requests rejected while open before the next one probes.
    pub open: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { trip: 3, open: 4 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Closed,
    Open { remaining: u32 },
    HalfOpen,
}

/// What [`Breaker::admit`] decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: execute normally.
    Pass,
    /// Breaker half-open: execute as the probe that decides readmission.
    Probe,
    /// Breaker open: reject with `503` without touching the die.
    Reject,
}

/// One die id's breaker state.
#[derive(Debug, Clone, Copy)]
pub struct Breaker {
    cfg: BreakerConfig,
    phase: Phase,
    score: u32,
}

impl Breaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            phase: Phase::Closed,
            score: 0,
        }
    }

    /// Gate for the next request on this die. An `Open` breaker counts
    /// the rejection down toward its half-open probe.
    pub fn admit(&mut self) -> Admission {
        match self.phase {
            Phase::Closed => Admission::Pass,
            Phase::HalfOpen => Admission::Probe,
            Phase::Open { remaining } => {
                if remaining <= 1 {
                    self.phase = Phase::HalfOpen;
                } else {
                    self.phase = Phase::Open {
                        remaining: remaining - 1,
                    };
                }
                Admission::Reject
            }
        }
    }

    /// Notes a die-level failure on an admitted request. Returns `true`
    /// when this failure trips the breaker open (counted as
    /// `breaker_trips`).
    pub fn record_failure(&mut self) -> bool {
        match self.phase {
            Phase::Closed => {
                self.score += 1;
                if self.score >= self.cfg.trip.max(1) {
                    self.phase = Phase::Open {
                        remaining: self.cfg.open.max(1),
                    };
                    self.score = 0;
                    return true;
                }
                false
            }
            Phase::HalfOpen => {
                // The probe failed: back to fully open.
                self.phase = Phase::Open {
                    remaining: self.cfg.open.max(1),
                };
                true
            }
            Phase::Open { .. } => false,
        }
    }

    /// Notes a successful admitted request. Returns `true` when this
    /// was the probe that re-closed the breaker (counted as
    /// `breaker_closes`).
    pub fn record_success(&mut self) -> bool {
        match self.phase {
            Phase::HalfOpen => {
                self.phase = Phase::Closed;
                self.score = 0;
                true
            }
            _ => {
                self.score = 0;
                false
            }
        }
    }

    /// Operator reset (`mark-bad` replaces the silicon outright, so the
    /// replacement starts with a clean bill of health).
    pub fn reset(&mut self) {
        self.phase = Phase::Closed;
        self.score = 0;
    }

    /// Whether the breaker currently admits normal traffic.
    pub fn is_closed(&self) -> bool {
        self.phase == Phase::Closed
    }

    /// Phase name for `status` reporting.
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Closed => "closed",
            Phase::Open { .. } => "open",
            Phase::HalfOpen => "half-open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = Breaker::new(BreakerConfig { trip: 3, open: 2 });
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(
            !b.record_success(),
            "success in Closed is not a close event"
        );
        // The success reset the score: two more failures still closed.
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive failure trips");
        assert_eq!(b.admit(), Admission::Reject);
    }

    #[test]
    fn open_counts_down_to_a_probe() {
        let mut b = Breaker::new(BreakerConfig { trip: 1, open: 3 });
        assert!(b.record_failure());
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(
            b.admit(),
            Admission::Probe,
            "open_after rejections, then probe"
        );
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let cfg = BreakerConfig { trip: 1, open: 1 };
        let mut b = Breaker::new(cfg);
        b.record_failure();
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(b.admit(), Admission::Probe);
        assert!(b.record_failure(), "failed probe re-trips");
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(b.admit(), Admission::Probe);
        assert!(b.record_success(), "successful probe closes");
        assert_eq!(b.admit(), Admission::Pass);
    }

    #[test]
    fn reset_reopens_traffic() {
        let mut b = Breaker::new(BreakerConfig { trip: 1, open: 8 });
        b.record_failure();
        assert_eq!(b.admit(), Admission::Reject);
        b.reset();
        assert_eq!(b.admit(), Admission::Pass);
        assert!(b.is_closed());
        assert_eq!(b.phase_name(), "closed");
    }
}
