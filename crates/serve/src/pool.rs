//! The die pool: per-shard execution state for the daemon.
//!
//! Each [`ShardState`] owns the simulated dies whose ids hash to its
//! shard (`die % shards`) and executes requests against them strictly
//! in arrival order. Because every die is a deterministic simulation
//! seeded from `(pool seed, die id, generation)` and the counter-keyed
//! noise engine makes all device randomness a function of simulated
//! time rather than host scheduling, the response to a request depends
//! only on the *per-die sequence of requests* — never on wall-clock
//! timing, thread interleaving across dies, or batching. That is the
//! invariant the replay golden test pins down.
//!
//! Degradation: when an operation fails at the device level, or a die's
//! accumulated fault events cross [`ServeConfig::fault_limit`], the die
//! is *remapped* — its generation bumps and a fresh die (new seed, no
//! fault config, empty enrollment cache) takes over the id. The failed
//! operation is retried once on the fresh die; clients observe the bump
//! through the `"gen"` response field, and the `"status"` endpoint
//! lists every remap.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use fracdram::frac::{frac_program, require_frac_support};
use fracdram::puf::{self, Challenge};
use fracdram::rowcopy::copy_program;
use fracdram::trng::Trng;
use fracdram::FracDramError;
use fracdram_experiments::Json;
use fracdram_model::{FaultConfig, Geometry, GroupId, Module, ModuleConfig, RowAddr, SubarrayAddr};
use fracdram_softmc::program::Program;
use fracdram_softmc::sched::{self, ScheduleEntry};
use fracdram_softmc::{CompiledProgram, MemoryController};
use fracdram_stats::bits::BitVec;
use fracdram_stats::rng::mix;

use crate::breaker::{Admission, Breaker, BreakerConfig};
use crate::chaos::{ChaosPlan, ChaosSpec};
use crate::protocol::{bits_to_hex, hex_to_bits, Request, WritePayload};

/// Upper bound on `"bits"` for one TRNG request.
pub const MAX_TRNG_BITS: usize = 4096;
/// Upper bound on enrollment repetitions.
pub const MAX_ENROLL_REPS: usize = 15;

/// Static configuration of the served pool.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// DRAM group every die belongs to (must support Frac and four-row
    /// activation for the full endpoint set; group B does).
    pub group: GroupId,
    /// Number of die ids clients can address.
    pub dies: usize,
    /// Number of shard worker threads; die `d` belongs to shard
    /// `d % shards`.
    pub shards: usize,
    /// Bound of each shard's work queue; a full queue sheds with `503`.
    pub queue_depth: usize,
    /// Maximum requests a shard drains into one batch, coalescing
    /// consecutive same-die writes/copies into a single compiled
    /// program.
    pub batch: usize,
    /// Columns per sub-array (row width in bits for these single-chip
    /// dies). Must be a multiple of 4 so hex payloads are exact.
    pub columns: usize,
    /// Pool seed; die `d` at generation `g` simulates silicon seeded
    /// `mix(seed, [d, g])`.
    pub seed: u64,
    /// Fault events a die may accumulate before it is auto-remapped.
    pub fault_limit: u64,
    /// Whether a drained batch is scheduled across dies: the whole drain
    /// is partitioned by die (preserving per-die arrival order, which is
    /// all the replay contract pins down), every die's combinable spans
    /// coalesce — consecutive *within the die*, not within the drain —
    /// and the per-die programs are merged into one cross-bank schedule
    /// to measure the bus occupancy a multi-die controller reclaims.
    /// `false` restores the legacy consecutive-only coalescing.
    pub sched: bool,
    /// Per-die circuit breaker thresholds (part of the WAL fingerprint:
    /// rejections consume seqs, so the thresholds shape the response
    /// stream).
    pub breaker: BreakerConfig,
    /// Deterministic chaos injection; `None` disarms every class. Part
    /// of the WAL fingerprint — recovery must replay under the same
    /// plan to re-inject the die failures the live run saw.
    pub chaos: Option<ChaosSpec>,
    /// Budget from enqueue to drain; a request older than this when its
    /// shard picks it up is shed with `503 deadline exceeded` instead
    /// of executed (never enters the WAL or the replay log). `0`
    /// disables deadline shedding entirely.
    pub deadline_ms: u64,
    /// Per-connection socket read/write timeout; an idle or stalled
    /// client is disconnected after this long so it can neither pin a
    /// connection thread nor block graceful shutdown.
    pub io_timeout_ms: u64,
    /// Where the per-shard write-ahead logs live; `None` serves purely
    /// in memory (the pre-PR-9 behavior).
    pub wal_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            group: GroupId::B,
            dies: 16,
            shards: 4,
            queue_depth: 64,
            batch: 8,
            columns: 128,
            seed: 0xF2AC_D7A3,
            fault_limit: 2048,
            sched: true,
            breaker: BreakerConfig::default(),
            chaos: None,
            deadline_ms: 5000,
            io_timeout_ms: 30_000,
            wal_dir: None,
        }
    }
}

impl ServeConfig {
    /// Geometry of every die: 2 banks × 2 sub-arrays × 32 rows. Bank 0
    /// sub-array 0 hosts the TRNG (seed rows + activation quad); the
    /// rest is plain storage.
    pub fn geometry(&self) -> Geometry {
        Geometry {
            banks: 2,
            subarrays_per_bank: 2,
            rows_per_subarray: 32,
            columns: self.columns,
        }
    }

    /// The shard that owns `die`.
    pub fn shard_of(&self, die: usize) -> usize {
        die % self.shards.max(1)
    }
}

/// One die remap, as reported by the `"status"` endpoint.
#[derive(Debug, Clone)]
pub struct RemapEvent {
    /// The die id that was remapped.
    pub die: usize,
    /// The generation now serving that id.
    pub generation: u32,
    /// Why the previous generation was retired.
    pub reason: String,
}

/// Live depth and high-water mark of one shard's work queue.
#[derive(Debug, Default)]
pub struct ShardGauge {
    depth: AtomicU64,
    hwm: AtomicU64,
}

/// Counters shared between shards and the status endpoint.
#[derive(Debug, Default)]
pub struct StatusBoard {
    /// Requests executed (excludes shed and malformed ones).
    pub processed: AtomicU64,
    /// Requests shed with `503` because a shard queue was full.
    pub shed: AtomicU64,
    /// Combined programs run on behalf of ≥ 2 coalesced requests.
    pub batched: AtomicU64,
    /// Cross-die schedules built from a drained batch.
    pub sched_merges: AtomicU64,
    /// Command cycles of bus occupancy those schedules reclaimed.
    pub sched_overlapped_ticks: AtomicU64,
    /// Drains with ≥ 2 schedulable programs that could not merge
    /// (single die, guarded group, or a bank conflict).
    pub sched_fallbacks: AtomicU64,
    /// Requests shed with `503` because they aged past
    /// [`ServeConfig::deadline_ms`] in a shard queue.
    pub deadline_shed: AtomicU64,
    /// Breaker trips: a die's consecutive failures (or a failed
    /// half-open probe) swung its breaker open.
    pub breaker_trips: AtomicU64,
    /// Requests rejected up front (`503`) by an open breaker.
    pub breaker_rejections: AtomicU64,
    /// Half-open probe requests admitted to a tripped die.
    pub breaker_probes: AtomicU64,
    /// Breakers re-closed by a successful probe.
    pub breaker_closes: AtomicU64,
    /// Entries durably appended to the write-ahead log.
    pub wal_entries: AtomicU64,
    /// WAL fsync batches (one per shard drain that logged anything).
    pub wal_syncs: AtomicU64,
    /// Bytes durably appended to the WAL (headers included).
    pub wal_bytes: AtomicU64,
    /// Entries replayed from the WAL at startup recovery.
    pub recovered: AtomicU64,
    /// Chaos-injected die failures actually fired.
    pub chaos_die_failures: AtomicU64,
    /// Chaos-injected connection drops actually fired.
    pub chaos_drops: AtomicU64,
    /// Chaos-injected shard stalls actually fired.
    pub chaos_stalls: AtomicU64,
    /// Per-shard queue gauges (empty until [`StatusBoard::for_shards`]).
    gauges: Vec<ShardGauge>,
    /// Drain-size histogram: `hist[n]` counts drains of exactly `n`
    /// requests.
    batch_hist: Mutex<Vec<u64>>,
    /// Every remap since startup, oldest first.
    remaps: Mutex<Vec<RemapEvent>>,
}

impl StatusBoard {
    /// A board with one queue gauge per shard.
    pub fn for_shards(shards: usize) -> StatusBoard {
        StatusBoard {
            gauges: (0..shards).map(|_| ShardGauge::default()).collect(),
            ..StatusBoard::default()
        }
    }

    /// Notes a request entering `shard`'s queue, advancing the HWM.
    pub fn queue_push(&self, shard: usize) {
        if let Some(g) = self.gauges.get(shard) {
            let depth = g.depth.fetch_add(1, Ordering::Relaxed) + 1;
            g.hwm.fetch_max(depth, Ordering::Relaxed);
        }
    }

    /// Notes `n` requests leaving `shard`'s queue.
    pub fn queue_pop(&self, shard: usize, n: u64) {
        if let Some(g) = self.gauges.get(shard) {
            g.depth.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Per-shard queue-depth high-water marks.
    pub fn queue_hwms(&self) -> Vec<u64> {
        self.gauges
            .iter()
            .map(|g| g.hwm.load(Ordering::Relaxed))
            .collect()
    }

    /// Notes one drained batch of `n` requests.
    pub fn record_drain(&self, n: usize) {
        // Poison recovery (fleet PR-4 policy): counters are plain data,
        // so a panicking peer must not wedge the status/stop paths.
        let mut hist = self
            .batch_hist
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if hist.len() <= n {
            hist.resize(n + 1, 0);
        }
        hist[n] += 1;
    }

    /// The drain-size histogram (`[n]` = drains of exactly `n`).
    pub fn batch_histogram(&self) -> Vec<u64> {
        self.batch_hist
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn record_remap(&self, event: RemapEvent) {
        self.remaps
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// All remaps so far, oldest first.
    pub fn remaps(&self) -> Vec<RemapEvent> {
        self.remaps
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// One executed request's response, tagged with its replay ordering key.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Die that served the request.
    pub die: usize,
    /// Per-die sequence number (assigned in processing order).
    pub seq: u64,
    /// The response line (no trailing newline).
    pub line: String,
}

#[derive(Debug)]
enum OpError {
    /// The request itself is invalid; respond 400, keep the die.
    Bad(String),
    /// The die failed; remap it and retry once.
    Die(String),
}

struct Die {
    mc: MemoryController,
    trng: Option<Trng>,
    enrolled: BTreeMap<(usize, usize), BitVec>,
    seq: u64,
    generation: u32,
    fault_baseline: u64,
}

impl Die {
    fn new(cfg: &ServeConfig, id: usize, generation: u32) -> Die {
        let seed = mix(cfg.seed, &[id as u64, generation as u64]);
        let module = Module::new(ModuleConfig::single_chip(cfg.group, seed, cfg.geometry()));
        Die {
            mc: MemoryController::new(module),
            trng: None,
            enrolled: BTreeMap::new(),
            seq: 0,
            generation,
            fault_baseline: 0,
        }
    }
}

/// Execution state for one shard (or, in replay mode, for the whole
/// pool). Dies materialize lazily on first touch.
pub struct ShardState {
    cfg: ServeConfig,
    board: Arc<StatusBoard>,
    dies: BTreeMap<usize, Die>,
    /// Per die **id** (not generation): the health score must survive
    /// remaps — an id that keeps failing across fresh silicon is
    /// exactly what the breaker exists to fence off.
    breakers: BTreeMap<usize, Breaker>,
    /// Deterministic failure-injection oracle, from
    /// [`ServeConfig::chaos`].
    chaos: Option<ChaosPlan>,
    /// Whether `"stall"` actually sleeps. Live shards sleep (the op
    /// exists to force backpressure in tests); replay never does.
    stall_enabled: bool,
}

impl ShardState {
    /// A fresh shard over `cfg`, publishing counters to `board`.
    pub fn new(cfg: ServeConfig, board: Arc<StatusBoard>, stall_enabled: bool) -> ShardState {
        let chaos = cfg.chaos.as_ref().map(ChaosSpec::plan);
        ShardState {
            cfg,
            board,
            dies: BTreeMap::new(),
            breakers: BTreeMap::new(),
            chaos,
            stall_enabled,
        }
    }

    /// Repoints a recovered shard at the live server's board and
    /// re-enables stalls: recovery replays against a throwaway board
    /// with stalls off (replay must not sleep), then the same states go
    /// live for serving.
    pub fn arm_live(&mut self, board: Arc<StatusBoard>) {
        self.board = board;
        self.stall_enabled = true;
    }

    /// Breaker phase per die id, for `status` reporting (only dies
    /// whose breaker ever advanced past a pristine closed state appear
    /// interesting, but all touched ids are listed).
    pub fn breaker_phases(&self) -> Vec<(usize, &'static str)> {
        self.breakers
            .iter()
            .map(|(&id, b)| (id, b.phase_name()))
            .collect()
    }

    fn ensure_die(&mut self, id: usize) {
        if self.dies.contains_key(&id) {
            return;
        }
        let mut fresh = Die::new(&self.cfg, id, 0);
        // First touch: adopt a sibling die's materialize caches. The new
        // seed invalidates the per-die buffers (adoption clears them),
        // but the pure-math exp memo transfers verbatim, so every die
        // after the shard's first skips the transcendental warm-up.
        if let Some(donor) = self.dies.values().next() {
            fresh
                .mc
                .module_mut()
                .install_caches(donor.mc.module().clone_caches());
        }
        self.dies.insert(id, fresh);
    }

    fn remap(&mut self, id: usize, reason: &str) -> u32 {
        let (next_gen, seq) = match self.dies.get(&id) {
            Some(die) => (die.generation + 1, die.seq),
            None => (1, 0),
        };
        let mut fresh = Die::new(&self.cfg, id, next_gen);
        fresh.seq = seq;
        // Hand the retired generation's materialize caches to the fresh
        // die. The new seed invalidates the per-die buffers (adoption
        // clears them), but the pure-math exp memo survives, so a
        // remapped die warms up without recomputing transcendentals.
        if let Some(old) = self.dies.get_mut(&id) {
            fresh
                .mc
                .module_mut()
                .install_caches(old.mc.module_mut().take_caches());
        }
        self.dies.insert(id, fresh);
        self.board.record_remap(RemapEvent {
            die: id,
            generation: next_gen,
            reason: reason.to_string(),
        });
        next_gen
    }

    /// Executes one die-routed request, returning its response. Part of
    /// the replay contract: calling this for each request of a per-die
    /// ordered log yields exactly the responses the live (batching,
    /// multi-shard) server produced.
    ///
    /// # Panics
    ///
    /// Panics when `req` has no target die (`status` / `shutdown` are
    /// answered by the server front-end, never routed here).
    pub fn execute(&mut self, req: &Request) -> Reply {
        let id = req.die().expect("only die-routed requests reach a shard");
        self.ensure_die(id);
        let seq = {
            let die = self.dies.get_mut(&id).unwrap();
            let seq = die.seq;
            die.seq += 1;
            seq
        };
        self.board.processed.fetch_add(1, Ordering::Relaxed);

        if let Request::MarkBad { .. } = req {
            // Operator replacement: the fresh silicon starts with a
            // clean bill of health, whatever the breaker thought of its
            // predecessor.
            self.breaker(id).reset();
            let generation = self.remap(id, "marked bad");
            let line = ok_response(req, id, seq, generation)
                .field("remapped", true)
                .to_string();
            return Reply { die: id, seq, line };
        }

        match self.breaker(id).admit() {
            Admission::Pass => {}
            Admission::Probe => {
                self.board.breaker_probes.fetch_add(1, Ordering::Relaxed);
            }
            Admission::Reject => {
                // Rejections consume a seq and are journaled like any
                // response, so recovery replays the breaker's countdown
                // to the exact same phase.
                self.board
                    .breaker_rejections
                    .fetch_add(1, Ordering::Relaxed);
                let generation = self.dies[&id].generation;
                let line = error_response(req, id, seq, generation, 503, "circuit breaker open")
                    .to_string();
                return Reply { die: id, seq, line };
            }
        }

        let mut die_failed = false;
        let mut succeeded = false;
        let line = match self.apply_with_chaos(id, seq, req) {
            Ok(extra) => {
                succeeded = true;
                let generation = self.dies[&id].generation;
                splice(ok_response(req, id, seq, generation), extra).to_string()
            }
            Err(OpError::Bad(msg)) => {
                let generation = self.dies[&id].generation;
                error_response(req, id, seq, generation, 400, &msg).to_string()
            }
            Err(OpError::Die(msg)) => {
                // The die failed underneath a valid request: retire it,
                // retry once on the replacement. (The retry is not
                // chaos-wrapped: the injection keyed on this seq already
                // fired, and re-injecting would double-count it.)
                die_failed = true;
                let generation = self.remap(id, &msg);
                match self.apply(id, req) {
                    Ok(extra) => splice(ok_response(req, id, seq, generation), extra).to_string(),
                    Err(OpError::Bad(msg)) | Err(OpError::Die(msg)) => {
                        error_response(req, id, seq, generation, 500, &msg).to_string()
                    }
                }
            }
        };
        if self.check_health(id) {
            die_failed = true;
        }
        // A die-level failure feeds the breaker even when the retry on
        // fresh silicon answered the client `ok` — the *id* misbehaved.
        // Validation errors (`Bad`) are the client's fault: neutral.
        if die_failed {
            if self.breaker(id).record_failure() {
                self.board.breaker_trips.fetch_add(1, Ordering::Relaxed);
            }
        } else if succeeded && self.breaker(id).record_success() {
            self.board.breaker_closes.fetch_add(1, Ordering::Relaxed);
        }
        Reply { die: id, seq, line }
    }

    /// Executes a drained batch. With [`ServeConfig::sched`] on, the
    /// drain is partitioned by die first (stable within each die, which
    /// is the only order the replay contract fixes), each die's
    /// combinable spans coalesce into combined programs, and the per-die
    /// programs are merged into one cross-bank schedule whose reclaimed
    /// bus cycles feed the `sched_*` counters. Replies land back at
    /// their input positions, so the response stream is identical to the
    /// sequential path. With it off, only *drain-consecutive* same-die
    /// `write`/`copy` requests coalesce (the legacy behavior). Both
    /// paths are bit-identical to per-request execution because the
    /// controller clock advances purely per-instruction — see DESIGN.md.
    pub fn execute_batch(&mut self, reqs: &[Request]) -> Vec<Reply> {
        self.board.record_drain(reqs.len());
        if !self.cfg.sched {
            return self.execute_batch_sequential(reqs);
        }
        let mut by_die: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, req) in reqs.iter().enumerate() {
            let die = req.die().expect("only die-routed requests reach a shard");
            by_die.entry(die).or_default().push(i);
        }
        let mut slots: Vec<Option<Reply>> = reqs.iter().map(|_| None).collect();
        // (die, per-die order, program) of every combinable span — the
        // raw material for the cross-die schedule.
        let mut schedulable: Vec<(usize, u64, Program)> = Vec::new();
        for (&die, idxs) in &by_die {
            let mut k = 0;
            let mut order = 0u64;
            while k < idxs.len() {
                let mut m = k;
                while m < idxs.len() && self.combinable(&reqs[idxs[m]]) {
                    m += 1;
                }
                if m - k >= 2 {
                    let run: Vec<&Request> = idxs[k..m].iter().map(|&i| &reqs[i]).collect();
                    let (replies, program) = self.execute_run(&run);
                    for (slot, reply) in idxs[k..m].iter().zip(replies) {
                        slots[*slot] = Some(reply);
                    }
                    schedulable.push((die, order, program));
                    order += 1;
                    k = m;
                } else if m - k == 1 {
                    // A lone storage op still joins the schedule.
                    let die_state = &self.dies[&die];
                    if let Ok((program, _)) =
                        prepare_program(&die_state.mc, &self.cfg, &reqs[idxs[k]])
                    {
                        schedulable.push((die, order, program));
                        order += 1;
                    }
                    slots[idxs[k]] = Some(self.execute(&reqs[idxs[k]]));
                    k += 1;
                } else {
                    slots[idxs[k]] = Some(self.execute(&reqs[idxs[k]]));
                    k += 1;
                }
            }
        }
        if by_die.len() >= 2 {
            self.record_schedule(&schedulable);
        } else if reqs.len() >= 2 {
            // A multi-request drain with no second die has nothing to
            // overlap with — that is a scheduling miss worth counting.
            self.board.sched_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every request produced a reply"))
            .collect()
    }

    /// The legacy drain path: coalesce only drain-consecutive same-die
    /// storage requests, execute everything else one by one.
    fn execute_batch_sequential(&mut self, reqs: &[Request]) -> Vec<Reply> {
        let mut out = Vec::with_capacity(reqs.len());
        let mut i = 0;
        while i < reqs.len() {
            let mut j = i;
            while j < reqs.len() && reqs[j].die() == reqs[i].die() && self.combinable(&reqs[j]) {
                j += 1;
            }
            if j - i >= 2 {
                let run: Vec<&Request> = reqs[i..j].iter().collect();
                let (replies, _) = self.execute_run(&run);
                out.extend(replies);
                i = j;
            } else {
                out.push(self.execute(&reqs[i]));
                i += 1;
            }
        }
        out
    }

    /// Merges one drain's schedulable programs across dies and records
    /// what the interleaved command stream saves. Pure accounting: each
    /// die executed its own programs at identical per-bank times, so the
    /// merge never changes any response — it measures the bus occupancy
    /// a multi-die controller reclaims from tRCD/tRP idle cycles.
    fn record_schedule(&mut self, programs: &[(usize, u64, Program)]) {
        let Some(first) = self.dies.values().next() else {
            return;
        };
        let guarded = first.mc.module().profile().timing_guard;
        let dies: std::collections::BTreeSet<usize> = programs.iter().map(|(d, _, _)| *d).collect();
        if guarded || dies.len() < 2 {
            self.board.sched_fallbacks.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let timing = *first.mc.timing();
        let compiled: Vec<CompiledProgram> = programs
            .iter()
            .map(|(_, _, p)| CompiledProgram::compile(&timing, p))
            .collect();
        let entries: Vec<ScheduleEntry> = programs
            .iter()
            .zip(&compiled)
            .map(|((die, order, _), c)| ScheduleEntry {
                space: *die as u64,
                order: *order,
                program: c,
            })
            .collect();
        match sched::merge(&entries) {
            Some(schedule) => {
                self.board.sched_merges.fetch_add(1, Ordering::Relaxed);
                self.board
                    .sched_overlapped_ticks
                    .fetch_add(schedule.overlapped_ticks(), Ordering::Relaxed);
            }
            None => {
                self.board.sched_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The breaker for die id `id`, created closed on first touch.
    fn breaker(&mut self, id: usize) -> &mut Breaker {
        let cfg = self.cfg.breaker;
        self.breakers.entry(id).or_insert_with(|| Breaker::new(cfg))
    }

    /// [`ShardState::apply`] behind the chaos oracle: when the plan
    /// injects a failure for this `(die, seq)`, the die is failed
    /// *instead of* executing — surfacing through the ordinary
    /// die-error path (remap, retry, breaker failure), which is what
    /// makes the injection indistinguishable from real bad silicon and
    /// exactly reproducible during recovery replay of the same seqs.
    fn apply_with_chaos(&mut self, id: usize, seq: u64, req: &Request) -> Result<Json, OpError> {
        if let Some(plan) = &self.chaos {
            if plan.die_fails(id, seq) {
                self.board
                    .chaos_die_failures
                    .fetch_add(1, Ordering::Relaxed);
                return Err(OpError::Die("chaos: injected die failure".to_string()));
            }
        }
        self.apply(id, req)
    }

    /// Whether `req` may join a coalesced run: a storage op whose
    /// program we can pre-validate, on a die without fault injection
    /// (an armed die may glitch mid-program, and a half-executed
    /// combined program could not be untangled per-request), whose
    /// breaker is closed (open/half-open dies go through the
    /// per-request gate), and with chaos die-failure injection disarmed
    /// (the oracle keys on individual seqs, which a combined program
    /// cannot honor).
    fn combinable(&mut self, req: &Request) -> bool {
        if !matches!(req, Request::Write { .. } | Request::Copy { .. }) {
            return false;
        }
        if self.chaos.is_some_and(|plan| plan.config().die_fail > 0.0) {
            return false;
        }
        let id = req.die().expect("write/copy always carry a die");
        if !self.breaker(id).is_closed() {
            return false;
        }
        self.ensure_die(id);
        let die = self.dies.get_mut(&id).unwrap();
        !die.mc.module().faults_enabled() && prepare_program(&die.mc, &self.cfg, req).is_ok()
    }

    fn execute_run(&mut self, reqs: &[&Request]) -> (Vec<Reply>, Program) {
        let id = reqs[0].die().expect("runs are die-routed");
        self.ensure_die(id);
        let die = self.dies.get_mut(&id).unwrap();
        let mut combined = Program::builder().build();
        let mut metas = Vec::with_capacity(reqs.len());
        for &req in reqs {
            let (program, extra) =
                prepare_program(&die.mc, &self.cfg, req).expect("run members pre-validated");
            combined.extend_from(&program);
            let seq = die.seq;
            die.seq += 1;
            metas.push((req, seq, extra));
        }
        let run = die.mc.run(&combined);
        let generation = die.generation;
        self.board
            .processed
            .fetch_add(reqs.len() as u64, Ordering::Relaxed);
        self.board.batched.fetch_add(1, Ordering::Relaxed);
        let replies = match run {
            Ok(_) => {
                // Equivalent to a per-request `record_success` for each
                // run member: `combinable` guaranteed the breaker was
                // closed, where success only clears the score.
                self.breaker(id).record_success();
                metas
                    .into_iter()
                    .map(|(req, seq, extra)| Reply {
                        die: id,
                        seq,
                        line: splice(ok_response(req, id, seq, generation), extra).to_string(),
                    })
                    .collect()
            }
            Err(e) => {
                // Unreachable for validated storage programs on a
                // fault-free die; handled anyway so a model regression
                // degrades the die instead of wedging the shard.
                let msg = e.to_string();
                let generation = self.remap(id, &msg);
                if self.breaker(id).record_failure() {
                    self.board.breaker_trips.fetch_add(1, Ordering::Relaxed);
                }
                metas
                    .into_iter()
                    .map(|(req, seq, _)| Reply {
                        die: id,
                        seq,
                        line: error_response(req, id, seq, generation, 500, &msg).to_string(),
                    })
                    .collect()
            }
        };
        if self.check_health(id) && self.breaker(id).record_failure() {
            self.board.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
        (replies, combined)
    }

    /// Auto-remap a die whose accumulated fault events crossed the
    /// configured limit. Returns whether the remap fired (a die-level
    /// failure as far as the breaker is concerned).
    fn check_health(&mut self, id: usize) -> bool {
        let over = {
            let die = &self.dies[&id];
            die.mc.module().faults_enabled()
                && die.mc.model_perf().fault_events() - die.fault_baseline > self.cfg.fault_limit
        };
        if over {
            self.remap(id, "fault limit exceeded");
        }
        over
    }

    fn apply(&mut self, id: usize, req: &Request) -> Result<Json, OpError> {
        let geometry = self.cfg.geometry();
        let die = self.dies.get_mut(&id).unwrap();
        match req {
            Request::Trng { bits, .. } => {
                if *bits == 0 || *bits > MAX_TRNG_BITS {
                    return Err(OpError::Bad(format!(
                        "\"bits\" must be 1..={MAX_TRNG_BITS}"
                    )));
                }
                if die.trng.is_none() {
                    // Any bind failure (including "no entropy columns"
                    // on pathological silicon) is a die problem: a
                    // remapped die rebinds from scratch.
                    let trng = Trng::bind(&mut die.mc, SubarrayAddr::new(0, 0))
                        .map_err(|e| OpError::Die(e.to_string()))?;
                    die.trng = Some(trng);
                }
                let (out, report) = die
                    .trng
                    .as_mut()
                    .unwrap()
                    .random_bits(&mut die.mc, *bits)
                    .map_err(|e| OpError::Die(e.to_string()))?;
                Ok(Json::obj()
                    .field("bits", bits_to_hex(&out))
                    .field("len", out.len())
                    .field("samples", report.samples))
            }
            Request::Puf { bank, row, .. } => {
                let challenge = checked_challenge(&geometry, *bank, *row)?;
                let response = puf::evaluate(&mut die.mc, challenge).map_err(map_op_err)?;
                Ok(Json::obj()
                    .field("bits", bits_to_hex(&response))
                    .field("len", response.len()))
            }
            Request::Enroll {
                bank, row, reps, ..
            } => {
                if *reps == 0 || *reps > MAX_ENROLL_REPS {
                    return Err(OpError::Bad(format!(
                        "\"reps\" must be 1..={MAX_ENROLL_REPS}"
                    )));
                }
                let challenge = checked_challenge(&geometry, *bank, *row)?;
                if let Some(signature) = die.enrolled.get(&(*bank, *row)) {
                    return Ok(Json::obj()
                        .field("signature", bits_to_hex(signature))
                        .field("len", signature.len())
                        .field("cached", true));
                }
                let mut ones = vec![0usize; geometry.columns];
                for _ in 0..*reps {
                    let response = puf::evaluate(&mut die.mc, challenge).map_err(map_op_err)?;
                    for (count, bit) in ones.iter_mut().zip(response.iter()) {
                        *count += bit as usize;
                    }
                }
                let signature =
                    BitVec::from_bools(&ones.iter().map(|&n| 2 * n > *reps).collect::<Vec<_>>());
                let line = Json::obj()
                    .field("signature", bits_to_hex(&signature))
                    .field("len", signature.len())
                    .field("cached", false);
                die.enrolled.insert((*bank, *row), signature);
                Ok(line)
            }
            Request::Verify {
                bank,
                row,
                threshold,
                ..
            } => {
                if !(0.0..=1.0).contains(threshold) {
                    return Err(OpError::Bad("\"threshold\" must be in [0, 1]".to_string()));
                }
                let challenge = checked_challenge(&geometry, *bank, *row)?;
                let Some(signature) = die.enrolled.get(&(*bank, *row)).cloned() else {
                    // Not an error: the die was never enrolled for this
                    // challenge (possibly because a remap cleared the
                    // cache) — report so the client can re-enroll.
                    return Ok(Json::obj().field("enrolled", false));
                };
                let fresh = puf::evaluate(&mut die.mc, challenge).map_err(map_op_err)?;
                let distance = signature.hamming_distance(&fresh) as f64 / fresh.len() as f64;
                Ok(Json::obj()
                    .field("enrolled", true)
                    .field("match", puf::authenticate(&signature, &fresh, *threshold))
                    .field("distance", distance))
            }
            Request::Write { .. } | Request::Copy { .. } => {
                let (program, extra) = prepare_program(&die.mc, &self.cfg, req)?;
                die.mc
                    .run(&program)
                    .map_err(|e| OpError::Die(e.to_string()))?;
                Ok(extra)
            }
            Request::Read { bank, row, .. } => {
                let addr = checked_row(&geometry, *bank, *row)?;
                let bits = die
                    .mc
                    .read_row(addr)
                    .map_err(|e| OpError::Die(e.to_string()))?;
                let bits = BitVec::from_bools(&bits);
                Ok(Json::obj()
                    .field("data", bits_to_hex(&bits))
                    .field("len", bits.len()))
            }
            Request::Fault { density, .. } => {
                if !(0.0..=0.2).contains(density) {
                    return Err(OpError::Bad("\"density\" must be in [0, 0.2]".to_string()));
                }
                let config = if *density > 0.0 {
                    FaultConfig {
                        stuck_density: *density,
                        weak_density: 2.0 * density,
                        sense_flip_rate: density / 2.0,
                        ..FaultConfig::none()
                    }
                } else {
                    FaultConfig::none()
                };
                die.fault_baseline = die.mc.model_perf().fault_events();
                die.mc.module_mut().set_fault_config(&config);
                Ok(Json::obj().field("armed", *density > 0.0))
            }
            Request::Stall { millis, .. } => {
                if self.stall_enabled {
                    std::thread::sleep(std::time::Duration::from_millis(*millis));
                }
                Ok(Json::obj().field("millis", *millis as usize))
            }
            Request::MarkBad { .. } | Request::Status | Request::Shutdown => {
                unreachable!("handled before apply")
            }
        }
    }
}

/// Builds the (pre-validated) program for a storage request, plus the
/// extra response fields it earns. Pure in the request and die
/// geometry/timing, so the batcher and the per-request path produce the
/// same program.
fn prepare_program(
    mc: &MemoryController,
    cfg: &ServeConfig,
    req: &Request,
) -> Result<(Program, Json), OpError> {
    let geometry = cfg.geometry();
    match req {
        Request::Write {
            bank,
            row,
            payload,
            frac,
            ..
        } => {
            let addr = checked_row(&geometry, *bank, *row)?;
            let row_bits = geometry.columns;
            let bits = match payload {
                WritePayload::Fill(bit) => vec![*bit; row_bits],
                WritePayload::Hex(hex) => {
                    let bits = hex_to_bits(hex).map_err(OpError::Bad)?;
                    if bits.len() != row_bits {
                        return Err(OpError::Bad(format!(
                            "\"data\" is {} bits, row is {row_bits}",
                            bits.len()
                        )));
                    }
                    bits
                }
            };
            let mut program = mc.write_row_program(addr, &bits);
            if *frac > 0 {
                require_frac_support(mc).map_err(map_op_err)?;
                program.extend_from(&frac_program(addr, *frac));
            }
            Ok((program, Json::obj().field("frac", *frac)))
        }
        Request::Copy { bank, src, dst, .. } => {
            let src = checked_row(&geometry, *bank, *src)?;
            let dst = checked_row(&geometry, *bank, *dst)?;
            let (ssub, _) = geometry.split_row(src.row);
            let (dsub, _) = geometry.split_row(dst.row);
            if ssub != dsub {
                return Err(OpError::Bad(format!(
                    "copy crosses sub-arrays ({ssub} -> {dsub})"
                )));
            }
            if src.row == dst.row {
                return Err(OpError::Bad("copy onto itself".to_string()));
            }
            Ok((copy_program(src, dst), Json::obj()))
        }
        _ => unreachable!("prepare_program is only called for write/copy"),
    }
}

fn checked_row(geometry: &Geometry, bank: usize, row: usize) -> Result<RowAddr, OpError> {
    if bank >= geometry.banks {
        return Err(OpError::Bad(format!(
            "bank {bank} out of range (dies have {} banks)",
            geometry.banks
        )));
    }
    if row >= geometry.rows_per_bank() {
        return Err(OpError::Bad(format!(
            "row {row} out of range (banks have {} rows)",
            geometry.rows_per_bank()
        )));
    }
    Ok(RowAddr::new(bank, row))
}

fn checked_challenge(geometry: &Geometry, bank: usize, row: usize) -> Result<Challenge, OpError> {
    checked_row(geometry, bank, row)?;
    Ok(Challenge::new(bank, row))
}

fn map_op_err(e: FracDramError) -> OpError {
    match e {
        FracDramError::Controller(_) => OpError::Die(e.to_string()),
        _ => OpError::Bad(e.to_string()),
    }
}

fn ok_response(req: &Request, die: usize, seq: u64, generation: u32) -> Json {
    Json::obj()
        .field("ok", true)
        .field("op", req.op())
        .field("die", die)
        .field("seq", seq)
        .field("gen", generation as usize)
}

fn error_response(
    req: &Request,
    die: usize,
    seq: u64,
    generation: u32,
    code: usize,
    message: &str,
) -> Json {
    Json::obj()
        .field("ok", false)
        .field("op", req.op())
        .field("die", die)
        .field("seq", seq)
        .field("gen", generation as usize)
        .field("code", code)
        .field("error", message)
}

fn splice(base: Json, extra: Json) -> Json {
    match (base, extra) {
        (Json::Obj(mut fields), Json::Obj(more)) => {
            fields.extend(more);
            Json::Obj(fields)
        }
        (base, _) => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ServeConfig {
        ServeConfig {
            dies: 4,
            shards: 1,
            ..ServeConfig::default()
        }
    }

    fn shard(cfg: &ServeConfig) -> ShardState {
        ShardState::new(cfg.clone(), Arc::new(StatusBoard::default()), false)
    }

    fn parse(reply: &Reply) -> Json {
        Json::parse(&reply.line).unwrap()
    }

    #[test]
    fn write_then_read_round_trips() {
        let cfg = tiny_cfg();
        let mut state = shard(&cfg);
        let hex = "a5".repeat(cfg.columns / 8);
        let write = Request::parse(&format!(
            r#"{{"op":"write","die":0,"bank":1,"row":3,"data":"{hex}"}}"#
        ))
        .unwrap();
        let read = Request::parse(r#"{"op":"read","die":0,"bank":1,"row":3}"#).unwrap();
        assert_eq!(
            parse(&state.execute(&write)).get("ok").unwrap().as_bool(),
            Some(true)
        );
        let doc = parse(&state.execute(&read));
        assert_eq!(doc.get("data").unwrap().as_str(), Some(hex.as_str()));
    }

    #[test]
    fn batched_run_matches_per_request_execution() {
        let cfg = tiny_cfg();
        let lines = [
            r#"{"op":"write","die":1,"bank":1,"row":4,"fill":true}"#,
            r#"{"op":"copy","die":1,"bank":1,"src":4,"dst":9}"#,
            r#"{"op":"write","die":1,"bank":1,"row":5,"fill":false,"frac":2}"#,
            r#"{"op":"read","die":1,"bank":1,"row":9}"#,
        ];
        let reqs: Vec<Request> = lines.iter().map(|l| Request::parse(l).unwrap()).collect();

        let mut batched = shard(&cfg);
        let batch_replies = batched.execute_batch(&reqs);
        let mut serial = shard(&cfg);
        let serial_replies: Vec<Reply> = reqs.iter().map(|r| serial.execute(r)).collect();

        let render = |rs: &[Reply]| {
            rs.iter()
                .map(|r| r.line.clone())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&batch_replies), render(&serial_replies));
        assert!(
            batched.board.batched.load(Ordering::Relaxed) >= 1,
            "first three requests should coalesce"
        );
    }

    #[test]
    fn cross_die_drain_matches_per_request_execution() {
        // A drain interleaving three dies: with scheduling on, each
        // die's requests regroup and coalesce, yet every reply must be
        // byte-identical to strict per-request execution and come back
        // at its input position.
        let cfg = tiny_cfg();
        let lines = [
            r#"{"op":"write","die":0,"bank":0,"row":40,"fill":true}"#,
            r#"{"op":"write","die":1,"bank":1,"row":4,"fill":true}"#,
            r#"{"op":"write","die":0,"bank":0,"row":41,"fill":false}"#,
            r#"{"op":"copy","die":1,"bank":1,"src":4,"dst":9}"#,
            r#"{"op":"write","die":2,"bank":1,"row":7,"fill":true,"frac":3}"#,
            r#"{"op":"copy","die":0,"bank":0,"src":40,"dst":44}"#,
            r#"{"op":"read","die":1,"bank":1,"row":9}"#,
            r#"{"op":"read","die":0,"bank":0,"row":44}"#,
        ];
        let reqs: Vec<Request> = lines.iter().map(|l| Request::parse(l).unwrap()).collect();

        let mut scheduled = shard(&cfg);
        let sched_replies = scheduled.execute_batch(&reqs);
        let mut serial = shard(&cfg);
        let serial_replies: Vec<Reply> = reqs.iter().map(|r| serial.execute(r)).collect();
        let mut legacy = shard(&ServeConfig {
            sched: false,
            ..tiny_cfg()
        });
        let legacy_replies = legacy.execute_batch(&reqs);

        let render = |rs: &[Reply]| {
            rs.iter()
                .map(|r| r.line.clone())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&sched_replies), render(&serial_replies));
        assert_eq!(render(&legacy_replies), render(&serial_replies));
        assert!(
            scheduled.board.batched.load(Ordering::Relaxed)
                > legacy.board.batched.load(Ordering::Relaxed),
            "regrouping by die must coalesce runs the consecutive-only path misses"
        );
        assert_eq!(scheduled.board.sched_merges.load(Ordering::Relaxed), 1);
        assert!(
            scheduled
                .board
                .sched_overlapped_ticks
                .load(Ordering::Relaxed)
                > 0
        );
        assert_eq!(legacy.board.sched_merges.load(Ordering::Relaxed), 0);
        assert_eq!(
            scheduled.board.batch_histogram(),
            {
                let mut h = vec![0u64; 9];
                h[8] = 1;
                h
            },
            "one drain of eight requests"
        );
    }

    #[test]
    fn single_die_drain_counts_a_fallback() {
        let cfg = tiny_cfg();
        let mut state = shard(&cfg);
        let lines = [
            r#"{"op":"write","die":1,"bank":1,"row":4,"fill":true}"#,
            r#"{"op":"write","die":1,"bank":1,"row":5,"fill":false}"#,
        ];
        let reqs: Vec<Request> = lines.iter().map(|l| Request::parse(l).unwrap()).collect();
        state.execute_batch(&reqs);
        assert_eq!(state.board.sched_merges.load(Ordering::Relaxed), 0);
        assert_eq!(state.board.sched_fallbacks.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mark_bad_remaps_and_changes_silicon() {
        let cfg = tiny_cfg();
        let mut state = shard(&cfg);
        let puf = Request::parse(r#"{"op":"puf","die":2,"bank":1,"row":40}"#).unwrap();
        let before = parse(&state.execute(&puf));
        let mark = Request::parse(r#"{"op":"mark-bad","die":2}"#).unwrap();
        let marked = parse(&state.execute(&mark));
        assert_eq!(
            marked.get("gen").unwrap().as_usize(),
            Some(1),
            "mark-bad reports the replacement generation"
        );
        assert_eq!(marked.get("remapped").unwrap().as_bool(), Some(true));
        let after = parse(&state.execute(&puf));
        assert_eq!(after.get("gen").unwrap().as_usize(), Some(1));
        assert_ne!(
            before.get("bits").unwrap().as_str(),
            after.get("bits").unwrap().as_str(),
            "a remapped die is fresh silicon; its PUF response must differ"
        );
        assert_eq!(state.board.remaps().len(), 1);
    }

    #[test]
    fn validation_failures_are_400_and_consume_a_seq() {
        let cfg = tiny_cfg();
        let mut state = shard(&cfg);
        let bad = Request::parse(r#"{"op":"read","die":0,"bank":7,"row":0}"#).unwrap();
        let doc = parse(&state.execute(&bad));
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("code").unwrap().as_usize(), Some(400));
        let good = Request::parse(r#"{"op":"read","die":0,"bank":0,"row":0}"#).unwrap();
        let doc = parse(&state.execute(&good));
        assert_eq!(doc.get("seq").unwrap().as_usize(), Some(1));
    }

    #[test]
    fn enroll_caches_and_verify_matches() {
        let cfg = tiny_cfg();
        let mut state = shard(&cfg);
        let enroll =
            Request::parse(r#"{"op":"enroll","die":0,"bank":1,"row":44,"reps":3}"#).unwrap();
        let first = parse(&state.execute(&enroll));
        assert_eq!(first.get("cached").unwrap().as_bool(), Some(false));
        let second = parse(&state.execute(&enroll));
        assert_eq!(second.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(
            first.get("signature").unwrap().as_str(),
            second.get("signature").unwrap().as_str()
        );
        let verify = Request::parse(r#"{"op":"verify","die":0,"bank":1,"row":44}"#).unwrap();
        let doc = parse(&state.execute(&verify));
        assert_eq!(doc.get("enrolled").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("match").unwrap().as_bool(), Some(true));
        // A different die was never enrolled.
        let other = Request::parse(r#"{"op":"verify","die":1,"bank":1,"row":44}"#).unwrap();
        let doc = parse(&state.execute(&other));
        assert_eq!(doc.get("enrolled").unwrap().as_bool(), Some(false));
    }
}
