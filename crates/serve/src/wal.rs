//! The checksummed, append-only write-ahead log behind `fracdram-serve`.
//!
//! Every die-routed request the daemon *executes* is journaled before
//! its response is acknowledged to the client ("acknowledge-after-log"):
//! a shard drains a batch, executes it, appends one entry per reply to
//! its own WAL file, `fsync`s **once per drain** (batched durability),
//! and only then writes the response lines to the sockets. A crash at
//! any instant therefore loses no acknowledged mutation — the WAL holds
//! a superset of everything any client was told succeeded.
//!
//! Why the log carries *all* executed die-routed requests rather than
//! only the obviously-mutating ones: in this simulator every die-routed
//! op advances the die's controller clock (leakage is time-dependent)
//! and consumes a per-die sequence number, and breaker rejections
//! advance the breaker countdown — so the per-die request sequence *is*
//! the die state. That is exactly the replay contract PR 6 proved
//! (`run_replay`), which is what makes startup recovery exact by
//! construction: replaying the sealed log through the single-threaded
//! replay path reconstructs die state, enrollments, generations, and
//! breaker phases byte-identically.
//!
//! ## On-disk format
//!
//! One text file per shard (`wal-shard-<k>.log`), line-oriented so a
//! torn tail is recoverable by inspection:
//!
//! ```text
//! fracdram-wal v1 <config fingerprint>
//! E <die> <seq> <fnv1a64 hex> <canonical request JSON>
//! ...
//! S <entry count> <running-xor of entry checksums, hex>
//! ```
//!
//! Each `E` line's checksum covers `"<die> <seq> <json>"`; a mismatch,
//! a malformed line, or a missing trailing newline marks the **torn
//! tail** — everything before it is intact (entries are appended in
//! order and fsynced front to back), everything from it on is
//! discarded and counted in [`WalShard::torn`]. The `S` seal line is
//! written only on graceful drain; its absence tells recovery the
//! previous process died hard (reported, not fatal). The fingerprint
//! pins every config knob that shapes the response stream (seed, dies,
//! shards, columns, group, fault limit, breaker, chaos); recovery
//! refuses a log written under a different one instead of silently
//! reconstructing different silicon.
//!
//! ## Known limitation: the log only grows
//!
//! "Compaction" here rewrites the log without the stale seal — it does
//! not shrink it. Die state is defined as the full per-die request
//! sequence (that is what makes recovery exact with no snapshot
//! format), so every journaled entry stays live forever: log size and
//! recovery time grow linearly with requests served, and every restart
//! replays the entire history. Bounding this needs a die-state
//! checkpoint (serialize die state + seq watermark, truncate entries
//! below the watermark) — an explicit non-goal for now, tracked in
//! ROADMAP.md; deployments that restart periodically should budget for
//! replay time proportional to total journaled traffic.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Fsyncs a directory so entries created (or renamed) inside it are
/// durable. `sync_data` on a file makes its *bytes* durable; without
/// this the directory entry itself can vanish across a power loss,
/// taking the fully-fsynced log with it.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

use crate::pool::ServeConfig;

/// FNV-1a 64-bit, the repo's standing cheap content hash (same family
/// as `softmc::compiled::program_hash`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One journaled request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Die the request was routed to.
    pub die: usize,
    /// Per-die sequence number the executing shard assigned.
    pub seq: u64,
    /// The canonical request line ([`crate::Request::canonical`]).
    pub request: String,
}

impl WalEntry {
    fn checksum(&self) -> u64 {
        fnv1a64(format!("{} {} {}", self.die, self.seq, self.request).as_bytes())
    }

    fn render(&self) -> String {
        format!(
            "E {} {} {:016x} {}\n",
            self.die,
            self.seq,
            self.checksum(),
            self.request
        )
    }
}

/// The WAL file path for one shard.
pub fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-shard-{shard}.log"))
}

/// The config fingerprint pinned in every WAL header: the exact knobs
/// that shape the recorded response stream. Two configs with equal
/// fingerprints replay a log identically; recovery refuses anything
/// else.
pub fn fingerprint(cfg: &ServeConfig) -> String {
    let chaos = match &cfg.chaos {
        None => "off".to_string(),
        Some(spec) => format!(
            "{}:{}:{}:{}:{}",
            spec.seed,
            spec.config.die_fail,
            spec.config.drop,
            spec.config.stall,
            spec.config.stall_ms
        ),
    };
    format!(
        "group={} dies={} shards={} cols={} seed={} fault-limit={} breaker={}:{} chaos={}",
        cfg.group,
        cfg.dies,
        cfg.shards.max(1),
        cfg.columns,
        cfg.seed,
        cfg.fault_limit,
        cfg.breaker.trip,
        cfg.breaker.open,
        chaos
    )
}

/// Appends entries for one shard, fsync-batched per drain.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    pending: String,
    /// Entries durably committed so far.
    entries: u64,
    /// Running xor of committed entry checksums (sealed into `S`).
    acc: u64,
    /// Bytes durably committed so far (header included).
    bytes: u64,
}

impl WalWriter {
    /// Creates the shard's WAL with `recovered` as the compacted
    /// prefix — the entries recovery replayed, rewritten so the file is
    /// again `[header, entries...]` with no stale seal. Pass an empty
    /// slice for a fresh log.
    ///
    /// The rewrite is crash-atomic: the compacted log is written and
    /// fsynced as `wal-shard-<k>.log.tmp`, `rename`d over the old log,
    /// and the directory is fsynced — so the previous durable log
    /// survives on disk until the replacement is fully durable, and the
    /// new file's directory entry survives a power loss. A crash at any
    /// point leaves either the old log or the new one, never a
    /// truncated prefix.
    ///
    /// # Errors
    ///
    /// Propagates file creation / write / sync / rename failures.
    pub fn create(
        dir: &Path,
        shard: usize,
        cfg: &ServeConfig,
        recovered: &[WalEntry],
    ) -> std::io::Result<WalWriter> {
        let path = shard_path(dir, shard);
        let tmp = path.with_extension("log.tmp");
        let mut file = File::create(&tmp)?;
        let mut text = format!("fracdram-wal v1 {}\n", fingerprint(cfg));
        let mut acc = 0u64;
        for entry in recovered {
            acc ^= entry.checksum();
            text.push_str(&entry.render());
        }
        file.write_all(text.as_bytes())?;
        file.sync_data()?;
        std::fs::rename(&tmp, &path)?;
        sync_dir(dir)?;
        // The open handle follows the rename; appends land in the
        // now-durable final file.
        Ok(WalWriter {
            file,
            pending: String::new(),
            entries: recovered.len() as u64,
            acc,
            bytes: text.len() as u64,
        })
    }

    /// Stages one entry; nothing is durable until [`WalWriter::commit`].
    pub fn log(&mut self, die: usize, seq: u64, request: &str) {
        let entry = WalEntry {
            die,
            seq,
            request: request.to_string(),
        };
        self.acc ^= entry.checksum();
        self.entries += 1;
        self.pending.push_str(&entry.render());
    }

    /// Writes and fsyncs everything staged since the last commit (one
    /// write + one sync per shard drain), returning the bytes flushed.
    ///
    /// # Errors
    ///
    /// Propagates write / sync failures; the daemon treats either as
    /// fatal for the shard rather than acknowledging undurable work.
    pub fn commit(&mut self) -> std::io::Result<u64> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let n = self.pending.len() as u64;
        self.file.write_all(self.pending.as_bytes())?;
        self.file.sync_data()?;
        self.pending.clear();
        self.bytes += n;
        Ok(n)
    }

    /// Entries committed (or staged) so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Bytes durably committed so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Graceful-drain seal: commits anything pending, then appends the
    /// `S` record and fsyncs. A sealed log is the "clean shutdown"
    /// witness; recovery reports (but does not require) it.
    ///
    /// # Errors
    ///
    /// Propagates write / sync failures.
    pub fn seal(mut self) -> std::io::Result<()> {
        self.commit()?;
        self.file
            .write_all(format!("S {} {:016x}\n", self.entries, self.acc).as_bytes())?;
        self.file.sync_data()
    }
}

/// One shard's WAL as read back at recovery.
#[derive(Debug, Default)]
pub struct WalShard {
    /// Intact entries, in append (= per-die seq) order.
    pub entries: Vec<WalEntry>,
    /// Whether the log ends with a valid seal (graceful drain).
    pub sealed: bool,
    /// Lines discarded at the torn tail (checksum mismatch, malformed
    /// line, or missing trailing newline after a hard kill).
    pub torn: usize,
}

/// Reads one shard WAL back, verifying the header fingerprint and every
/// entry checksum. Stops at the first damaged line: entries are
/// appended and fsynced strictly in order, so everything before the
/// first bad line is intact and everything after it is untrusted.
///
/// # Errors
///
/// Returns a message when the file cannot be read, the header is
/// missing, or the fingerprint does not match `expect_fingerprint`.
pub fn read_shard(path: &Path, expect_fingerprint: &str) -> Result<WalShard, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut lines = text.split_inclusive('\n');
    let header = lines
        .next()
        .ok_or_else(|| format!("{}: empty WAL (no header)", path.display()))?;
    let expect_header = format!("fracdram-wal v1 {expect_fingerprint}\n");
    if header != expect_header {
        return Err(format!(
            "{}: WAL fingerprint mismatch\n  found:    {}\n  expected: {}",
            path.display(),
            header.trim_end(),
            expect_header.trim_end()
        ));
    }
    let mut shard = WalShard::default();
    let mut acc = 0u64;
    let mut rest = 0usize;
    for (index, line) in lines.enumerate() {
        if !line.ends_with('\n') {
            // Torn tail: the process died mid-append. Everything from
            // here on is untrusted.
            rest += 1;
            continue;
        }
        if rest > 0 {
            rest += 1;
            continue;
        }
        match parse_line(line.trim_end_matches('\n')) {
            Some(WalLine::Entry(entry)) => {
                acc ^= entry.checksum();
                shard.entries.push(entry);
            }
            Some(WalLine::Seal { count, checksum }) => {
                if count == shard.entries.len() as u64 && checksum == acc {
                    shard.sealed = true;
                } else {
                    eprintln!(
                        "fracdram-wal: {} line {}: seal does not cover the entries \
                         (claims {count}, file has {}); treating as unsealed",
                        path.display(),
                        index + 2,
                        shard.entries.len()
                    );
                }
                // Anything after a seal is untrusted (a crashed
                // compaction); stop trusting from here.
                rest += 1;
            }
            None => {
                eprintln!(
                    "fracdram-wal: {} line {}: damaged entry, truncating recovery here",
                    path.display(),
                    index + 2
                );
                rest += 1;
            }
        }
    }
    // The seal line itself is not "torn"; every other distrusted line is.
    shard.torn = rest.saturating_sub(usize::from(shard.sealed));
    Ok(shard)
}

enum WalLine {
    Entry(WalEntry),
    Seal { count: u64, checksum: u64 },
}

fn parse_line(line: &str) -> Option<WalLine> {
    let mut parts = line.splitn(4, ' ');
    match parts.next()? {
        "E" => {
            let die: usize = parts.next()?.parse().ok()?;
            let seq: u64 = parts.next()?.parse().ok()?;
            let rest = parts.next()?;
            let (checksum_hex, request) = rest.split_once(' ')?;
            let checksum = u64::from_str_radix(checksum_hex, 16).ok()?;
            let entry = WalEntry {
                die,
                seq,
                request: request.to_string(),
            };
            (entry.checksum() == checksum).then_some(WalLine::Entry(entry))
        }
        "S" => {
            let count: u64 = parts.next()?.parse().ok()?;
            let checksum = u64::from_str_radix(parts.next()?, 16).ok()?;
            Some(WalLine::Seal { count, checksum })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fracdram-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(die: usize, seq: u64, op: &str) -> WalEntry {
        WalEntry {
            die,
            seq,
            request: format!(r#"{{"op":"{op}","die":{die},"bank":0,"row":0}}"#),
        }
    }

    #[test]
    fn round_trips_and_seals() {
        let dir = tmp_dir("roundtrip");
        let cfg = ServeConfig::default();
        let mut writer = WalWriter::create(&dir, 0, &cfg, &[]).unwrap();
        writer.log(0, 0, r#"{"op":"read","die":0,"bank":0,"row":0}"#);
        writer.log(2, 0, r#"{"op":"read","die":2,"bank":0,"row":1}"#);
        assert!(writer.commit().unwrap() > 0);
        writer.log(0, 1, r#"{"op":"read","die":0,"bank":0,"row":2}"#);
        writer.commit().unwrap();
        writer.seal().unwrap();

        let shard = read_shard(&shard_path(&dir, 0), &fingerprint(&cfg)).unwrap();
        assert_eq!(shard.entries.len(), 3);
        assert!(shard.sealed);
        assert_eq!(shard.torn, 0);
        assert_eq!(shard.entries[1].die, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsealed_log_reads_back_and_compaction_restores_it() {
        let dir = tmp_dir("unsealed");
        let cfg = ServeConfig::default();
        let mut writer = WalWriter::create(&dir, 1, &cfg, &[]).unwrap();
        writer.log(1, 0, r#"{"op":"read","die":1,"bank":0,"row":0}"#);
        writer.commit().unwrap();
        drop(writer); // hard kill: no seal

        let shard = read_shard(&shard_path(&dir, 1), &fingerprint(&cfg)).unwrap();
        assert_eq!(shard.entries.len(), 1);
        assert!(!shard.sealed);

        // Compaction: recreate from the recovered entries, then append.
        let mut writer = WalWriter::create(&dir, 1, &cfg, &shard.entries).unwrap();
        assert_eq!(writer.entries(), 1);
        writer.log(1, 1, r#"{"op":"read","die":1,"bank":0,"row":1}"#);
        writer.commit().unwrap();
        writer.seal().unwrap();
        let shard = read_shard(&shard_path(&dir, 1), &fingerprint(&cfg)).unwrap();
        assert_eq!(shard.entries.len(), 2);
        assert!(shard.sealed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = tmp_dir("torn");
        let cfg = ServeConfig::default();
        let mut writer = WalWriter::create(&dir, 0, &cfg, &[entry(0, 0, "read")]).unwrap();
        writer.commit().unwrap();
        drop(writer);
        // Simulate a torn append: a corrupt line and a partial line.
        let path = shard_path(&dir, 0);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(b"E 0 1 0000000000000000 {\"op\":\"read\"}\nE 0 2 12")
            .unwrap();
        drop(file);

        let shard = read_shard(&path, &fingerprint(&cfg)).unwrap();
        assert_eq!(shard.entries.len(), 1, "intact prefix survives");
        assert_eq!(shard.torn, 2, "both damaged lines counted");
        assert!(!shard.sealed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_renames_atomically_and_ignores_stale_tmp() {
        let dir = tmp_dir("atomic");
        let cfg = ServeConfig::default();
        let path = shard_path(&dir, 0);
        let tmp = path.with_extension("log.tmp");

        // A crash between writing the tmp and renaming it leaves a
        // stale tmp behind; the next create must overwrite it and the
        // old durable log must still read back in between.
        let mut writer = WalWriter::create(&dir, 0, &cfg, &[]).unwrap();
        writer.log(0, 0, r#"{"op":"read","die":0,"bank":0,"row":0}"#);
        writer.commit().unwrap();
        drop(writer); // hard kill: no seal
        std::fs::write(&tmp, b"garbage from a crashed compaction\n").unwrap();

        let shard = read_shard(&path, &fingerprint(&cfg)).unwrap();
        assert_eq!(shard.entries.len(), 1, "stale tmp must not shadow the log");

        let writer = WalWriter::create(&dir, 0, &cfg, &shard.entries).unwrap();
        assert!(!tmp.exists(), "compaction must consume its tmp file");
        assert_eq!(writer.entries(), 1);
        drop(writer);
        let shard = read_shard(&path, &fingerprint(&cfg)).unwrap();
        assert_eq!(shard.entries.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let dir = tmp_dir("fpr");
        let cfg = ServeConfig::default();
        let writer = WalWriter::create(&dir, 0, &cfg, &[]).unwrap();
        drop(writer);
        let other = ServeConfig {
            seed: cfg.seed ^ 1,
            ..ServeConfig::default()
        };
        let err = read_shard(&shard_path(&dir, 0), &fingerprint(&other)).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
