//! The TCP front-end: accept loop, connection threads, shard workers,
//! request/response recording, durability, and the offline replay path.
//!
//! Threading model:
//!
//! * one **accept thread** polls a non-blocking listener and spawns a
//!   thread per connection;
//! * each **connection thread** reads line-delimited requests (with a
//!   short read timeout so a silent client can neither pin the thread
//!   past [`ServeConfig::io_timeout_ms`](crate::ServeConfig::io_timeout_ms)
//!   nor block graceful shutdown), answers `status`/`shutdown`/malformed
//!   lines immediately, and forwards die-routed work to the owning
//!   shard through a *bounded* `sync_channel` — a full queue is
//!   answered with a `503` shed response instead of blocking the
//!   client;
//! * each **shard thread** drains its queue in arrival order (up to
//!   [`ServeConfig::batch`](crate::ServeConfig::batch) requests at a
//!   time, coalescing storage runs), sheds requests that aged past
//!   their deadline, executes the rest against its [`ShardState`],
//!   **journals every executed request to its write-ahead log and
//!   fsyncs once per drain**, and only then replies through the
//!   per-request back-channel — acknowledge-after-log, so a crash at
//!   any instant loses no acknowledged response.
//!
//! Shutdown: the `shutdown` op (or [`ServerHandle::stop`]) flips a
//! flag; the accept thread exits and drops the shard senders, each
//! shard drains what is already queued, **seals its WAL**, and exits,
//! and [`ServerHandle::join`] collects the canonical logs — both sorted
//! by `(die, seq)` so they are byte-comparable with a replay.
//!
//! Recovery: [`start_on`] with a [`ServeConfig::wal_dir`] holding logs
//! from a previous incarnation replays them through [`recover`] —
//! the same single-threaded path as [`run_replay`] — before accepting a
//! single connection, then compacts the logs (rewritten without the
//! seal via write-tmp → fsync → rename → fsync-dir, so a crash during
//! startup never truncates a durable log) and serves from the
//! reconstructed states. The replay contract
//! makes this exact: a die's state is a function of its request
//! sequence, and the WAL *is* that sequence.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fracdram_experiments::Json;

use crate::chaos::{ChaosPlan, ChaosSpec};
use crate::pool::{Reply, ServeConfig, ShardState, StatusBoard};
use crate::protocol::Request;
use crate::wal::{self, WalEntry, WalWriter};

/// One recorded exchange, in replay-canonical form.
#[derive(Debug, Clone)]
struct RecordEntry {
    die: usize,
    seq: u64,
    request: String,
    response: String,
}

struct Envelope {
    request: Request,
    canonical: String,
    /// When the connection thread queued the request; the shard sheds
    /// it unexecuted if it is older than the deadline at drain time.
    enqueued: Instant,
    /// The connection's shared write half. The shard writes the
    /// response straight to the socket instead of bouncing it back
    /// through the connection thread — on a loaded (or single-core)
    /// host that removes a thread wake-up from every request's critical
    /// path. The mutex keeps each written line atomic against the
    /// connection thread's own front-end responses.
    reply_to: Arc<Mutex<TcpStream>>,
}

/// Everything [`ServerHandle::join`] returns after the daemon drains.
#[derive(Debug)]
pub struct ServerReport {
    /// Canonical request log, one line per executed request, sorted by
    /// `(die, seq)`. Feeding this to [`run_replay`] reproduces
    /// `response_log` byte for byte.
    pub request_log: String,
    /// Response log matching `request_log` line for line.
    pub response_log: String,
    /// Requests executed.
    pub processed: u64,
    /// Requests shed with `503`.
    pub shed: u64,
}

/// A running server. Dropping the handle does **not** stop the daemon;
/// call [`ServerHandle::stop`] (or send a `shutdown` request) and then
/// [`ServerHandle::join`] — or [`ServerHandle::crash`] to die the hard
/// way in durability tests.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
    board: Arc<StatusBoard>,
    records: Arc<Mutex<Vec<RecordEntry>>>,
    accept_thread: JoinHandle<()>,
    shard_threads: Vec<JoinHandle<()>>,
    connection_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters this server publishes.
    pub fn board(&self) -> &StatusBoard {
        &self.board
    }

    /// Asks the server to stop accepting and drain, without waiting.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by [`ServerHandle::stop`]
    /// or a client's `shutdown` op).
    pub fn is_stopped(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Simulated hard kill for durability tests: threads exit without
    /// draining gracefully — the WAL is **not** sealed, and replies
    /// that were journaled but not yet written to their sockets are
    /// dropped, exactly the window a real `SIGKILL` exposes. The only
    /// surviving state is whatever the WAL made durable.
    pub fn crash(self) {
        self.crashed.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.accept_thread.join();
        let connections = std::mem::take(
            &mut *self
                .connection_threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for handle in connections {
            let _ = handle.join();
        }
        for handle in self.shard_threads {
            let _ = handle.join();
        }
    }

    /// Stops the server (if still running) and waits for every thread
    /// to drain, then returns the canonical logs.
    ///
    /// # Panics
    ///
    /// Panics when a server thread panicked.
    pub fn join(self) -> ServerReport {
        self.stop();
        self.accept_thread.join().expect("accept thread panicked");
        let connections = std::mem::take(
            &mut *self
                .connection_threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for handle in connections {
            handle.join().expect("connection thread panicked");
        }
        for handle in self.shard_threads {
            handle.join().expect("shard thread panicked");
        }
        let mut records =
            std::mem::take(&mut *self.records.lock().unwrap_or_else(PoisonError::into_inner));
        records.sort_by_key(|r| (r.die, r.seq));
        let mut request_log = String::new();
        let mut response_log = String::new();
        for record in &records {
            request_log.push_str(&record.request);
            request_log.push('\n');
            response_log.push_str(&record.response);
            response_log.push('\n');
        }
        ServerReport {
            request_log,
            response_log,
            processed: self.board.processed.load(Ordering::Relaxed),
            shed: self.board.shed.load(Ordering::Relaxed),
        }
    }
}

/// What startup recovery reconstructed from a WAL directory.
pub struct Recovery {
    /// One replayed [`ShardState`] per shard, ready to serve (call
    /// [`ShardState::arm_live`] to point them at a live board).
    pub states: Vec<ShardState>,
    /// The journaled entries per shard, in append order — the compacted
    /// prefix the new incarnation's WAL starts from.
    pub entries: Vec<Vec<WalEntry>>,
    /// Whether every shard's log ended with a valid seal (the previous
    /// incarnation drained gracefully).
    pub sealed: bool,
    /// Damaged lines discarded across all shards (torn tails).
    pub torn: usize,
    /// Canonical request log of everything replayed, sorted by
    /// `(die, seq)` — byte-comparable with a [`ServerReport`].
    pub request_log: String,
    /// Response log matching `request_log` line for line.
    pub response_log: String,
}

/// Replays the WAL directory `dir` against a fresh pool, verifying that
/// every journaled `(die, seq)` reproduces exactly. Read-only: the log
/// files are not modified (the daemon compacts them separately when it
/// goes live).
///
/// # Errors
///
/// Returns a message when a log is unreadable, was written under a
/// different config fingerprint, or replays to a different `(die, seq)`
/// than it recorded — each means the WAL and the config disagree about
/// what silicon is being reconstructed.
pub fn recover(cfg: &ServeConfig, dir: &Path) -> Result<Recovery, String> {
    let shards = cfg.shards.max(1);
    let fingerprint = wal::fingerprint(cfg);
    let board = Arc::new(StatusBoard::for_shards(shards));
    let mut recovery = Recovery {
        states: Vec::with_capacity(shards),
        entries: Vec::with_capacity(shards),
        sealed: true,
        torn: 0,
        request_log: String::new(),
        response_log: String::new(),
    };
    let mut replies: Vec<(String, Reply)> = Vec::new();
    for shard in 0..shards {
        let path = wal::shard_path(dir, shard);
        // Recovery replays with stalls disabled (replaying a journaled
        // `stall` must not sleep) on a throwaway board; the caller
        // re-arms the states for live serving.
        let mut state = ShardState::new(cfg.clone(), Arc::clone(&board), false);
        let shard_log = if path.exists() {
            wal::read_shard(&path, &fingerprint)?
        } else {
            // A shard that never journaled anything: empty and trivially
            // clean.
            wal::WalShard {
                sealed: true,
                ..wal::WalShard::default()
            }
        };
        recovery.sealed &= shard_log.sealed;
        recovery.torn += shard_log.torn;
        for entry in &shard_log.entries {
            let request = Request::parse(&entry.request)
                .map_err(|e| format!("{}: journaled request unparsable: {e}", path.display()))?;
            let reply = state.execute(&request);
            if reply.die != entry.die || reply.seq != entry.seq {
                return Err(format!(
                    "{}: replay diverged — journaled (die {}, seq {}), replayed (die {}, seq {})",
                    path.display(),
                    entry.die,
                    entry.seq,
                    reply.die,
                    reply.seq
                ));
            }
            replies.push((entry.request.clone(), reply));
        }
        recovery.states.push(state);
        recovery.entries.push(shard_log.entries);
    }
    replies.sort_by_key(|a| (a.1.die, a.1.seq));
    for (request, reply) in &replies {
        recovery.request_log.push_str(request);
        recovery.request_log.push('\n');
        recovery.response_log.push_str(&reply.line);
        recovery.response_log.push('\n');
    }
    Ok(recovery)
}

/// Starts the daemon on `127.0.0.1:port` (0 picks a free port).
///
/// # Errors
///
/// Propagates listener binding failures.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    start_on(cfg, 0)
}

/// [`start`] with an explicit port. When [`ServeConfig::wal_dir`] is
/// set, existing logs are recovered (and compacted) before the listener
/// accepts anything, and every shard journals from then on.
///
/// # Errors
///
/// Propagates listener binding failures, WAL I/O failures, and recovery
/// errors (fingerprint mismatch, replay divergence).
pub fn start_on(cfg: ServeConfig, port: u16) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let crashed = Arc::new(AtomicBool::new(false));
    let shards = cfg.shards.max(1);
    let board = Arc::new(StatusBoard::for_shards(shards));
    let records: Arc<Mutex<Vec<RecordEntry>>> = Arc::new(Mutex::new(Vec::new()));

    // Durability setup: recover any previous incarnation, then open a
    // compacted WAL per shard — all before the first accept, so no
    // client can observe a half-recovered pool.
    let mut states: Vec<ShardState> = Vec::with_capacity(shards);
    let mut writers: Vec<Option<WalWriter>> = Vec::with_capacity(shards);
    match &cfg.wal_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let existing = (0..shards).any(|s| wal::shard_path(dir, s).exists());
            let recovery = if existing {
                let recovery = recover(&cfg, dir).map_err(std::io::Error::other)?;
                let entries: u64 = recovery.entries.iter().map(|e| e.len() as u64).sum();
                board.recovered.store(entries, Ordering::Relaxed);
                if !recovery.sealed || recovery.torn > 0 {
                    eprintln!(
                        "fracdram-serve: recovered {} WAL entries from an unclean shutdown \
                         ({} torn line{} discarded)",
                        entries,
                        recovery.torn,
                        if recovery.torn == 1 { "" } else { "s" }
                    );
                }
                Some(recovery)
            } else {
                None
            };
            for shard in 0..shards {
                let entries: &[WalEntry] = match recovery {
                    Some(ref r) => &r.entries[shard],
                    None => &[],
                };
                writers.push(Some(WalWriter::create(dir, shard, &cfg, entries)?));
            }
            match recovery {
                Some(r) => {
                    for mut state in r.states {
                        state.arm_live(Arc::clone(&board));
                        states.push(state);
                    }
                }
                None => {
                    for _ in 0..shards {
                        states.push(ShardState::new(cfg.clone(), Arc::clone(&board), true));
                    }
                }
            }
        }
        None => {
            for _ in 0..shards {
                states.push(ShardState::new(cfg.clone(), Arc::clone(&board), true));
                writers.push(None);
            }
        }
    }

    let chaos: Option<ChaosPlan> = cfg.chaos.as_ref().map(ChaosSpec::plan);
    let mut senders: Vec<SyncSender<Envelope>> = Vec::with_capacity(shards);
    let mut shard_threads = Vec::with_capacity(shards);
    for (shard, (state, writer)) in states.into_iter().zip(writers).enumerate() {
        let (tx, rx) = mpsc::sync_channel::<Envelope>(cfg.queue_depth.max(1));
        senders.push(tx);
        let ctx = ShardCtx {
            shard,
            batch: cfg.batch.max(1),
            deadline: (cfg.deadline_ms > 0).then(|| Duration::from_millis(cfg.deadline_ms)),
            records: Arc::clone(&records),
            board: Arc::clone(&board),
            crashed: Arc::clone(&crashed),
            wal: writer,
            chaos,
        };
        shard_threads.push(
            std::thread::Builder::new()
                .name(format!("fracdram-shard-{shard}"))
                .spawn(move || shard_loop(state, rx, ctx))
                .expect("spawn shard thread"),
        );
    }

    let connection_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let board = Arc::clone(&board);
        let cfg = cfg.clone();
        let connection_threads = Arc::clone(&connection_threads);
        std::thread::Builder::new()
            .name("fracdram-accept".to_string())
            .spawn(move || {
                // Chaos connection drops key on this accept-order
                // ordinal; it restarts at 0 with the process, so a
                // recovered daemon redraws the same drop decisions for
                // the same connection sequence.
                let conn_ordinal = AtomicU64::new(0);
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Responses are small single lines; Nagle's
                            // algorithm would hold each one back waiting
                            // for an ACK and dominate request latency.
                            let _ = stream.set_nodelay(true);
                            let conn = conn_ordinal.fetch_add(1, Ordering::Relaxed);
                            let cfg = cfg.clone();
                            let senders = senders.clone();
                            let shutdown = Arc::clone(&shutdown);
                            let board = Arc::clone(&board);
                            let handle = std::thread::Builder::new()
                                .name("fracdram-conn".to_string())
                                .spawn(move || {
                                    connection_loop(stream, cfg, senders, shutdown, board, conn)
                                })
                                .expect("spawn connection thread");
                            connection_threads
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .push(handle);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            // Poll fast: a client's very first request
                            // eats this whole interval, so a lazy poll
                            // here shows up directly in tail latency.
                            std::thread::sleep(Duration::from_micros(500));
                        }
                        Err(_) => break,
                    }
                }
                // Dropping `senders` here lets the shard threads drain
                // and exit once every connection thread is done too.
            })
            .expect("spawn accept thread")
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        crashed,
        board,
        records,
        accept_thread,
        shard_threads,
        connection_threads,
    })
}

/// Everything a shard worker needs besides its state and queue.
struct ShardCtx {
    shard: usize,
    batch: usize,
    /// Queue-age budget; `None` (`deadline_ms == 0`) disables deadline
    /// shedding entirely.
    deadline: Option<Duration>,
    records: Arc<Mutex<Vec<RecordEntry>>>,
    board: Arc<StatusBoard>,
    crashed: Arc<AtomicBool>,
    wal: Option<WalWriter>,
    chaos: Option<ChaosPlan>,
}

fn shard_loop(mut state: ShardState, rx: Receiver<Envelope>, mut ctx: ShardCtx) {
    let mut drains = 0u64;
    loop {
        if ctx.crashed.load(Ordering::SeqCst) {
            return; // hard kill: no seal, no further replies
        }
        let first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(envelope) => envelope,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut envelopes = Vec::with_capacity(ctx.batch);
        envelopes.push(first);
        while envelopes.len() < ctx.batch {
            match rx.try_recv() {
                Ok(envelope) => envelopes.push(envelope),
                Err(_) => break,
            }
        }
        ctx.board.queue_pop(ctx.shard, envelopes.len() as u64);

        if let Some(plan) = &ctx.chaos {
            if let Some(millis) = plan.stall_before(ctx.shard, drains) {
                ctx.board.chaos_stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(millis));
            }
        }
        drains += 1;

        // Deadline shed before execution: a request that already aged
        // past its budget gets a `503` instead of a stale execution —
        // it never consumes a seq and never enters the WAL, exactly as
        // if the queue had been full when it arrived.
        let mut requests = Vec::with_capacity(envelopes.len());
        let mut metas = Vec::with_capacity(envelopes.len());
        for envelope in envelopes {
            if ctx
                .deadline
                .is_some_and(|deadline| envelope.enqueued.elapsed() > deadline)
            {
                ctx.board.deadline_shed.fetch_add(1, Ordering::Relaxed);
                let mut writer = envelope
                    .reply_to
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                let line = top_level_error(503, "deadline exceeded, request shed");
                let _ = writer.write_all(format!("{line}\n").as_bytes());
            } else {
                // Move each envelope apart instead of cloning its
                // request; the drain is the hot path and payloads can
                // be whole-row hex.
                requests.push(envelope.request);
                metas.push((envelope.canonical, envelope.reply_to));
            }
        }
        if requests.is_empty() {
            continue;
        }
        let replies: Vec<Reply> = state.execute_batch(&requests);
        debug_assert_eq!(replies.len(), metas.len());

        // Acknowledge-after-log: journal + fsync the whole drain before
        // any response line leaves the process.
        if let Some(writer) = ctx.wal.as_mut() {
            for ((canonical, _), reply) in metas.iter().zip(&replies) {
                writer.log(reply.die, reply.seq, canonical);
            }
            match writer.commit() {
                Ok(bytes) => {
                    ctx.board
                        .wal_entries
                        .fetch_add(replies.len() as u64, Ordering::Relaxed);
                    ctx.board.wal_syncs.fetch_add(1, Ordering::Relaxed);
                    ctx.board.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
                }
                Err(e) => {
                    // Never acknowledge work the log did not keep.
                    eprintln!(
                        "fracdram-serve: shard {}: WAL append failed ({e}); shard stopping",
                        ctx.shard
                    );
                    return;
                }
            }
        }
        if ctx.crashed.load(Ordering::SeqCst) {
            // Killed between log and ack: the journaled-but-unacked
            // window durability tests care about.
            return;
        }
        {
            let mut records = ctx.records.lock().unwrap_or_else(PoisonError::into_inner);
            for ((canonical, _), reply) in metas.iter().zip(&replies) {
                records.push(RecordEntry {
                    die: reply.die,
                    seq: reply.seq,
                    request: canonical.clone(),
                    response: reply.line.clone(),
                });
            }
        }
        for ((_, reply_to), reply) in metas.iter().zip(&replies) {
            // A client that hung up simply misses its response.
            let mut writer = reply_to.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = writer.write_all(format!("{}\n", reply.line).as_bytes());
        }
    }
    // Graceful drain: seal so the next incarnation knows the log is
    // complete. (A crash returns above without ever reaching this.)
    if let Some(writer) = ctx.wal.take() {
        if let Err(e) = writer.seal() {
            eprintln!("fracdram-serve: shard {}: WAL seal failed ({e})", ctx.shard);
        }
    }
}

/// What the connection loop should do after one input line.
enum LineAction {
    /// Write this front-end response to the socket.
    Respond(String),
    /// Forwarded to a shard; the shard writes the response itself.
    Forwarded,
    /// Chaos dropped the request: close the connection immediately,
    /// *before* the request reaches any shard, so the client's retry
    /// executes exactly once.
    DropConnection,
}

fn connection_loop(
    stream: TcpStream,
    cfg: ServeConfig,
    senders: Vec<SyncSender<Envelope>>,
    shutdown: Arc<AtomicBool>,
    board: Arc<StatusBoard>,
    conn: u64,
) {
    // Short read timeout so the loop can observe shutdown and the idle
    // clock even when the client goes silent mid-line; the write
    // timeout bounds how long a stalled client can hold the shard's
    // direct-reply path.
    let io_timeout = Duration::from_millis(cfg.io_timeout_ms.max(1));
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
        || stream.set_write_timeout(Some(io_timeout)).is_err()
    {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let chaos = cfg.chaos.as_ref().map(ChaosSpec::plan);
    let mut reader = BufReader::new(stream);
    // Accumulate raw bytes, not a String: `read_line` only keeps
    // partial input across a read timeout when it happens to be valid
    // UTF-8, so a timeout landing inside a multi-byte sequence would
    // silently drop bytes and corrupt the in-flight line. Bytes carry
    // across timeouts unconditionally; UTF-8 is validated once per
    // complete line (an invalid line earns a 400, not a disconnect).
    let mut buf: Vec<u8> = Vec::new();
    let mut forwarded = 0u64;
    let mut last_activity = Instant::now();
    loop {
        let before = buf.len();
        let line = match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF: client hung up
            Ok(_) => {
                let line = match std::str::from_utf8(&buf) {
                    Ok(text) => Some(text.trim().to_string()),
                    Err(_) => None,
                };
                buf.clear();
                last_activity = Instant::now();
                match line {
                    Some(line) => Some(line),
                    None => {
                        let response = top_level_error(400, "request line is not valid UTF-8");
                        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                        if w.write_all(format!("{response}\n").as_bytes()).is_err() {
                            break;
                        }
                        continue;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Partial bytes stay appended in `buf` and the next
                // pass continues the same line.
                if buf.len() > before {
                    last_activity = Instant::now();
                }
                None
            }
            Err(_) => break,
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Some(line) = line else {
            if last_activity.elapsed() > io_timeout {
                break; // idle client: free the thread
            }
            continue;
        };
        if line.is_empty() {
            continue;
        }
        // Front-end answers (status, shutdown, errors, sheds) are
        // written here; die-routed work is handed to a shard, which
        // writes the response to the socket itself.
        match handle_line(
            &line,
            &cfg,
            &senders,
            &shutdown,
            &board,
            &writer,
            chaos.as_ref(),
            conn,
            &mut forwarded,
        ) {
            LineAction::Respond(response) => {
                let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                if w.write_all(format!("{response}\n").as_bytes()).is_err() {
                    break;
                }
            }
            LineAction::Forwarded => {}
            LineAction::DropConnection => {
                board.chaos_drops.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_line(
    line: &str,
    cfg: &ServeConfig,
    senders: &[SyncSender<Envelope>],
    shutdown: &AtomicBool,
    board: &StatusBoard,
    writer: &Arc<Mutex<TcpStream>>,
    chaos: Option<&ChaosPlan>,
    conn: u64,
    forwarded: &mut u64,
) -> LineAction {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => return LineAction::Respond(top_level_error(400, &message)),
    };
    match request.die() {
        None => match request {
            Request::Status => LineAction::Respond(status_response(cfg, board)),
            _ => {
                shutdown.store(true, Ordering::SeqCst);
                LineAction::Respond(
                    Json::obj()
                        .field("ok", true)
                        .field("op", "shutdown")
                        .to_string(),
                )
            }
        },
        Some(die) => {
            if die >= cfg.dies {
                return LineAction::Respond(top_level_error(
                    400,
                    &format!("die {die} out of range (pool has {})", cfg.dies),
                ));
            }
            // Chaos drop decision before the shard ever sees the
            // request: the index counts die-routed requests on this
            // connection, so the decision is a pure function of the
            // plan and the connection's request stream.
            let index = *forwarded;
            *forwarded += 1;
            if chaos.is_some_and(|plan| plan.drop_before(conn, index)) {
                return LineAction::DropConnection;
            }
            let envelope = Envelope {
                canonical: request.canonical(),
                request,
                enqueued: Instant::now(),
                reply_to: Arc::clone(writer),
            };
            let shard = cfg.shard_of(die);
            // Gauge before the send so the matching pop (which happens
            // strictly after the shard receives the envelope) can never
            // observe the increment missing.
            board.queue_push(shard);
            match senders[shard].try_send(envelope) {
                Ok(()) => LineAction::Forwarded,
                Err(TrySendError::Full(_)) => {
                    board.queue_pop(shard, 1);
                    board.shed.fetch_add(1, Ordering::Relaxed);
                    LineAction::Respond(top_level_error(503, "shard queue full, request shed"))
                }
                Err(TrySendError::Disconnected(_)) => {
                    board.queue_pop(shard, 1);
                    LineAction::Respond(top_level_error(503, "server shutting down"))
                }
            }
        }
    }
}

fn top_level_error(code: usize, message: &str) -> String {
    Json::obj()
        .field("ok", false)
        .field("code", code)
        .field("error", message)
        .to_string()
}

fn status_response(cfg: &ServeConfig, board: &StatusBoard) -> String {
    let remaps: Vec<Json> = board
        .remaps()
        .iter()
        .map(|r| {
            Json::obj()
                .field("die", r.die)
                .field("gen", r.generation as usize)
                .field("reason", r.reason.as_str())
        })
        .collect();
    Json::obj()
        .field("ok", true)
        .field("op", "status")
        .field("group", cfg.group.to_string().as_str())
        .field("dies", cfg.dies)
        .field("shards", cfg.shards)
        .field("queue_depth", cfg.queue_depth)
        .field("columns", cfg.columns)
        .field("processed", board.processed.load(Ordering::Relaxed))
        .field("shed", board.shed.load(Ordering::Relaxed))
        .field("batched", board.batched.load(Ordering::Relaxed))
        .field("sched", cfg.sched)
        .field("sched_merges", board.sched_merges.load(Ordering::Relaxed))
        .field(
            "sched_overlapped_ticks",
            board.sched_overlapped_ticks.load(Ordering::Relaxed),
        )
        .field(
            "sched_fallbacks",
            board.sched_fallbacks.load(Ordering::Relaxed),
        )
        .field("deadline_ms", cfg.deadline_ms)
        .field("deadline_shed", board.deadline_shed.load(Ordering::Relaxed))
        .field("io_timeout_ms", cfg.io_timeout_ms)
        .field("wal", cfg.wal_dir.is_some())
        .field("wal_entries", board.wal_entries.load(Ordering::Relaxed))
        .field("wal_syncs", board.wal_syncs.load(Ordering::Relaxed))
        .field("wal_bytes", board.wal_bytes.load(Ordering::Relaxed))
        .field("recovered", board.recovered.load(Ordering::Relaxed))
        .field("breaker_trip", cfg.breaker.trip as usize)
        .field("breaker_open", cfg.breaker.open as usize)
        .field("breaker_trips", board.breaker_trips.load(Ordering::Relaxed))
        .field(
            "breaker_rejections",
            board.breaker_rejections.load(Ordering::Relaxed),
        )
        .field(
            "breaker_probes",
            board.breaker_probes.load(Ordering::Relaxed),
        )
        .field(
            "breaker_closes",
            board.breaker_closes.load(Ordering::Relaxed),
        )
        .field("chaos", cfg.chaos.is_some())
        .field(
            "chaos_die_failures",
            board.chaos_die_failures.load(Ordering::Relaxed),
        )
        .field("chaos_drops", board.chaos_drops.load(Ordering::Relaxed))
        .field("chaos_stalls", board.chaos_stalls.load(Ordering::Relaxed))
        .field(
            "queue_hwm",
            board
                .queue_hwms()
                .into_iter()
                .map(Json::from)
                .collect::<Vec<Json>>(),
        )
        .field(
            "batch_hist",
            board
                .batch_histogram()
                .into_iter()
                .map(Json::from)
                .collect::<Vec<Json>>(),
        )
        .field("remaps", remaps)
        .to_string()
}

/// Replays a canonical request log against a fresh pool and returns the
/// response log, sorted by `(die, seq)` — byte-identical to the
/// [`ServerReport::response_log`] the live server recorded for that
/// log. Runs single-threaded with batching and stalls disabled; this
/// *is* the determinism claim, see DESIGN.md. A config with a chaos
/// spec re-injects the same `(die, seq)`-keyed die failures the live
/// run saw, so chaotic runs replay exactly too.
///
/// # Errors
///
/// Returns a message naming the first malformed or out-of-range line.
pub fn run_replay(cfg: &ServeConfig, requests: &str) -> Result<String, String> {
    let board = Arc::new(StatusBoard::default());
    let mut state = ShardState::new(cfg.clone(), board, false);
    let mut replies: Vec<Reply> = Vec::new();
    for (index, line) in requests.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let request =
            Request::parse(line).map_err(|e| format!("request line {}: {e}", index + 1))?;
        let Some(die) = request.die() else {
            continue; // status/shutdown are front-end ops; nothing to replay
        };
        if die >= cfg.dies {
            return Err(format!(
                "request line {}: die {die} out of range (pool has {})",
                index + 1,
                cfg.dies
            ));
        }
        replies.push(state.execute(&request));
    }
    replies.sort_by_key(|r| (r.die, r.seq));
    let mut out = String::new();
    for reply in &replies {
        out.push_str(&reply.line);
        out.push('\n');
    }
    Ok(out)
}
