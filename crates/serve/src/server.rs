//! The TCP front-end: accept loop, connection threads, shard workers,
//! request/response recording, and the offline replay path.
//!
//! Threading model:
//!
//! * one **accept thread** polls a non-blocking listener and spawns a
//!   thread per connection;
//! * each **connection thread** reads line-delimited requests, answers
//!   `status`/`shutdown`/malformed lines immediately, and forwards
//!   die-routed work to the owning shard through a *bounded*
//!   `sync_channel` — a full queue is answered with a `503` shed
//!   response instead of blocking the client;
//! * each **shard thread** drains its queue in arrival order (up to
//!   [`ServeConfig::batch`](crate::ServeConfig::batch) requests at a
//!   time, coalescing storage runs), executes against its
//!   [`ShardState`], replies through the per-request back-channel, and
//!   appends `(die, seq, request, response)` to the shared record.
//!
//! Shutdown: the `shutdown` op (or [`ServerHandle::stop`]) flips a
//! flag; the accept thread exits and drops the shard senders, each
//! shard drains what is already queued and exits, and
//! [`ServerHandle::join`] collects the canonical logs — both sorted by
//! `(die, seq)` so they are byte-comparable with a replay.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use fracdram_experiments::Json;

use crate::pool::{Reply, ServeConfig, ShardState, StatusBoard};
use crate::protocol::Request;

/// One recorded exchange, in replay-canonical form.
#[derive(Debug, Clone)]
struct RecordEntry {
    die: usize,
    seq: u64,
    request: String,
    response: String,
}

struct Envelope {
    request: Request,
    canonical: String,
    /// The connection's shared write half. The shard writes the
    /// response straight to the socket instead of bouncing it back
    /// through the connection thread — on a loaded (or single-core)
    /// host that removes a thread wake-up from every request's critical
    /// path. The mutex keeps each written line atomic against the
    /// connection thread's own front-end responses.
    reply_to: Arc<Mutex<TcpStream>>,
}

/// Everything [`ServerHandle::join`] returns after the daemon drains.
#[derive(Debug)]
pub struct ServerReport {
    /// Canonical request log, one line per executed request, sorted by
    /// `(die, seq)`. Feeding this to [`run_replay`] reproduces
    /// `response_log` byte for byte.
    pub request_log: String,
    /// Response log matching `request_log` line for line.
    pub response_log: String,
    /// Requests executed.
    pub processed: u64,
    /// Requests shed with `503`.
    pub shed: u64,
}

/// A running server. Dropping the handle does **not** stop the daemon;
/// call [`ServerHandle::stop`] (or send a `shutdown` request) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    board: Arc<StatusBoard>,
    records: Arc<Mutex<Vec<RecordEntry>>>,
    accept_thread: JoinHandle<()>,
    shard_threads: Vec<JoinHandle<()>>,
    connection_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters this server publishes.
    pub fn board(&self) -> &StatusBoard {
        &self.board
    }

    /// Asks the server to stop accepting and drain, without waiting.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by [`ServerHandle::stop`]
    /// or a client's `shutdown` op).
    pub fn is_stopped(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Stops the server (if still running) and waits for every thread
    /// to drain, then returns the canonical logs.
    ///
    /// # Panics
    ///
    /// Panics when a server thread panicked.
    pub fn join(self) -> ServerReport {
        self.stop();
        self.accept_thread.join().expect("accept thread panicked");
        let connections = std::mem::take(&mut *self.connection_threads.lock().unwrap());
        for handle in connections {
            handle.join().expect("connection thread panicked");
        }
        for handle in self.shard_threads {
            handle.join().expect("shard thread panicked");
        }
        let mut records = std::mem::take(&mut *self.records.lock().unwrap());
        records.sort_by_key(|r| (r.die, r.seq));
        let mut request_log = String::new();
        let mut response_log = String::new();
        for record in &records {
            request_log.push_str(&record.request);
            request_log.push('\n');
            response_log.push_str(&record.response);
            response_log.push('\n');
        }
        ServerReport {
            request_log,
            response_log,
            processed: self.board.processed.load(Ordering::Relaxed),
            shed: self.board.shed.load(Ordering::Relaxed),
        }
    }
}

/// Starts the daemon on `127.0.0.1:port` (0 picks a free port).
///
/// # Errors
///
/// Propagates listener binding failures.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    start_on(cfg, 0)
}

/// [`start`] with an explicit port.
///
/// # Errors
///
/// Propagates listener binding failures.
pub fn start_on(cfg: ServeConfig, port: u16) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let board = Arc::new(StatusBoard::for_shards(cfg.shards.max(1)));
    let records: Arc<Mutex<Vec<RecordEntry>>> = Arc::new(Mutex::new(Vec::new()));
    let shards = cfg.shards.max(1);

    let mut senders: Vec<SyncSender<Envelope>> = Vec::with_capacity(shards);
    let mut shard_threads = Vec::with_capacity(shards);
    for shard in 0..shards {
        let (tx, rx) = mpsc::sync_channel::<Envelope>(cfg.queue_depth.max(1));
        senders.push(tx);
        let state = ShardState::new(cfg.clone(), Arc::clone(&board), true);
        let records = Arc::clone(&records);
        let batch = cfg.batch.max(1);
        let shard_board = Arc::clone(&board);
        shard_threads.push(
            std::thread::Builder::new()
                .name(format!("fracdram-shard-{shard}"))
                .spawn(move || shard_loop(state, rx, records, batch, shard, shard_board))
                .expect("spawn shard thread"),
        );
    }

    let connection_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let board = Arc::clone(&board);
        let cfg = cfg.clone();
        let connection_threads = Arc::clone(&connection_threads);
        std::thread::Builder::new()
            .name("fracdram-accept".to_string())
            .spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Responses are small single lines; Nagle's
                            // algorithm would hold each one back waiting
                            // for an ACK and dominate request latency.
                            let _ = stream.set_nodelay(true);
                            let cfg = cfg.clone();
                            let senders = senders.clone();
                            let shutdown = Arc::clone(&shutdown);
                            let board = Arc::clone(&board);
                            let handle = std::thread::Builder::new()
                                .name("fracdram-conn".to_string())
                                .spawn(move || {
                                    connection_loop(stream, cfg, senders, shutdown, board)
                                })
                                .expect("spawn connection thread");
                            connection_threads.lock().unwrap().push(handle);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            // Poll fast: a client's very first request
                            // eats this whole interval, so a lazy poll
                            // here shows up directly in tail latency.
                            std::thread::sleep(Duration::from_micros(500));
                        }
                        Err(_) => break,
                    }
                }
                // Dropping `senders` here lets the shard threads drain
                // and exit once every connection thread is done too.
            })
            .expect("spawn accept thread")
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        board,
        records,
        accept_thread,
        shard_threads,
        connection_threads,
    })
}

fn shard_loop(
    mut state: ShardState,
    rx: Receiver<Envelope>,
    records: Arc<Mutex<Vec<RecordEntry>>>,
    batch: usize,
    shard: usize,
    board: Arc<StatusBoard>,
) {
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(envelope) => envelope,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut requests = Vec::with_capacity(batch);
        let mut metas = Vec::with_capacity(batch);
        // Move each envelope apart instead of cloning its request; the
        // drain is the hot path and payloads can be whole-row hex.
        requests.push(first.request);
        metas.push((first.canonical, first.reply_to));
        while requests.len() < batch {
            match rx.try_recv() {
                Ok(envelope) => {
                    requests.push(envelope.request);
                    metas.push((envelope.canonical, envelope.reply_to));
                }
                Err(_) => break,
            }
        }
        board.queue_pop(shard, requests.len() as u64);
        let replies: Vec<Reply> = state.execute_batch(&requests);
        debug_assert_eq!(replies.len(), metas.len());
        {
            let mut records = records.lock().unwrap();
            for ((canonical, _), reply) in metas.iter().zip(&replies) {
                records.push(RecordEntry {
                    die: reply.die,
                    seq: reply.seq,
                    request: canonical.clone(),
                    response: reply.line.clone(),
                });
            }
        }
        for ((_, reply_to), reply) in metas.iter().zip(&replies) {
            // A client that hung up simply misses its response.
            let mut writer = reply_to.lock().unwrap();
            let _ = writer.write_all(format!("{}\n", reply.line).as_bytes());
        }
    }
}

fn connection_loop(
    stream: TcpStream,
    cfg: ServeConfig,
    senders: Vec<SyncSender<Envelope>>,
    shutdown: Arc<AtomicBool>,
    board: Arc<StatusBoard>,
) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Front-end answers (status, shutdown, errors, sheds) are
        // written here; die-routed work is handed to a shard, which
        // writes the response to the socket itself.
        if let Some(response) = handle_line(line, &cfg, &senders, &shutdown, &board, &writer) {
            let mut w = writer.lock().unwrap();
            if w.write_all(format!("{response}\n").as_bytes()).is_err() {
                break;
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn handle_line(
    line: &str,
    cfg: &ServeConfig,
    senders: &[SyncSender<Envelope>],
    shutdown: &AtomicBool,
    board: &StatusBoard,
    writer: &Arc<Mutex<TcpStream>>,
) -> Option<String> {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => return Some(top_level_error(400, &message)),
    };
    match request.die() {
        None => match request {
            Request::Status => Some(status_response(cfg, board)),
            _ => {
                shutdown.store(true, Ordering::SeqCst);
                Some(
                    Json::obj()
                        .field("ok", true)
                        .field("op", "shutdown")
                        .to_string(),
                )
            }
        },
        Some(die) => {
            if die >= cfg.dies {
                return Some(top_level_error(
                    400,
                    &format!("die {die} out of range (pool has {})", cfg.dies),
                ));
            }
            let envelope = Envelope {
                canonical: request.canonical(),
                request,
                reply_to: Arc::clone(writer),
            };
            let shard = cfg.shard_of(die);
            // Gauge before the send so the matching pop (which happens
            // strictly after the shard receives the envelope) can never
            // observe the increment missing.
            board.queue_push(shard);
            match senders[shard].try_send(envelope) {
                Ok(()) => None,
                Err(TrySendError::Full(_)) => {
                    board.queue_pop(shard, 1);
                    board.shed.fetch_add(1, Ordering::Relaxed);
                    Some(top_level_error(503, "shard queue full, request shed"))
                }
                Err(TrySendError::Disconnected(_)) => {
                    board.queue_pop(shard, 1);
                    Some(top_level_error(503, "server shutting down"))
                }
            }
        }
    }
}

fn top_level_error(code: usize, message: &str) -> String {
    Json::obj()
        .field("ok", false)
        .field("code", code)
        .field("error", message)
        .to_string()
}

fn status_response(cfg: &ServeConfig, board: &StatusBoard) -> String {
    let remaps: Vec<Json> = board
        .remaps()
        .iter()
        .map(|r| {
            Json::obj()
                .field("die", r.die)
                .field("gen", r.generation as usize)
                .field("reason", r.reason.as_str())
        })
        .collect();
    Json::obj()
        .field("ok", true)
        .field("op", "status")
        .field("group", cfg.group.to_string().as_str())
        .field("dies", cfg.dies)
        .field("shards", cfg.shards)
        .field("queue_depth", cfg.queue_depth)
        .field("columns", cfg.columns)
        .field("processed", board.processed.load(Ordering::Relaxed))
        .field("shed", board.shed.load(Ordering::Relaxed))
        .field("batched", board.batched.load(Ordering::Relaxed))
        .field("sched", cfg.sched)
        .field("sched_merges", board.sched_merges.load(Ordering::Relaxed))
        .field(
            "sched_overlapped_ticks",
            board.sched_overlapped_ticks.load(Ordering::Relaxed),
        )
        .field(
            "sched_fallbacks",
            board.sched_fallbacks.load(Ordering::Relaxed),
        )
        .field(
            "queue_hwm",
            board
                .queue_hwms()
                .into_iter()
                .map(Json::from)
                .collect::<Vec<Json>>(),
        )
        .field(
            "batch_hist",
            board
                .batch_histogram()
                .into_iter()
                .map(Json::from)
                .collect::<Vec<Json>>(),
        )
        .field("remaps", remaps)
        .to_string()
}

/// Replays a canonical request log against a fresh pool and returns the
/// response log, sorted by `(die, seq)` — byte-identical to the
/// [`ServerReport::response_log`] the live server recorded for that
/// log. Runs single-threaded with batching and stalls disabled; this
/// *is* the determinism claim, see DESIGN.md.
///
/// # Errors
///
/// Returns a message naming the first malformed or out-of-range line.
pub fn run_replay(cfg: &ServeConfig, requests: &str) -> Result<String, String> {
    let board = Arc::new(StatusBoard::default());
    let mut state = ShardState::new(cfg.clone(), board, false);
    let mut replies: Vec<Reply> = Vec::new();
    for (index, line) in requests.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let request =
            Request::parse(line).map_err(|e| format!("request line {}: {e}", index + 1))?;
        let Some(die) = request.die() else {
            continue; // status/shutdown are front-end ops; nothing to replay
        };
        if die >= cfg.dies {
            return Err(format!(
                "request line {}: die {die} out of range (pool has {})",
                index + 1,
                cfg.dies
            ));
        }
        replies.push(state.execute(&request));
    }
    replies.sort_by_key(|r| (r.die, r.seq));
    let mut out = String::new();
    for reply in &replies {
        out.push_str(&reply.line);
        out.push('\n');
    }
    Ok(out)
}
