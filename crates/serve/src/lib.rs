//! # fracdram-serve — FracDRAM as a service
//!
//! The experiment fleet proves the paper's primitives work; this crate
//! serves them. A persistent daemon owns a sharded pool of simulated
//! modules and exposes the useful primitives to concurrent clients
//! over a line-delimited JSON protocol on TCP:
//!
//! * `trng` — whitened random bit streams (QUAC-style four-row TRNG);
//! * `puf` / `enroll` / `verify` — Frac-PUF challenge→response
//!   evaluation, enrollment with a per-die signature cache, and
//!   threshold authentication;
//! * `write` / `copy` / `read` — Frac write and in-array row copy as a
//!   storage primitive;
//! * `fault` / `mark-bad` / `status` — fault-injection control,
//!   administrative die retirement, and the health/remap report.
//!
//! Production concerns are the point of the crate: storage requests
//! coalesce into combined `softmc` programs per die, bounded per-shard
//! queues shed overload with `503` responses, a die that fails (or
//! trips its fault-event limit) is remapped to fresh silicon without
//! dropping requests, and the recorded request log replays to a
//! byte-identical response log ([`server::run_replay`]). See DESIGN.md
//! §"FracDRAM as a service" for why the determinism holds and
//! EXPERIMENTS.md for the measured serving latencies.
//!
//! Durability and failure testing (PR 9): every executed request is
//! journaled to a checksummed per-shard [`wal`] before its response is
//! acknowledged, so a killed daemon recovers byte-identical state by
//! replaying the log ([`server::recover`]); a per-die [`breaker`]
//! trips persistent failures open ahead of the remap path; and a
//! seeded [`chaos`] plan injects die failures, connection drops, shard
//! stalls, and kill points deterministically for the `chaos_sweep`
//! harness. See DESIGN.md §"Crash-safe durability".

#![warn(missing_docs)]

pub mod breaker;
pub mod chaos;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod wal;

pub use breaker::{Admission, Breaker, BreakerConfig};
pub use chaos::{ChaosConfig, ChaosPlan, ChaosSpec};
pub use pool::{RemapEvent, Reply, ServeConfig, ShardState, StatusBoard};
pub use protocol::{bits_to_hex, hex_to_bits, Request, WritePayload};
pub use server::{recover, run_replay, start, start_on, Recovery, ServerHandle, ServerReport};
pub use wal::{WalEntry, WalShard, WalWriter};
