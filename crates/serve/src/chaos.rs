//! Seeded chaos injection for the daemon, in the house style of
//! [`fracdram_model::faults`]: a [`ChaosPlan`] is a **pure function of
//! `(seed, ChaosConfig)`** with zero stored state — every injection
//! decision is a hash of the plan seed and the event's coordinates, so
//! two plans built from the same inputs inject the *identical* event
//! stream no matter the thread count, wall-clock timing, or `--jobs`
//! level of the harness driving them.
//!
//! Coordinates are chosen so chaos composes with the replay contract:
//!
//! * **die failures** key on `(die, seq)` — the per-die request ordinal
//!   — so recovery replay of a WAL re-injects exactly the failures the
//!   live run saw, and the recovered breaker/remap state matches;
//! * **connection drops** key on `(connection ordinal, request index)`
//!   and are applied *before* the request is forwarded to a shard, so a
//!   dropped request was never executed and the client's resend
//!   executes exactly once;
//! * **shard stalls** key on `(shard, drain ordinal)` and only add
//!   latency, never reorder a shard's arrival-order drain;
//! * **kill points** key on a request ordinal, marking where a chaos
//!   harness hard-stops the process.
//!
//! Membership uses the nested-threshold trick from `FaultPlan`
//! (`uniform(coords) < density`): raising a density strictly grows the
//! injected set, which is what makes breaker/chaos counters **monotone
//! in chaos density** — the invariant `chaos_sweep` asserts.

use fracdram_stats::rng::mix;

/// Domain separator so chaos decisions never correlate with the fault
/// model or the pool seed derivation.
const CHAOS_SEED_SALT: u64 = 0xC4A0_5FD7_11AD_0E55;

const SALT_DIE_FAIL: u64 = 1;
const SALT_DROP: u64 = 2;
const SALT_STALL: u64 = 3;
const SALT_KILL: u64 = 4;

/// Densities (and magnitudes) of the injected failure classes. All
/// densities are probabilities in `[0, 1]`; `0` disables the class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability a given `(die, seq)` execution fails at the device
    /// level (surfaces as a die error → remap → breaker failure).
    pub die_fail: f64,
    /// Probability a given `(connection, request index)` is dropped
    /// before forwarding (the connection is closed under the client).
    pub drop: f64,
    /// Probability a given `(shard, drain)` stalls before executing.
    pub stall: f64,
    /// How long a stalled drain sleeps.
    pub stall_ms: u64,
}

impl ChaosConfig {
    /// Everything disabled — the plan injects nothing.
    pub fn none() -> ChaosConfig {
        ChaosConfig {
            die_fail: 0.0,
            drop: 0.0,
            stall: 0.0,
            stall_ms: 5,
        }
    }

    /// Whether any class can fire.
    pub fn enabled(&self) -> bool {
        self.die_fail > 0.0 || self.drop > 0.0 || self.stall > 0.0
    }
}

/// `(seed, config)` pair carried in [`crate::ServeConfig`]; the WAL
/// fingerprint pins it so recovery replays under the same plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Plan seed.
    pub seed: u64,
    /// Injection densities.
    pub config: ChaosConfig,
}

impl ChaosSpec {
    /// Builds the (stateless) plan for this spec.
    pub fn plan(&self) -> ChaosPlan {
        ChaosPlan::new(self.seed, self.config)
    }
}

/// The deterministic injection oracle. Copy-cheap and lock-free: every
/// query hashes its coordinates against the seed.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlan {
    seed: u64,
    config: ChaosConfig,
}

impl ChaosPlan {
    /// A plan over `config`, keyed by `seed`.
    pub fn new(seed: u64, config: ChaosConfig) -> ChaosPlan {
        ChaosPlan {
            seed: mix(seed ^ CHAOS_SEED_SALT, &[]),
            config,
        }
    }

    /// The configured densities.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Uniform in `[0, 1)` from the event coordinates; the same
    /// coordinates always draw the same number, so a higher density is
    /// a strict superset of a lower one (nested membership).
    fn uniform(&self, salt: u64, coords: &[u64]) -> f64 {
        let mut parts = Vec::with_capacity(coords.len() + 1);
        parts.push(salt);
        parts.extend_from_slice(coords);
        (mix(self.seed, &parts) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether execution `seq` on `die` fails at the device level.
    pub fn die_fails(&self, die: usize, seq: u64) -> bool {
        self.config.die_fail > 0.0
            && self.uniform(SALT_DIE_FAIL, &[die as u64, seq]) < self.config.die_fail
    }

    /// Whether request `index` on connection `conn` is dropped before
    /// it is forwarded to a shard.
    pub fn drop_before(&self, conn: u64, index: u64) -> bool {
        self.config.drop > 0.0 && self.uniform(SALT_DROP, &[conn, index]) < self.config.drop
    }

    /// Whether drain `drain` of `shard` stalls, and for how long.
    pub fn stall_before(&self, shard: usize, drain: u64) -> Option<u64> {
        (self.config.stall > 0.0
            && self.uniform(SALT_STALL, &[shard as u64, drain]) < self.config.stall)
            .then_some(self.config.stall_ms)
    }

    /// The request ordinal (within `total`) at which a chaos harness
    /// kills the process, if any. Deterministic in the seed alone so
    /// the uninterrupted reference run of the same workload knows the
    /// kill point without ever crashing.
    pub fn kill_point(&self, total: usize) -> Option<usize> {
        if total < 2 {
            return None;
        }
        // Land strictly inside the run: never before the first request
        // (nothing to recover) and never after the last (no crash).
        Some(1 + (mix(self.seed, &[SALT_KILL]) % (total as u64 - 1)) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(d: f64) -> ChaosConfig {
        ChaosConfig {
            die_fail: d,
            drop: d / 2.0,
            stall: d / 4.0,
            stall_ms: 5,
        }
    }

    #[test]
    fn same_inputs_same_plan() {
        let a = ChaosPlan::new(7, dense(0.1));
        let b = ChaosPlan::new(7, dense(0.1));
        for die in 0..4 {
            for seq in 0..64 {
                assert_eq!(a.die_fails(die, seq), b.die_fails(die, seq));
                assert_eq!(
                    a.drop_before(die as u64, seq),
                    b.drop_before(die as u64, seq)
                );
                assert_eq!(a.stall_before(die, seq), b.stall_before(die, seq));
            }
        }
        assert_eq!(a.kill_point(48), b.kill_point(48));
    }

    #[test]
    fn densities_nest() {
        // The defining property: every event injected at a lower
        // density is also injected at any higher one.
        let low = ChaosPlan::new(11, dense(0.05));
        let high = ChaosPlan::new(11, dense(0.25));
        let mut low_count = 0;
        let mut high_count = 0;
        for die in 0..8 {
            for seq in 0..256 {
                if low.die_fails(die, seq) {
                    low_count += 1;
                    assert!(high.die_fails(die, seq), "nested membership violated");
                }
                high_count += usize::from(high.die_fails(die, seq));
            }
        }
        assert!(low_count > 0, "0.05 over 2048 draws should fire");
        assert!(high_count > low_count);
    }

    #[test]
    fn zero_density_injects_nothing() {
        let plan = ChaosPlan::new(3, ChaosConfig::none());
        for die in 0..8 {
            for seq in 0..128 {
                assert!(!plan.die_fails(die, seq));
                assert!(!plan.drop_before(die as u64, seq));
                assert!(plan.stall_before(die, seq).is_none());
            }
        }
        assert!(!ChaosConfig::none().enabled());
    }

    #[test]
    fn kill_point_lands_strictly_inside() {
        for seed in 0..64 {
            let plan = ChaosPlan::new(seed, dense(0.1));
            let k = plan.kill_point(48).unwrap();
            assert!((1..48).contains(&k), "seed {seed}: kill at {k}");
        }
        assert_eq!(ChaosPlan::new(0, dense(0.1)).kill_point(1), None);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosPlan::new(1, dense(0.1));
        let b = ChaosPlan::new(2, dense(0.1));
        let differs = (0..256).any(|seq| a.die_fails(0, seq) != b.die_fails(0, seq));
        assert!(differs);
    }
}
