//! **Chaos sweep**: crash/recover invariants of `fracdram-serve` versus
//! injected chaos density.
//!
//! Each round of the sweep runs one complete kill→recover scenario at
//! one chaos density: start a WAL-backed daemon, drive a deterministic
//! lock-step workload through a real TCP client (reconnecting through
//! injected connection drops), hard-kill the process state at the
//! plan's kill point, damage the log's tail, recover — twice, to prove
//! recovery itself is deterministic — restart from the WAL, finish the
//! workload, and digest a full read-back + `verify` sweep. The asserted
//! invariants are the ISSUE-9 acceptance criteria:
//!
//! * **no acknowledged response is lost**: every response the client
//!   received before the kill is present verbatim in the recovered
//!   replay log (acknowledge-after-log);
//! * **recovery is exact**: two independent recoveries of the same WAL
//!   produce byte-identical logs, and the torn tail is discarded, not
//!   fatal;
//! * **determinism at any `--jobs`**: every table column is a pure
//!   function of `(chaos seed, density)` — the CI smoke diffs the
//!   stdout of `--jobs 1` against `--jobs 8`;
//! * **monotone chaos**: injected die failures (and the breaker
//!   activity they cause) never decrease as density rises, because
//!   `ChaosPlan` membership is nested (see `fracdram_serve::chaos`).
//!
//! Wall-clock timing (the `serve/recovery_ns` bench record) is emitted
//! only via `--json`, keeping stdout byte-reproducible.
//!
//! ```text
//! cargo run --release -p fracdram-serve --bin chaos_sweep -- \
//!     --chaos-seed 11 --jobs 8 --keep-going --json /tmp/chaos.json
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::Instant;

use fracdram_bench::{format_records, Record};
use fracdram_experiments::{fleet, render, Args, Json, TaskKey};
use fracdram_model::GroupId;
use fracdram_serve::{
    recover, start, wal, BreakerConfig, ChaosConfig, ChaosPlan, ChaosSpec, ServeConfig, StatusBoard,
};
use fracdram_softmc::RunMetrics;

/// Injected die-failure density ladder; drops and stalls scale with it.
const DENSITIES: &[f64] = &[0.0, 0.02, 0.08, 0.2];

/// Requests in the lock-step workload of every round.
const WORKLOAD: usize = 48;

/// Dies in each round's (deliberately small) pool.
const DIES: usize = 3;

/// The chaos densities at one ladder point.
fn chaos_config(density: f64) -> ChaosConfig {
    ChaosConfig {
        die_fail: density,
        drop: density / 2.0,
        stall: density / 4.0,
        stall_ms: 5,
    }
}

/// The served pool of one round: small and fast, with an aggressive
/// breaker so even the 48-request workload can trip, probe, and
/// re-close it.
fn round_config(chaos_seed: u64, density: f64, wal_dir: PathBuf) -> ServeConfig {
    let config = chaos_config(density);
    ServeConfig {
        dies: DIES,
        shards: 2,
        columns: 64,
        batch: 4,
        breaker: BreakerConfig { trip: 2, open: 3 },
        chaos: config.enabled().then_some(ChaosSpec {
            seed: chaos_seed,
            config,
        }),
        wal_dir: Some(wal_dir),
        ..ServeConfig::default()
    }
}

/// The i-th workload request. Pure in `index`, mixing every state class
/// the WAL must reconstruct: stored rows, the enrollment cache, TRNG
/// clock advancement, and read-backs.
fn request_line(index: usize, columns: usize) -> String {
    let die = index % DIES;
    // Storage stays on bank 1 so it never disturbs the TRNG quad.
    let doc = match index % 6 {
        0 => Json::obj()
            .field("op", "write")
            .field("die", die)
            .field("bank", 1usize)
            .field("row", 3 + index % 16)
            .field("fill", index.is_multiple_of(4))
            .field("frac", index % 3),
        1 => Json::obj()
            .field("op", "read")
            .field("die", die)
            .field("bank", 1usize)
            .field("row", 3 + index % 16),
        2 => Json::obj()
            .field("op", "enroll")
            .field("die", die)
            .field("bank", 1usize)
            .field("row", 44usize)
            .field("reps", 2usize),
        3 => Json::obj()
            .field("op", "verify")
            .field("die", die)
            .field("bank", 1usize)
            .field("row", 44usize),
        4 => Json::obj()
            .field("op", "copy")
            .field("die", die)
            .field("bank", 1usize)
            .field("src", 3 + index % 16)
            .field("dst", 20 + index % 4),
        _ => Json::obj()
            .field("op", "trng")
            .field("die", die)
            .field("bits", columns),
    };
    doc.to_string()
}

/// A lock-step client that rides through chaos connection drops by
/// reconnecting and resending — safe exactly because drops are injected
/// *before* the request reaches a shard, so a resent request executes
/// once.
struct Driver {
    addr: String,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    resends: u64,
}

impl Driver {
    fn connect(addr: &str) -> Driver {
        let (writer, reader) = Driver::open(addr);
        Driver {
            addr: addr.to_string(),
            writer,
            reader,
            resends: 0,
        }
    }

    fn open(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).expect("connect to round daemon");
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().expect("clone stream");
        (writer, BufReader::new(stream))
    }

    /// Sends one line and waits for its response, reconnecting through
    /// dropped connections. Panics after an implausible resend streak
    /// (the plan draws each drop independently per connection).
    fn send(&mut self, line: &str) -> String {
        for _ in 0..100 {
            let sent = self.writer.write_all(format!("{line}\n").as_bytes());
            let mut response = String::new();
            if sent.is_ok() {
                match self.reader.read_line(&mut response) {
                    Ok(n) if n > 0 => return response.trim_end().to_string(),
                    _ => {}
                }
            }
            self.resends += 1;
            let (writer, reader) = Driver::open(&self.addr);
            self.writer = writer;
            self.reader = reader;
        }
        panic!("request dropped 100 times in a row: {line}");
    }
}

/// Board counters a round accumulates across both incarnations.
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    wal_entries: u64,
    injected: u64,
    trips: u64,
    rejections: u64,
    probes: u64,
    closes: u64,
    drops: u64,
    stalls: u64,
}

impl Counters {
    fn absorb(&mut self, board: &StatusBoard) {
        self.wal_entries += board.wal_entries.load(Ordering::Relaxed);
        self.injected += board.chaos_die_failures.load(Ordering::Relaxed);
        self.trips += board.breaker_trips.load(Ordering::Relaxed);
        self.rejections += board.breaker_rejections.load(Ordering::Relaxed);
        self.probes += board.breaker_probes.load(Ordering::Relaxed);
        self.closes += board.breaker_closes.load(Ordering::Relaxed);
        self.drops += board.chaos_drops.load(Ordering::Relaxed);
        self.stalls += board.chaos_stalls.load(Ordering::Relaxed);
    }
}

/// One round's deterministic report (plus the `--json`-only timing).
#[derive(Debug, Clone)]
struct RoundReport {
    kill_at: usize,
    acked: usize,
    recovered: usize,
    torn: usize,
    resends: u64,
    counters: Counters,
    digest: u64,
    recovery_ns: f64,
}

/// Runs one complete kill→recover scenario. Every field of the report
/// except `recovery_ns` is a pure function of `(chaos_seed, density)`.
fn chaos_round(chaos_seed: u64, density: f64, dir: &Path) -> RoundReport {
    let _ = std::fs::remove_dir_all(dir);
    let cfg = round_config(chaos_seed, density, dir.to_path_buf());
    // The kill point comes from the same plan machinery even when the
    // round's chaos is otherwise disarmed (density 0 tests pure WAL
    // recovery).
    let kill_at = ChaosPlan::new(chaos_seed, chaos_config(density))
        .kill_point(WORKLOAD)
        .expect("workload is large enough for a kill point");

    // Phase 1: drive lock-step to the kill point, then die hard.
    let handle = start(cfg.clone()).expect("start round daemon");
    let addr = handle.addr().to_string();
    let mut driver = Driver::connect(&addr);
    let mut acked: Vec<String> = Vec::new();
    for index in 0..kill_at {
        acked.push(driver.send(&request_line(index, cfg.columns)));
    }
    let mut counters = Counters::default();
    counters.absorb(handle.board());
    // In-process stand-in for `kill -9`: threads exit without sealing
    // the WAL or flushing unacknowledged replies.
    handle.crash();

    // Damage the tail the way a mid-append kill would: a dangling
    // partial line recovery must discard without losing the prefix.
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(wal::shard_path(dir, 0))
            .expect("open shard-0 WAL");
        file.write_all(b"E 9 9 12").expect("append torn tail");
    }

    // Recover twice: the logs must agree byte for byte, every
    // acknowledged die-routed response must be in them, and the torn
    // line must be discarded, not fatal.
    let started = Instant::now();
    let first = recover(&cfg, dir).expect("recovery");
    let recovery_ns = started.elapsed().as_nanos() as f64;
    let second = recover(&cfg, dir).expect("second recovery");
    assert_eq!(
        first.response_log, second.response_log,
        "two recoveries of one WAL diverged"
    );
    assert_eq!(first.request_log, second.request_log);
    assert!(!first.sealed, "a crashed daemon must not leave a seal");
    assert!(first.torn >= 1, "the injected torn tail went unnoticed");
    let recovered_lines: std::collections::BTreeSet<&str> = first.response_log.lines().collect();
    for response in acked.iter().filter(|r| r.contains("\"seq\"")) {
        assert!(
            recovered_lines.contains(response.as_str()),
            "acknowledged response lost across kill->recover: {response}"
        );
    }
    let recovered = first.response_log.lines().count();

    // Phase 2: restart from the WAL (start() recovers and compacts),
    // finish the workload, and digest a read-back + verify sweep. The
    // per-die executed sequence of phase 1 + phase 2 equals the
    // uninterrupted run's, so the digest is also what an never-killed
    // daemon would produce — the kill_recover integration test pins
    // that equality via cmp.
    let handle = start(cfg.clone()).expect("restart round daemon");
    assert_eq!(
        handle.board().recovered.load(Ordering::Relaxed),
        recovered as u64,
        "restart replayed a different entry count than offline recovery"
    );
    let addr = handle.addr().to_string();
    let mut driver2 = Driver::connect(&addr);
    for index in kill_at..WORKLOAD {
        driver2.send(&request_line(index, cfg.columns));
    }
    let mut sweep = String::new();
    for die in 0..DIES {
        for row in (3usize..19).chain(20..24) {
            let line = Json::obj()
                .field("op", "read")
                .field("die", die)
                .field("bank", 1usize)
                .field("row", row)
                .to_string();
            sweep.push_str(&driver2.send(&line));
            sweep.push('\n');
        }
        let line = Json::obj()
            .field("op", "verify")
            .field("die", die)
            .field("bank", 1usize)
            .field("row", 44usize)
            .to_string();
        sweep.push_str(&driver2.send(&line));
        sweep.push('\n');
    }
    counters.absorb(handle.board());
    let report = handle.join();
    drop(report);
    let _ = std::fs::remove_dir_all(dir);

    RoundReport {
        kill_at,
        acked: acked.len(),
        recovered,
        torn: first.torn,
        resends: driver.resends + driver2.resends,
        counters,
        digest: wal::fnv1a64(sweep.as_bytes()),
        recovery_ns,
    }
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "chaos_sweep",
        "kill->recover invariants of fracdram-serve vs injected chaos density",
        &[
            ("chaos-seed", "chaos plan seed for every round (default 11)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("retries", "extra attempts for a failing round (default 0)"),
            ("keep-going", "complete remaining rounds after a failure"),
            (
                "fail-fast",
                "stop claiming rounds after a failure (default)",
            ),
            ("json", "write the serve/recovery_ns bench record here"),
        ],
    ) {
        return;
    }
    let chaos_seed = args.u64("chaos-seed", 11);
    let jobs = args.jobs();
    let policy = args.failure_policy();
    let json_path = args.json_path().map(str::to_string);
    args.reject_unknown();

    let plan: Vec<TaskKey> = (0..DENSITIES.len())
        .map(|variant| TaskKey::new(GroupId::B, 0, 0).with_variant(variant))
        .collect();
    let base_dir = std::env::temp_dir().join(format!(
        "fracdram-chaos-{}-{chaos_seed}",
        std::process::id()
    ));
    let run = fleet::run_with(&plan, chaos_seed, jobs, policy, |key, _task_seed| {
        let dir = base_dir.join(format!("round-{}", key.variant));
        (
            chaos_round(chaos_seed, DENSITIES[key.variant], &dir),
            RunMetrics::default(),
        )
    });
    eprintln!("{}", run.summary());

    println!(
        "{}",
        render::header("chaos sweep — kill->recover invariants vs chaos density")
    );
    println!(
        "(chaos seed {chaos_seed}; {WORKLOAD} requests over {DIES} dies per round; \
         drop = die-fail/2, stall = die-fail/4)\n"
    );
    println!(
        "  {:>8} {:>5} {:>6} {:>5} {:>5} {:>7} {:>4} {:>6} {:>4} {:>6} {:>6} {:>6}  digest",
        "die-fail",
        "kill",
        "acked",
        "wal",
        "torn",
        "resend",
        "inj",
        "trips",
        "rej",
        "probes",
        "closes",
        "drops"
    );
    let mut last_injected = 0u64;
    let mut monotone = true;
    for report in &run.tasks {
        let density = DENSITIES[report.key.variant];
        match report.ok() {
            Some(r) => {
                println!(
                    "  {:>8.3} {:>5} {:>6} {:>5} {:>5} {:>7} {:>4} {:>6} {:>4} {:>6} {:>6} {:>6}  {:016x}",
                    density,
                    r.kill_at,
                    r.acked,
                    r.recovered,
                    r.torn,
                    r.resends,
                    r.counters.injected,
                    r.counters.trips,
                    r.counters.rejections,
                    r.counters.probes,
                    r.counters.closes,
                    r.counters.drops,
                    r.digest
                );
                monotone &= r.counters.injected >= last_injected;
                last_injected = r.counters.injected;
            }
            None => println!("  {density:>8.3} round failed"),
        }
    }
    println!(
        "\n(injected die failures are {} in density: plan membership is nested)",
        if monotone { "monotone" } else { "NOT MONOTONE" }
    );
    if !monotone {
        eprintln!("chaos_sweep: injected-event count decreased as density rose");
        std::process::exit(1);
    }

    if let Some(path) = json_path {
        let mut times: Vec<f64> = run
            .tasks
            .iter()
            .filter_map(|t| t.ok().map(|r| r.recovery_ns))
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_ns = if times.is_empty() {
            0.0
        } else {
            times[times.len() / 2]
        };
        let records = [Record {
            bench: "serve/recovery_ns".to_string(),
            median_ns,
            iters: times.len() as u64,
        }];
        if let Err(e) = std::fs::write(&path, format_records(&records)) {
            fracdram_experiments::exit_json_write_error(&path, &e);
        }
        // Stderr, like every fleet summary line: stdout must stay
        // byte-identical whether or not --json is requested.
        eprintln!("chaos_sweep: wrote 1 bench record to {path}");
    }

    if run.failed() > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep's acceptance property, sized down for CI: same seed +
    /// density ⇒ identical reports, and injected events are monotone
    /// in density.
    #[test]
    fn rounds_are_deterministic_and_monotone() {
        let dir = std::env::temp_dir().join(format!("fracdram-chaos-test-{}", std::process::id()));
        let a = chaos_round(11, 0.2, &dir.join("a"));
        let b = chaos_round(11, 0.2, &dir.join("b"));
        assert_eq!(a.kill_at, b.kill_at);
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.recovered, b.recovered);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.counters.injected, b.counters.injected);
        assert_eq!(a.counters.trips, b.counters.trips);
        assert_eq!(a.counters.rejections, b.counters.rejections);

        let calm = chaos_round(11, 0.02, &dir.join("calm"));
        assert!(
            a.counters.injected >= calm.counters.injected,
            "injected events must be monotone in density"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Density 0 still kills and recovers: pure WAL durability with no
    /// chaos in the mix.
    #[test]
    fn quiet_round_recovers_everything() {
        let dir =
            std::env::temp_dir().join(format!("fracdram-chaos-test-quiet-{}", std::process::id()));
        let r = chaos_round(7, 0.0, &dir);
        assert_eq!(r.acked, r.kill_at);
        assert_eq!(
            r.recovered, r.acked,
            "without chaos, recovered entries == acknowledged requests"
        );
        assert_eq!(r.counters.injected, 0);
        assert_eq!(r.counters.drops, 0);
        assert_eq!(r.resends, 0);
    }
}
