//! The FracDRAM service daemon.
//!
//! Serves TRNG / PUF / Frac-storage endpoints over line-delimited JSON
//! on a TCP socket (see `fracdram_serve::protocol`), or — with
//! `--replay` — re-executes a recorded canonical request log offline
//! and prints the byte-reproducible response log.
//!
//! ```text
//! cargo run --release -p fracdram-serve --bin fracdram-serve -- --port 4717
//! cargo run --release -p fracdram-serve --bin fracdram-serve -- \
//!     --replay requests.log --out replay.log
//! ```

use std::path::PathBuf;
use std::time::Duration;

use fracdram_experiments::Args;
use fracdram_model::GroupId;
use fracdram_serve::{
    recover, run_replay, start_on, BreakerConfig, ChaosConfig, ChaosSpec, ServeConfig,
};

fn parse_group(name: &str) -> Option<GroupId> {
    Some(match name {
        "A" => GroupId::A,
        "B" => GroupId::B,
        "C" => GroupId::C,
        "D" => GroupId::D,
        "E" => GroupId::E,
        "F" => GroupId::F,
        "G" => GroupId::G,
        "H" => GroupId::H,
        "I" => GroupId::I,
        "J" => GroupId::J,
        "K" => GroupId::K,
        "L" => GroupId::L,
        _ => return None,
    })
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "fracdram-serve",
        "persistent daemon serving TRNG / PUF / Frac-storage endpoints over line-delimited JSON",
        &[
            (
                "port",
                "TCP port to listen on; 0 picks a free one (default 4717)",
            ),
            ("dies", "number of addressable dies (default 16)"),
            ("shards", "shard worker threads (default 4)"),
            (
                "queue-depth",
                "bounded per-shard queue; full sheds 503 (default 64)",
            ),
            (
                "batch",
                "max requests coalesced per shard drain (default 8)",
            ),
            (
                "cols",
                "columns per sub-array / row width in bits (default 128)",
            ),
            (
                "seed",
                "pool seed; die d gen g is mix(seed, [d, g]) (default 4070704035)",
            ),
            ("group", "DRAM group letter A..L (default B)"),
            (
                "fault-limit",
                "fault events before a die is auto-remapped (default 2048)",
            ),
            (
                "sched",
                "cross-die drain scheduling: on|off (default on; off restores \
                 consecutive-only coalescing)",
            ),
            (
                "record-requests",
                "write the canonical request log here on shutdown",
            ),
            (
                "record-responses",
                "write the matching response log here on shutdown",
            ),
            (
                "replay",
                "offline mode: re-execute this request log and exit",
            ),
            ("out", "replay output path, or - for stdout (default -)"),
            (
                "wal-dir",
                "journal every executed request here and recover from it at startup \
                 (default: off, in-memory only)",
            ),
            (
                "recover-dump",
                "offline mode: replay the WAL in this directory, print the recovered \
                 response log, and exit (read-only)",
            ),
            (
                "deadline-ms",
                "shed queued requests older than this with 503 (default 5000; 0 disables)",
            ),
            (
                "io-timeout-ms",
                "disconnect a client idle/stalled this long (default 30000)",
            ),
            (
                "breaker-trip",
                "consecutive die failures that trip its circuit breaker (default 3)",
            ),
            (
                "breaker-open",
                "rejections while open before a half-open probe (default 4)",
            ),
            (
                "chaos-seed",
                "chaos plan seed (default 0; plan is pure in seed+densities)",
            ),
            (
                "chaos-die-fail",
                "chaos: per-(die,seq) injected die-failure probability (default 0)",
            ),
            (
                "chaos-drop",
                "chaos: per-request connection-drop probability (default 0)",
            ),
            (
                "chaos-stall",
                "chaos: per-drain shard-stall probability (default 0)",
            ),
            ("chaos-stall-ms", "chaos: stall duration in ms (default 5)"),
        ],
    ) {
        return;
    }

    let defaults = ServeConfig::default();
    let group_name = args.str("group").unwrap_or("B").to_string();
    let Some(group) = parse_group(&group_name) else {
        eprintln!("error: unknown DRAM group {group_name:?} (expected a letter A..L)");
        std::process::exit(2);
    };
    let chaos_config = ChaosConfig {
        die_fail: args.f64("chaos-die-fail", 0.0),
        drop: args.f64("chaos-drop", 0.0),
        stall: args.f64("chaos-stall", 0.0),
        stall_ms: args.u64("chaos-stall-ms", 5),
    };
    let chaos = chaos_config.enabled().then(|| ChaosSpec {
        seed: args.u64("chaos-seed", 0),
        config: chaos_config,
    });
    if chaos.is_none() {
        // Consume the flag either way so --chaos-seed alone is not an
        // unknown-flag error (it is simply inert without a density).
        let _ = args.u64("chaos-seed", 0);
    }
    let cfg = ServeConfig {
        group,
        dies: args.usize("dies", defaults.dies),
        shards: args.usize("shards", defaults.shards),
        queue_depth: args.usize("queue-depth", defaults.queue_depth),
        batch: args.usize("batch", defaults.batch),
        columns: args.usize("cols", defaults.columns),
        seed: args.u64("seed", defaults.seed),
        fault_limit: args.u64("fault-limit", defaults.fault_limit),
        sched: args.str("sched").unwrap_or("on") != "off",
        breaker: BreakerConfig {
            trip: args.u64("breaker-trip", defaults.breaker.trip as u64) as u32,
            open: args.u64("breaker-open", defaults.breaker.open as u64) as u32,
        },
        chaos,
        deadline_ms: args.u64("deadline-ms", defaults.deadline_ms),
        io_timeout_ms: args.u64("io-timeout-ms", defaults.io_timeout_ms),
        wal_dir: args.str("wal-dir").map(PathBuf::from),
    };
    if cfg.columns == 0 || !cfg.columns.is_multiple_of(4) {
        eprintln!("error: --cols must be a positive multiple of 4");
        std::process::exit(2);
    }

    let port = args.usize("port", 4717) as u16;
    let replay = args.str("replay").map(str::to_string);
    let recover_dump = args.str("recover-dump").map(PathBuf::from);
    let out = args.str("out").unwrap_or("-").to_string();
    let record_requests = args.str("record-requests").map(str::to_string);
    let record_responses = args.str("record-responses").map(str::to_string);
    args.reject_unknown();

    if let Some(dir) = recover_dump {
        if !dir.is_dir() {
            eprintln!("error: --recover-dump {} is not a directory", dir.display());
            std::process::exit(1);
        }
        let recovery = recover(&cfg, &dir).unwrap_or_else(|e| {
            eprintln!("error: recovery failed: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "fracdram-serve: recovered {} entr{} ({}, {} torn line(s))",
            recovery.request_log.lines().count(),
            if recovery.request_log.lines().count() == 1 {
                "y"
            } else {
                "ies"
            },
            if recovery.sealed {
                "sealed"
            } else {
                "unclean shutdown"
            },
            recovery.torn
        );
        if out == "-" {
            print!("{}", recovery.response_log);
        } else if let Err(e) = std::fs::write(&out, &recovery.response_log) {
            eprintln!("error: cannot write --out {out}: {e}");
            std::process::exit(1);
        }
        return;
    }

    if let Some(path) = replay {
        let requests = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read --replay {path}: {e}");
            std::process::exit(1);
        });
        let responses = run_replay(&cfg, &requests).unwrap_or_else(|e| {
            eprintln!("error: replay failed: {e}");
            std::process::exit(1);
        });
        if out == "-" {
            print!("{responses}");
        } else if let Err(e) = std::fs::write(&out, &responses) {
            eprintln!("error: cannot write --out {out}: {e}");
            std::process::exit(1);
        }
        return;
    }

    let handle = start_on(cfg.clone(), port).unwrap_or_else(|e| {
        eprintln!("error: cannot bind 127.0.0.1:{port}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "fracdram-serve: listening on {} ({} die(s), {} shard(s), group {}); \
         send {{\"op\":\"shutdown\"}} to stop",
        handle.addr(),
        cfg.dies,
        cfg.shards,
        cfg.group,
    );
    while !handle.is_stopped() {
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = handle.join();
    eprintln!(
        "fracdram-serve: drained — {} request(s) served, {} shed",
        report.processed, report.shed
    );
    if let Some(path) = record_requests {
        if let Err(e) = std::fs::write(&path, &report.request_log) {
            eprintln!("error: cannot write --record-requests {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = record_responses {
        if let Err(e) = std::fs::write(&path, &report.response_log) {
            eprintln!("error: cannot write --record-responses {path}: {e}");
            std::process::exit(1);
        }
    }
}
