//! Load generator for `fracdram-serve`.
//!
//! Drives a mixed workload — TRNG draws, PUF evaluation, enrollment and
//! verification, Frac writes, row copies, and read-backs — from N
//! concurrent client threads, and reports p50/p99 per-request latency
//! and sustained req/s. By default it embeds the server in-process
//! (the daemon code path, loopback TCP and all); `--addr` points it at
//! an already-running daemon instead.
//!
//! `--fault-die K --fault-at R` makes client 0 mark die K bad after its
//! R-th request, exercising the drain-and-remap path under load; the
//! run still must not lose or fail a single request.
//!
//! ```text
//! cargo run --release -p fracdram-serve --bin serve_bench -- \
//!     --clients 4 --requests 60 --json /tmp/serve_bench.json
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use fracdram_bench::{format_records, Record};
use fracdram_experiments::{exit_json_write_error, Args, Json};
use fracdram_serve::{start, ServeConfig};
use fracdram_stats::summary::quantile;

/// One client's tally.
#[derive(Debug, Default, Clone)]
struct ClientTally {
    latencies_ns: Vec<f64>,
    ok: u64,
    failed: u64,
    shed: u64,
}

/// The i-th request of client `client`, as a wire line.
fn request_line(client: usize, index: usize, dies: usize) -> String {
    let die = client % dies;
    // Storage traffic stays on bank 1 so it never disturbs the TRNG's
    // seed rows and activation quad in bank 0.
    let doc = match index % 7 {
        0 => Json::obj()
            .field("op", "trng")
            .field("die", die)
            .field("bits", 64usize),
        1 => Json::obj()
            .field("op", "write")
            .field("die", die)
            .field("bank", 1usize)
            .field("row", 3 + index % 16)
            .field("fill", index.is_multiple_of(2))
            .field("frac", index % 3),
        2 => Json::obj()
            .field("op", "read")
            .field("die", die)
            .field("bank", 1usize)
            .field("row", 3 + index % 16),
        3 => Json::obj()
            .field("op", "puf")
            .field("die", die)
            .field("bank", 1usize)
            .field("row", 40 + index % 20),
        4 => Json::obj()
            .field("op", "copy")
            .field("die", die)
            .field("bank", 1usize)
            .field("src", 3 + index % 16)
            .field("dst", 20 + index % 4),
        5 => Json::obj()
            .field("op", "enroll")
            .field("die", die)
            .field("bank", 1usize)
            .field("row", 44usize)
            .field("reps", 3usize),
        _ => Json::obj()
            .field("op", "verify")
            .field("die", die)
            .field("bank", 1usize)
            .field("row", 44usize),
    };
    doc.to_string()
}

fn send_line(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<String, String> {
    writer
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("send failed: {e}"))?;
    let mut response = String::new();
    let n = reader
        .read_line(&mut response)
        .map_err(|e| format!("receive failed: {e}"))?;
    if n == 0 {
        return Err("server closed the connection".to_string());
    }
    Ok(response.trim_end().to_string())
}

fn tally_response(tally: &mut ClientTally, response: &str) {
    let doc = Json::parse(response).unwrap_or(Json::Null);
    if doc.get("ok").and_then(Json::as_bool) == Some(true) {
        tally.ok += 1;
    } else if doc.get("code").and_then(Json::as_usize) == Some(503) {
        tally.shed += 1;
    } else {
        tally.failed += 1;
        eprintln!("serve_bench: request failed: {response}");
    }
}

#[allow(clippy::too_many_arguments)]
fn client_main(
    addr: String,
    client: usize,
    requests: usize,
    dies: usize,
    fault_die: usize,
    fault_at: usize,
) -> Result<ClientTally, String> {
    let stream = TcpStream::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    // One-line requests with one-line answers: without TCP_NODELAY the
    // measured latency is mostly Nagle's delayed-ACK stall.
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut tally = ClientTally::default();
    for index in 0..requests {
        if client == 0 && fault_die != usize::MAX && index == fault_at {
            let line = Json::obj()
                .field("op", "mark-bad")
                .field("die", fault_die)
                .to_string();
            let response = send_line(&mut writer, &mut reader, &line)?;
            tally_response(&mut tally, &response);
        }
        let line = request_line(client, index, dies);
        let started = Instant::now();
        let response = send_line(&mut writer, &mut reader, &line)?;
        tally.latencies_ns.push(started.elapsed().as_nanos() as f64);
        tally_response(&mut tally, &response);
    }
    Ok(tally)
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "serve_bench",
        "mixed-workload load generator for fracdram-serve: p50/p99 latency and req/s",
        &[
            (
                "addr",
                "host:port of a running daemon (default: embed one in-process)",
            ),
            ("clients", "concurrent client threads (default 4)"),
            ("requests", "requests per client (default 60)"),
            (
                "dies",
                "dies in the embedded pool / assumed on the daemon (default 8)",
            ),
            ("shards", "embedded pool shards (default 2)"),
            ("queue-depth", "embedded per-shard queue bound (default 64)"),
            ("cols", "embedded row width in bits (default 128)"),
            ("seed", "embedded pool seed (default 4070704035)"),
            (
                "sched",
                "embedded cross-die drain scheduling: on|off (default on)",
            ),
            (
                "fault-die",
                "die client 0 marks bad mid-run (default: none)",
            ),
            (
                "fault-at",
                "request index at which the die is marked bad (default requests/2)",
            ),
            (
                "record",
                "embedded mode: write PREFIX.requests.log / PREFIX.responses.log",
            ),
            (
                "wal-dir",
                "embedded mode: journal to (and recover from) this WAL directory",
            ),
            ("json", "write p50/p99/ns-per-req bench records here"),
            (
                "shutdown",
                "send a shutdown op when done (for --addr daemons)",
            ),
        ],
    ) {
        return;
    }

    let defaults = ServeConfig::default();
    let external = args.str("addr").map(str::to_string);
    let clients = args.usize("clients", 4).max(1);
    let requests = args.usize("requests", 60);
    let dies = args.usize("dies", 8).max(1);
    let cfg = ServeConfig {
        dies,
        shards: args.usize("shards", 2),
        queue_depth: args.usize("queue-depth", defaults.queue_depth),
        columns: args.usize("cols", defaults.columns),
        seed: args.u64("seed", defaults.seed),
        sched: args.str("sched").unwrap_or("on") != "off",
        wal_dir: args.str("wal-dir").map(std::path::PathBuf::from),
        ..defaults
    };
    let fault_die = args.usize("fault-die", usize::MAX);
    let fault_at = args.usize("fault-at", requests / 2);
    let record = args.str("record").map(str::to_string);
    let json_path = args.str("json").map(str::to_string);
    let send_shutdown = args.flag("shutdown");
    args.reject_unknown();

    if fault_die != usize::MAX && fault_die >= dies {
        eprintln!("error: --fault-die {fault_die} out of range (pool has {dies} dies)");
        std::process::exit(2);
    }
    if external.is_some() && record.is_some() {
        eprintln!("error: --record only works in embedded mode (the daemon records its own logs)");
        std::process::exit(2);
    }

    let embedded = if external.is_none() {
        Some(start(cfg.clone()).unwrap_or_else(|e| {
            eprintln!("error: cannot start embedded server: {e}");
            std::process::exit(1);
        }))
    } else {
        None
    };
    let addr = external
        .clone()
        .unwrap_or_else(|| embedded.as_ref().unwrap().addr().to_string());
    println!(
        "serve_bench: {clients} client(s) x {requests} request(s) over {dies} die(s) @ {addr}{}",
        if fault_die == usize::MAX {
            String::new()
        } else {
            format!(", marking die {fault_die} bad at request {fault_at}")
        }
    );

    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|client| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                client_main(addr, client, requests, dies, fault_die, fault_at)
            })
        })
        .collect();
    let mut latencies_ns = Vec::with_capacity(clients * requests);
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut shed = 0u64;
    for worker in workers {
        match worker.join().expect("client thread panicked") {
            Ok(tally) => {
                latencies_ns.extend(tally.latencies_ns);
                ok += tally.ok;
                failed += tally.failed;
                shed += tally.shed;
            }
            Err(message) => {
                eprintln!("serve_bench: client error: {message}");
                failed += 1;
            }
        }
    }
    let elapsed = started.elapsed();

    if send_shutdown || embedded.is_some() {
        // On an embedded server join() below also stops it; sending the
        // op keeps the daemon path honest for --addr runs.
        if let Ok(stream) = TcpStream::connect(&addr) {
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            let _ = send_line(&mut writer, &mut reader, r#"{"op":"shutdown"}"#);
        }
    }

    let total = latencies_ns.len() as u64;
    let p50 = if latencies_ns.is_empty() {
        0.0
    } else {
        quantile(&latencies_ns, 0.50)
    };
    let p99 = if latencies_ns.is_empty() {
        0.0
    } else {
        quantile(&latencies_ns, 0.99)
    };
    let ns_per_req = if total == 0 {
        0.0
    } else {
        elapsed.as_nanos() as f64 / total as f64
    };
    let req_per_s = if elapsed.as_secs_f64() > 0.0 {
        total as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    println!(
        "serve_bench: p50 {:.3} ms  p99 {:.3} ms  {:.0} req/s  ({ok} ok, {failed} failed, {shed} shed)",
        p50 / 1e6,
        p99 / 1e6,
        req_per_s,
    );

    if let Some(handle) = embedded {
        use std::sync::atomic::Ordering;
        let board = handle.board();
        let hwms = board.queue_hwms();
        let hist = board.batch_histogram();
        let hist_str = hist
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(size, count)| format!("{size}x{count}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "serve_bench: queue hwm {:?}  drains [{hist_str}]  sched {} merge(s) / {} tick(s) overlapped / {} fallback(s)",
            hwms,
            board.sched_merges.load(Ordering::Relaxed),
            board.sched_overlapped_ticks.load(Ordering::Relaxed),
            board.sched_fallbacks.load(Ordering::Relaxed),
        );
        println!(
            "serve_bench: wal {} entr{} / {} sync(s) / {} byte(s) ({} recovered)  \
             breaker {} trip(s) / {} rejection(s) / {} probe(s) / {} close(s)",
            board.wal_entries.load(Ordering::Relaxed),
            if board.wal_entries.load(Ordering::Relaxed) == 1 {
                "y"
            } else {
                "ies"
            },
            board.wal_syncs.load(Ordering::Relaxed),
            board.wal_bytes.load(Ordering::Relaxed),
            board.recovered.load(Ordering::Relaxed),
            board.breaker_trips.load(Ordering::Relaxed),
            board.breaker_rejections.load(Ordering::Relaxed),
            board.breaker_probes.load(Ordering::Relaxed),
            board.breaker_closes.load(Ordering::Relaxed),
        );
        let report = handle.join();
        println!(
            "serve_bench: server drained — {} processed, {} shed",
            report.processed, report.shed
        );
        if let Some(prefix) = record {
            for (suffix, text) in [
                ("requests.log", &report.request_log),
                ("responses.log", &report.response_log),
            ] {
                let path = format!("{prefix}.{suffix}");
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
            println!(
                "serve_bench: recorded canonical logs at {record_prefix}.*.log",
                record_prefix = prefix
            );
        }
    }

    if let Some(path) = json_path {
        let records = [
            Record {
                bench: "serve/mixed_p50_ns".to_string(),
                median_ns: p50,
                iters: total,
            },
            Record {
                bench: "serve/mixed_p99_ns".to_string(),
                median_ns: p99,
                iters: total,
            },
            Record {
                bench: "serve/mixed_ns_per_req".to_string(),
                median_ns: ns_per_req,
                iters: total,
            },
        ];
        if let Err(e) = std::fs::write(&path, format_records(&records)) {
            exit_json_write_error(&path, &e);
        }
        println!("serve_bench: wrote 3 bench record(s) to {path}");
    }

    if failed > 0 {
        eprintln!("serve_bench: {failed} request(s) failed");
        std::process::exit(1);
    }
}
