//! Calibration sweep diagnostics — ignored by default; run with
//! `cargo test -p fracdram --test calibration_sweeps --release -- --ignored --nocapture`
//! when retuning `DeviceParams` (see DESIGN.md §5). These print the full
//! F-MAJ configuration grid and PUF-stream statistics rather than
//! asserting tight bounds.
use fracdram::fmaj::{combo_breakdown, FmajConfig};
use fracdram::maj3::maj3_coverage;
use fracdram::rowsets::{Quad, Triplet};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, SubarrayAddr};
use fracdram_softmc::MemoryController;

#[test]
#[ignore]
fn fmaj_shape() {
    for group in [GroupId::B, GroupId::C, GroupId::D] {
        for seed in [1u64, 2, 3] {
            let mut mc = MemoryController::new(Module::new(ModuleConfig::single_chip(
                group,
                seed,
                Geometry {
                    banks: 2,
                    subarrays_per_bank: 2,
                    rows_per_subarray: 32,
                    columns: 256,
                },
            )));
            if group == GroupId::B {
                let t = Triplet::first(mc.module().geometry(), SubarrayAddr::new(0, 0));
                let cov = maj3_coverage(&mut mc, &t).unwrap();
                println!("{group} seed {seed}: MAJ3 baseline coverage = {cov:.3}");
            }
            let q =
                Quad::canonical(mc.module().geometry(), SubarrayAddr::new(0, 0), group).unwrap();
            for role in 0..4 {
                for init in [true, false] {
                    let covs: Vec<String> = (0..=5)
                        .map(|n| {
                            let cfg = FmajConfig {
                                frac_role: role,
                                init_ones: init,
                                frac_ops: n,
                            };
                            format!("{:.3}", combo_breakdown(&mut mc, &q, &cfg).unwrap().overall)
                        })
                        .collect();
                    println!(
                        "  {group} s{seed} role R{} init {}: {}",
                        role + 1,
                        if init { 1 } else { 0 },
                        covs.join(" ")
                    );
                }
            }
        }
    }
}

#[test]
#[ignore]
fn whitened_autocorrelation() {
    use fracdram::puf::{challenge_set, evaluate, whitened_stream};
    use fracdram_model::{Geometry, GroupId, Module, ModuleConfig};
    let geometry = Geometry {
        banks: 4,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 4096,
    };
    for group in [GroupId::A, GroupId::B] {
        let mut mc =
            MemoryController::new(Module::new(ModuleConfig::single_chip(group, 99, geometry)));
        let challenges = challenge_set(&geometry, 64, 7);
        let responses: Vec<_> = challenges
            .iter()
            .map(|&c| evaluate(&mut mc, c).unwrap())
            .collect();
        // raw response autocorrelation across columns (first response)
        let r = &responses[0];
        for lag in [1usize, 2] {
            let mut agree = 0usize;
            for i in 0..r.len() - lag {
                if r.get(i) == r.get(i + lag) {
                    agree += 1;
                }
            }
            println!(
                "{group} raw lag {lag}: agree {:.4}",
                agree as f64 / (r.len() - lag) as f64
            );
        }
        let w = whitened_stream(&responses);
        println!(
            "{group} whitened len {} weight {:.4}",
            w.len(),
            w.hamming_weight()
        );
        for lag in [1usize, 2, 3, 4] {
            let mut agree = 0usize;
            for i in 0..w.len() - lag {
                if w.get(i) == w.get(i + lag) {
                    agree += 1;
                }
            }
            println!(
                "{group} whitened lag {lag}: agree {:.4}",
                agree as f64 / (w.len() - lag) as f64
            );
        }
    }
}

#[test]
#[ignore]
fn runs_on_big_whitened() {
    use fracdram::puf::{challenge_set, evaluate, whitened_stream};
    use fracdram_model::{Geometry, GroupId, Module, ModuleConfig};
    use fracdram_stats::nist;
    let geometry = Geometry {
        banks: 8,
        subarrays_per_bank: 4,
        rows_per_subarray: 64,
        columns: 4096,
    };
    for group in [GroupId::A, GroupId::B] {
        let mut mc =
            MemoryController::new(Module::new(ModuleConfig::single_chip(group, 99, geometry)));
        let challenges = challenge_set(&geometry, 700, 7);
        let responses: Vec<_> = challenges
            .iter()
            .map(|&c| evaluate(&mut mc, c).unwrap())
            .collect();
        let w = whitened_stream(&responses);
        let mut agree = 0usize;
        for i in 0..w.len() - 1 {
            if w.get(i) == w.get(i + 1) {
                agree += 1;
            }
        }
        println!(
            "{group}: len {} weight {:.5} lag1 agree {:.5}",
            w.len(),
            w.hamming_weight(),
            agree as f64 / (w.len() - 1) as f64
        );
        println!("  runs: {:?}", nist::runs(&w));
        println!("  freq: {:?}", nist::frequency(&w));
    }
}
