//! Multi-row activation (§II-D) and its empirical exploration (§VI-A1).
//!
//! The out-of-spec sequence `ACTIVATE(R1) – PRECHARGE – ACTIVATE(R2)`
//! with no idle cycles catches the row decoder mid-transition and can
//! leave several word-lines raised. Which row sets open is a property of
//! the chip's (black-box) decoder; this module provides the command
//! sequence itself plus the probing utilities the paper uses to
//! characterize it: per-pair open-row counts, the power-of-two span
//! observation on groups C/D, and the Table I capability survey.

use fracdram_model::{GroupId, RowAddr, SubarrayAddr};
use fracdram_softmc::{MemoryController, Program};

use crate::error::Result;
use crate::frac::frac_program;

/// Builds the glitch sequence `ACT(R1) – PRE – ACT(R2)` (back-to-back,
/// 2.5 ns cycles, no idle cycles), leaving the opened rows activating.
///
/// Callers append idle cycles (the sense amplifier needs 4 cycles after
/// the second ACTIVATE) and a trailing PRECHARGE, or a trailing
/// back-to-back PRECHARGE to interrupt the activation (Half-m).
pub fn glitch_program(r1: RowAddr, r2: RowAddr) -> Program {
    debug_assert_eq!(r1.bank, r2.bank);
    Program::builder().act(r1).pre(r1.bank).act(r2).build()
}

/// Runs the glitch sequence and reports which bank-level rows ended up
/// open, in activation-role order `[R1, R2, implicit...]`.
///
/// This is destructive: the opened rows are left holding the sensed
/// charge-sharing result (exactly as on real hardware), and the bank is
/// precharged before returning.
///
/// # Errors
///
/// Propagates controller errors (bad addresses).
pub fn open_rows_after(mc: &mut MemoryController, r1: RowAddr, r2: RowAddr) -> Result<Vec<usize>> {
    mc.run(&glitch_program(r1, r2))?;
    let open = mc.module().chips()[0].open_rows(r1.bank);
    // Let the sense complete, then close.
    let cleanup = Program::builder()
        .nop()
        .delay(8)
        .pre(r1.bank)
        .delay(5)
        .build();
    mc.run(&cleanup)?;
    Ok(open)
}

/// One probed `(R1, R2)` pair and the number of rows it opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairProbe {
    /// Local row driven by the first ACTIVATE.
    pub r1: usize,
    /// Local row driven by the second ACTIVATE.
    pub r2: usize,
    /// Number of simultaneously opened rows.
    pub opened: usize,
}

/// Probes every ordered pair of local rows `(r1, r2)` with
/// `r1, r2 < max_row` in one sub-array — the paper's "thorough
/// exploration using the sequence with all possible combinations of row
/// addresses" (§VI-A1).
///
/// # Errors
///
/// Propagates controller errors.
pub fn explore_pairs(
    mc: &mut MemoryController,
    subarray: SubarrayAddr,
    max_row: usize,
) -> Result<Vec<PairProbe>> {
    let geometry = *mc.module().geometry();
    let mut probes = Vec::new();
    for r1 in 0..max_row {
        for r2 in 0..max_row {
            if r1 == r2 {
                continue;
            }
            let a1 = subarray.row(&geometry, r1);
            let a2 = subarray.row(&geometry, r2);
            let opened = open_rows_after(mc, a1, a2)?.len();
            probes.push(PairProbe { r1, r2, opened });
        }
    }
    Ok(probes)
}

/// Empirically measured capabilities of one module — the Table I row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Group of the surveyed module.
    pub group: GroupId,
    /// Whether Frac operations change stored data (probed by reading a
    /// row back after ten Frac operations — fractional cells re-sense
    /// unpredictably, guarded chips return the data intact).
    pub frac: bool,
    /// Whether some pair opens exactly three rows.
    pub three_row: bool,
    /// Whether some pair opens exactly four rows.
    pub four_row: bool,
}

/// Surveys a module's capabilities the way the paper does — by issuing
/// the sequences and observing behavior, not by asking the vendor.
///
/// # Errors
///
/// Propagates controller errors.
pub fn survey(mc: &mut MemoryController) -> Result<Capabilities> {
    let group = mc.module().profile().group;
    let geometry = *mc.module().geometry();
    let sa = SubarrayAddr::new(0, 0);

    // Frac probe: all ones, ten Frac ops, read back. On a Frac-capable
    // chip roughly half the bits re-sense as zero; on a guarded chip the
    // stretched-out (legal) command sequence leaves the data intact.
    let probe_row = sa.row(&geometry, 12);
    let ones = vec![true; mc.module().row_bits()];
    mc.write_row(probe_row, &ones)?;
    mc.run(&frac_program(probe_row, 10))?;
    // Guarded chips stretch the out-of-spec sequence into legally timed
    // commands that finish later than the program's nominal end; idle
    // long enough that the probe read observes the final state.
    mc.wait(fracdram_model::Cycles(512));
    let read = mc.read_row(probe_row)?;
    let flipped = read.iter().filter(|&&b| !b).count();
    let frac = flipped * 10 >= read.len(); // >10 % of bits disturbed

    // Three-/four-row probes on the canonical pairs.
    let three_row = open_rows_after(mc, sa.row(&geometry, 1), sa.row(&geometry, 2))?.len() == 3;
    let quad_b = open_rows_after(mc, sa.row(&geometry, 8), sa.row(&geometry, 1))?.len();
    let quad_cd = open_rows_after(mc, sa.row(&geometry, 1), sa.row(&geometry, 2))?.len();
    let four_row = quad_b == 4 || quad_cd == 4;

    Ok(Capabilities {
        group,
        frac,
        three_row,
        four_row,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, Module, ModuleConfig};

    fn controller(group: GroupId) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            group,
            23,
            Geometry::tiny(),
        )))
    }

    #[test]
    fn group_b_triplet_pair_opens_three() {
        let mut mc = controller(GroupId::B);
        let open = open_rows_after(&mut mc, RowAddr::new(0, 1), RowAddr::new(0, 2)).unwrap();
        assert_eq!(open, vec![1, 2, 0]);
    }

    #[test]
    fn group_b_quad_pair_opens_four() {
        let mut mc = controller(GroupId::B);
        let open = open_rows_after(&mut mc, RowAddr::new(0, 8), RowAddr::new(0, 1)).unwrap();
        assert_eq!(open, vec![8, 1, 0, 9]);
    }

    #[test]
    fn group_c_never_opens_three() {
        let mut mc = controller(GroupId::C);
        let probes = explore_pairs(&mut mc, SubarrayAddr::new(0, 0), 8).unwrap();
        assert!(probes.iter().all(|p| p.opened.is_power_of_two()));
        assert!(
            probes.iter().any(|p| p.opened == 4),
            "group C must open four rows for some pair"
        );
    }

    #[test]
    fn opened_counts_match_bit_differences_on_power_of_two_decoder() {
        let mut mc = controller(GroupId::D);
        let probes = explore_pairs(&mut mc, SubarrayAddr::new(0, 0), 8).unwrap();
        for p in probes {
            let k = (p.r1 ^ p.r2).count_ones();
            assert!(
                p.opened == 1 || p.opened == (1 << k),
                "({}, {}): k = {k}, opened = {}",
                p.r1,
                p.r2,
                p.opened
            );
        }
    }

    #[test]
    fn single_only_group_opens_one() {
        let mut mc = controller(GroupId::F);
        let open = open_rows_after(&mut mc, RowAddr::new(0, 1), RowAddr::new(0, 2)).unwrap();
        assert_eq!(open, vec![2], "only R2 survives on a SingleOnly decoder");
    }

    #[test]
    fn survey_reproduces_table1_rows() {
        for (group, frac, three, four) in [
            (GroupId::B, true, true, true),
            (GroupId::C, true, false, true),
            (GroupId::D, true, false, true),
            (GroupId::A, true, false, false),
            (GroupId::G, true, false, false),
            (GroupId::J, false, false, false),
            (GroupId::L, false, false, false),
        ] {
            let mut mc = controller(group);
            let caps = survey(&mut mc).unwrap();
            assert_eq!(caps.frac, frac, "{group} frac");
            assert_eq!(caps.three_row, three, "{group} three-row");
            assert_eq!(caps.four_row, four, "{group} four-row");
        }
    }

    #[test]
    fn glitch_program_is_three_commands_back_to_back() {
        let p = glitch_program(RowAddr::new(0, 1), RowAddr::new(0, 2));
        assert_eq!(p.len(), 3);
        assert_eq!(p.total_cycles().value(), 3);
    }
}
