//! Ternary storage in unmodified DRAM (§VI-C) — the paper's sketched
//! extension, implemented.
//!
//! *"Using the Half-m operation, we can store fractional value, one, or
//! zero in arbitrary DRAM columns, which enables the cell to store
//! three different states. … the way we have proposed to read out the
//! fractional value requires four copies of the data (the MAJ3 method
//! mentioned in Section IV-B), and the fractional value is destroyed
//! after readout. We leave the readout and data recovery issue to
//! future work."*
//!
//! This module builds that storage system end to end:
//!
//! * a **trit row** is written with one Half-m operation per copy
//!   ([`TernaryStore::write`]): `One`/`Zero` columns get the uniform
//!   pattern (weak values that re-sense reliably), `Half` columns the
//!   balanced pattern;
//! * the **destructive readout** ([`TernaryStore::read`]) runs the
//!   §IV-B2 two-majority procedure — `X₁` with a probe row of ones,
//!   `X₂` with zeros — decoding `(1,1) → One`, `(0,0) → Zero`,
//!   `(1,0) → Half`. Because each majority clobbers its operand rows,
//!   the store keeps **two** Half-m copies of every trit row (the
//!   paper's "four copies of the data" are the four rows of each
//!   Half-m quad);
//! * Half values are only distinguishable on a minority of columns
//!   (Fig. 8), so [`TernaryStore::calibrate`] self-tests the device and
//!   returns the usable column mask; the store then exposes a smaller,
//!   *reliable* ternary capacity.
//!
//! The readout needs the three-row majority, so ternary storage works
//! on ComputeDRAM-capable modules (group B).

use fracdram_model::{Geometry, GroupId, RowAddr};
use fracdram_softmc::MemoryController;

use crate::error::{FracDramError, Result};
use crate::frac::physical_pattern;
use crate::halfm::halfm_in_place;
use crate::maj3::maj3_in_place;
use crate::rowsets::{Quad, Triplet};

/// A ternary digit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Trit {
    /// Logical zero (weak zero after Half-m).
    Zero,
    /// The Half value (≈ `Vdd/2`).
    Half,
    /// Logical one (weak one after Half-m).
    One,
}

impl Trit {
    /// All trits in ascending order.
    pub const ALL: [Trit; 3] = [Trit::Zero, Trit::Half, Trit::One];

    /// Numeric value (0, 1, 2) — for radix conversions.
    pub fn value(self) -> u8 {
        match self {
            Trit::Zero => 0,
            Trit::Half => 1,
            Trit::One => 2,
        }
    }

    /// Decodes the §IV-B2 majority pair.
    ///
    /// `X₁` is the majority with a probe row of ones, `X₂` with zeros:
    /// stored rails ignore the probe row ((1,1) or (0,0)); the Half
    /// value follows it ((1,0)). The inverted pair (0,1) cannot be
    /// produced by a working column and decodes to `None`.
    pub fn from_majority_pair(x1: bool, x2: bool) -> Option<Trit> {
        match (x1, x2) {
            (true, true) => Some(Trit::One),
            (false, false) => Some(Trit::Zero),
            (true, false) => Some(Trit::Half),
            (false, true) => None,
        }
    }
}

/// The two Half-m quads (primary + mirror copy) holding one trit row,
/// plus the spare probe row used by the destructive readout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TernarySlot {
    /// Copy read for `X₁` (probe = ones).
    pub copy_a: Quad,
    /// Copy read for `X₂` (probe = zeros).
    pub copy_b: Quad,
}

/// A calibrated ternary store on one module.
#[derive(Debug)]
pub struct TernaryStore {
    slot: TernarySlot,
    /// Columns that round-tripped all three trits during calibration.
    usable: Vec<bool>,
}

impl TernaryStore {
    /// Sets up ternary storage on a group-B module, self-calibrating
    /// the usable columns: every column must round-trip `Zero`, `Half`,
    /// and `One` `rounds` times to qualify.
    ///
    /// Uses the canonical quads of sub-arrays 0 and 1 of `bank` (the
    /// two copies must live in different sub-arrays so the readout of
    /// copy A cannot disturb copy B).
    ///
    /// # Errors
    ///
    /// Returns [`FracDramError::Unsupported`] on modules that cannot
    /// perform both Half-m and MAJ3 (only group B can), and
    /// [`FracDramError::BadRowSet`] when the bank has fewer than two
    /// sub-arrays.
    pub fn calibrate(mc: &mut MemoryController, bank: usize, rounds: usize) -> Result<Self> {
        let profile = mc.module().profile();
        if !profile.supports_three_row() || !profile.supports_four_row() {
            return Err(FracDramError::Unsupported {
                group: profile.group,
                operation: "ternary storage (Half-m + MAJ3 readout)",
            });
        }
        let geometry: Geometry = *mc.module().geometry();
        if geometry.subarrays_per_bank < 2 {
            return Err(FracDramError::BadRowSet {
                reason: "ternary storage needs two sub-arrays per bank".into(),
            });
        }
        let sa_a = fracdram_model::SubarrayAddr::new(bank, 0);
        let sa_b = fracdram_model::SubarrayAddr::new(bank, 1);
        let slot = TernarySlot {
            copy_a: Quad::canonical(&geometry, sa_a, GroupId::B)?,
            copy_b: Quad::canonical(&geometry, sa_b, GroupId::B)?,
        };
        let width = mc.module().row_bits();
        let mut usable = vec![true; width];
        let mut store = TernaryStore {
            slot,
            usable: vec![true; width], // provisional: all columns raw
        };
        for round in 0..rounds.max(1) {
            for (i, &trit) in Trit::ALL.iter().enumerate() {
                // Rotate the pattern so every column sees every trit.
                let trits: Vec<Trit> = (0..width)
                    .map(|col| Trit::ALL[(col + i + round) % 3])
                    .collect();
                store.write_raw(mc, &trits)?;
                let read = store.read_raw(mc)?;
                for col in 0..width {
                    if read[col] != Some(trits[col]) {
                        usable[col] = false;
                    }
                }
                let _ = trit;
            }
        }
        store.usable = usable;
        Ok(store)
    }

    /// The usable-column mask (true = the column round-tripped all
    /// three trits during calibration).
    pub fn usable_columns(&self) -> &[bool] {
        &self.usable
    }

    /// Reliable ternary capacity of the slot, in trits.
    pub fn capacity(&self) -> usize {
        self.usable.iter().filter(|&&u| u).count()
    }

    /// Writes one trit per *usable* column (unreliable columns are
    /// padded with `Zero` internally).
    ///
    /// # Errors
    ///
    /// Returns [`FracDramError::OperandWidth`] unless `trits` has
    /// exactly [`TernaryStore::capacity`] elements.
    pub fn write(&self, mc: &mut MemoryController, trits: &[Trit]) -> Result<()> {
        if trits.len() != self.capacity() {
            return Err(FracDramError::OperandWidth {
                got: trits.len(),
                expected: self.capacity(),
            });
        }
        let mut full = vec![Trit::Zero; self.usable.len()];
        let mut it = trits.iter();
        for (col, flag) in self.usable.iter().enumerate() {
            if *flag {
                full[col] = *it.next().unwrap();
            }
        }
        self.write_raw(mc, &full)
    }

    /// Destructively reads the stored trits back (usable columns only).
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn read(&self, mc: &mut MemoryController) -> Result<Vec<Trit>> {
        let raw = self.read_raw(mc)?;
        Ok(raw
            .iter()
            .zip(&self.usable)
            .filter(|(_, &u)| u)
            .map(|(t, _)| t.unwrap_or(Trit::Zero))
            .collect())
    }

    /// Writes `trits` (full width) into both Half-m copies.
    fn write_raw(&self, mc: &mut MemoryController, trits: &[Trit]) -> Result<()> {
        for quad in [&self.slot.copy_a, &self.slot.copy_b] {
            write_trit_quad(mc, quad, trits)?;
        }
        Ok(())
    }

    /// The §IV-B2 readout: `X₁` from copy A (probe ones), `X₂` from
    /// copy B (probe zeros); both copies are destroyed.
    fn read_raw(&self, mc: &mut MemoryController) -> Result<Vec<Option<Trit>>> {
        let x1 = majority_against(mc, &self.slot.copy_a, true)?;
        let x2 = majority_against(mc, &self.slot.copy_b, false)?;
        Ok(x1
            .into_iter()
            .zip(x2)
            .map(|(a, b)| Trit::from_majority_pair(a, b))
            .collect())
    }
}

/// Writes one Half-m quad from a trit row: `One`/`Zero` columns carry
/// the uniform physical pattern, `Half` columns the balanced one.
fn write_trit_quad(mc: &mut MemoryController, quad: &Quad, trits: &[Trit]) -> Result<()> {
    let geometry = *mc.module().geometry();
    let width = mc.module().row_bits();
    if trits.len() != width {
        return Err(FracDramError::OperandWidth {
            got: trits.len(),
            expected: width,
        });
    }
    let balanced_one = [true, false, true, false];
    let rows = quad.rows(&geometry);
    for (slot, row) in rows.iter().enumerate() {
        // Desired *physical* value per column for this role.
        let to_logical = physical_pattern(mc, *row, true);
        let bits: Vec<bool> = (0..width)
            .map(|col| {
                let physical = match trits[col] {
                    Trit::One => true,
                    Trit::Zero => false,
                    Trit::Half => balanced_one[slot],
                };
                if physical {
                    to_logical[col]
                } else {
                    !to_logical[col]
                }
            })
            .collect();
        mc.write_row(*row, &bits)?;
    }
    halfm_in_place(mc, quad)
}

/// Majority of a Half-m result against a uniform probe row: the quad's
/// two lowest rows (local rows 0 and 1 in the canonical group-B layout)
/// plus local row 2, physically probed with `probe_ones`.
fn majority_against(mc: &mut MemoryController, quad: &Quad, probe_ones: bool) -> Result<Vec<bool>> {
    let geometry = *mc.module().geometry();
    let triplet = Triplet::first(&geometry, quad.subarray());
    let probe_row: RowAddr = triplet.rows(&geometry)[1]; // local row 2 (R2)
    let probe_bits = physical_pattern(mc, probe_row, probe_ones);
    let anti: Vec<bool> = physical_pattern(mc, probe_row, true)
        .into_iter()
        .map(|b| !b)
        .collect();
    mc.write_row(probe_row, &probe_bits)?;
    let logical = maj3_in_place(mc, &triplet)?;
    Ok(logical
        .into_iter()
        .zip(anti)
        .map(|(bit, a)| bit ^ a)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, Module, ModuleConfig};

    fn controller(group: GroupId) -> MemoryController {
        let geometry = Geometry {
            banks: 2,
            subarrays_per_bank: 2,
            rows_per_subarray: 32,
            columns: 256,
        };
        MemoryController::new(Module::new(ModuleConfig::single_chip(group, 19, geometry)))
    }

    #[test]
    fn trit_pair_decoding() {
        assert_eq!(Trit::from_majority_pair(true, true), Some(Trit::One));
        assert_eq!(Trit::from_majority_pair(false, false), Some(Trit::Zero));
        assert_eq!(Trit::from_majority_pair(true, false), Some(Trit::Half));
        assert_eq!(Trit::from_majority_pair(false, true), None);
        assert_eq!(Trit::Half.value(), 1);
    }

    #[test]
    fn calibration_finds_a_usable_minority() {
        let mut mc = controller(GroupId::B);
        let store = TernaryStore::calibrate(&mut mc, 0, 2).unwrap();
        let capacity = store.capacity();
        let width = mc.module().row_bits();
        // Half detection works on a minority of columns (Fig. 8), so the
        // calibrated capacity is a nonzero strict subset.
        assert!(capacity > 0, "no usable ternary columns at all");
        assert!(capacity < width, "calibration rejected nothing");
    }

    #[test]
    fn ternary_roundtrip_on_calibrated_columns() {
        let mut mc = controller(GroupId::B);
        let store = TernaryStore::calibrate(&mut mc, 0, 2).unwrap();
        let n = store.capacity();
        let data: Vec<Trit> = (0..n).map(|i| Trit::ALL[(i * 7 + 1) % 3]).collect();
        store.write(&mut mc, &data).unwrap();
        let read = store.read(&mut mc).unwrap();
        let correct = read.iter().zip(&data).filter(|(a, b)| a == b).count();
        // Calibrated columns are chosen for reliability; a small residual
        // error rate remains (trial-to-trial jitter).
        assert!(
            correct * 100 >= n * 95,
            "ternary round-trip: {correct}/{n} correct"
        );
    }

    #[test]
    fn readout_destroys_the_fractional_voltages() {
        let mut mc = controller(GroupId::B);
        let store = TernaryStore::calibrate(&mut mc, 0, 1).unwrap();
        let n = store.capacity();
        let data = vec![Trit::Half; n];
        store.write(&mut mc, &data).unwrap();

        let geometry = *mc.module().geometry();
        let row = store.slot.copy_a.rows(&geometry)[2]; // local row 0
        let mid_cells = |mc: &mut MemoryController, t: u64| {
            (0..mc.module().row_bits())
                .filter(|&col| {
                    let v = mc.module_mut().probe_cell_voltage(row, col, t).value();
                    (0.25..=1.25).contains(&v)
                })
                .count()
        };
        let t = mc.clock();
        let before = mid_cells(&mut mc, t);
        assert!(before > 0, "no fractional voltages after the Half-m write");

        store.read(&mut mc).unwrap();
        // The majority re-sensed and restored full rails: every cell of
        // the read row is back at 0 or Vdd.
        let t = mc.clock();
        let after = mid_cells(&mut mc, t);
        assert_eq!(after, 0, "fractional voltages survived the readout");

        // Note: a *second* decode can still return Half — the two copies
        // are left in complementary sensed states (X1 = 1 rails in copy
        // A, X2 = 0 rails in copy B), which mimics the (1,0) signature.
        // The voltages above prove the fractional state itself is gone.
        let second = store.read(&mut mc).unwrap();
        assert_eq!(second.len(), n);
    }

    #[test]
    fn wrong_width_is_rejected() {
        let mut mc = controller(GroupId::B);
        let store = TernaryStore::calibrate(&mut mc, 0, 1).unwrap();
        let err = store.write(&mut mc, &[Trit::One]).unwrap_err();
        assert!(matches!(err, FracDramError::OperandWidth { .. }));
    }

    #[test]
    fn non_group_b_modules_are_rejected() {
        for group in [GroupId::C, GroupId::F, GroupId::J] {
            let mut mc = controller(group);
            let err = TernaryStore::calibrate(&mut mc, 0, 1).unwrap_err();
            assert!(matches!(err, FracDramError::Unsupported { .. }), "{group}");
        }
    }
}
