//! Fractional-value verification via MAJ3 (§IV-B2, Fig. 7) — the second
//! (destructive) readout method.
//!
//! Two majority operations are performed with the *same* fractional
//! value in two of the three rows, but opposite full values in the
//! third. If the "fractional" rows actually held a rail value, the
//! majority would ignore the third row entirely; observing
//! `X₁ = 1` with a one in the third row **and** `X₂ = 0` with a zero
//! proves the stored level is neither rail — a fractional value close
//! to `Vdd/2`.

use fracdram_model::Geometry;
use fracdram_softmc::MemoryController;

use crate::error::Result;
use crate::frac::store_fractional;
use crate::maj3::maj3_in_place;
use crate::rowsets::Triplet;

/// Which two triplet rows receive the fractional value (Fig. 7 runs
/// both placements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FracPlacement {
    /// Fractional values in `R1` and `R2`; the full value goes to `R3`
    /// (Fig. 7 a/b).
    R1R2,
    /// Fractional values in `R1` and `R3`; the full value goes to `R2`
    /// (Fig. 7 c/d).
    R1R3,
}

/// Configuration of one verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifySetup {
    /// Placement of the fractional rows.
    pub placement: FracPlacement,
    /// Initial value written before the Frac operations (`true` ⇒ the
    /// fractional level lies between `Vdd/2` and `Vdd`).
    pub init_ones: bool,
    /// Number of Frac operations (0 reproduces the paper's baseline,
    /// where `X₁ = X₂ =` the initial value).
    pub frac_ops: usize,
}

/// The per-column verdict pair `(X₁, X₂)`.
pub type XPair = (bool, bool);

/// Runs the two-majority verification procedure and returns `(X₁, X₂)`
/// per column.
///
/// # Errors
///
/// Returns errors on modules without three-row activation or Frac
/// support, and propagates controller errors.
pub fn verify_fractional(
    mc: &mut MemoryController,
    triplet: &Triplet,
    setup: &VerifySetup,
) -> Result<Vec<XPair>> {
    let geometry: Geometry = *mc.module().geometry();
    let rows = triplet.rows(&geometry); // role order [R1, R2, R3]
    let (frac_rows, probe_row) = match setup.placement {
        FracPlacement::R1R2 => ([rows[0], rows[1]], rows[2]),
        FracPlacement::R1R3 => ([rows[0], rows[2]], rows[1]),
    };
    // Column polarity: the procedure reasons about *physical* voltages
    // (§II-C), so the probe row is written polarity-corrected and the
    // majority results are un-inverted back to physical values.
    let anti: Vec<bool> = crate::frac::physical_pattern(mc, probe_row, true)
        .into_iter()
        .map(|logical_one| !logical_one)
        .collect();
    let mut run = |probe_value: bool| -> Result<Vec<bool>> {
        for row in frac_rows {
            store_fractional(mc, row, setup.init_ones, setup.frac_ops)?;
        }
        let probe_bits = crate::frac::physical_pattern(mc, probe_row, probe_value);
        mc.write_row(probe_row, &probe_bits)?;
        let logical = maj3_in_place(mc, triplet)?;
        Ok(logical
            .into_iter()
            .zip(&anti)
            .map(|(bit, &a)| bit ^ a)
            .collect())
    };
    let x1 = run(true)?;
    let x2 = run(false)?;
    Ok(x1.into_iter().zip(x2).collect())
}

/// Proportions of the four `(X₁, X₂)` outcomes — one bar group of
/// Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeShares {
    /// `X₁ = 1, X₂ = 1` (rows behaved like full ones).
    pub one_one: f64,
    /// `X₁ = 0, X₂ = 0` (rows behaved like full zeros).
    pub zero_zero: f64,
    /// `X₁ = 1, X₂ = 0` — **the fractional-value signature**.
    pub one_zero: f64,
    /// `X₁ = 0, X₂ = 1` (inverted; anomalous).
    pub zero_one: f64,
}

impl OutcomeShares {
    /// Tallies verdict pairs into proportions.
    pub fn from_pairs(pairs: &[XPair]) -> Self {
        let total = pairs.len().max(1) as f64;
        let share =
            |x1: bool, x2: bool| pairs.iter().filter(|&&p| p == (x1, x2)).count() as f64 / total;
        OutcomeShares {
            one_one: share(true, true),
            zero_zero: share(false, false),
            one_zero: share(true, false),
            zero_one: share(false, true),
        }
    }

    /// The fraction of columns that *prove* a fractional value.
    pub fn fractional_share(&self) -> f64 {
        self.one_zero
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, SubarrayAddr};

    fn controller() -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            GroupId::B,
            71,
            Geometry::tiny(),
        )))
    }

    fn triplet(mc: &MemoryController) -> Triplet {
        Triplet::first(mc.module().geometry(), SubarrayAddr::new(0, 0))
    }

    #[test]
    fn baseline_without_frac_follows_initial_value() {
        let mut mc = controller();
        let t = triplet(&mc);
        for init_ones in [true, false] {
            let setup = VerifySetup {
                placement: FracPlacement::R1R2,
                init_ones,
                frac_ops: 0,
            };
            let pairs = verify_fractional(&mut mc, &t, &setup).unwrap();
            let shares = OutcomeShares::from_pairs(&pairs);
            // Without Frac, both majorities must echo the stored rails on
            // the overwhelming majority of columns.
            let echo = if init_ones {
                shares.one_one
            } else {
                shares.zero_zero
            };
            assert!(echo > 0.8, "init {init_ones}: echo = {echo}");
            assert!(shares.fractional_share() < 0.1);
        }
    }

    #[test]
    fn two_frac_ops_prove_fractional_on_most_columns() {
        let mut mc = controller();
        let t = triplet(&mc);
        for (placement, init_ones) in [
            (FracPlacement::R1R2, true),
            (FracPlacement::R1R2, false),
            (FracPlacement::R1R3, true),
            (FracPlacement::R1R3, false),
        ] {
            let setup = VerifySetup {
                placement,
                init_ones,
                frac_ops: 3,
            };
            let pairs = verify_fractional(&mut mc, &t, &setup).unwrap();
            let shares = OutcomeShares::from_pairs(&pairs);
            assert!(
                shares.fractional_share() > 0.6,
                "{placement:?} init {init_ones}: {shares:?}"
            );
        }
    }

    #[test]
    fn outcome_shares_sum_to_one() {
        let pairs = vec![(true, false), (true, true), (false, false), (true, false)];
        let s = OutcomeShares::from_pairs(&pairs);
        assert!((s.one_one + s.zero_zero + s.one_zero + s.zero_one - 1.0).abs() < 1e-12);
        assert_eq!(s.fractional_share(), 0.5);
    }
}
