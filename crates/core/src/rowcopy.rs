//! RowClone-style in-DRAM row copy (ComputeDRAM §VI-A1 usage).
//!
//! Issuing `ACTIVATE(src)`, waiting for the full restore, then
//! `PRECHARGE` immediately followed by `ACTIVATE(dst)` connects the
//! destination row to bit-lines still driven by the latched sense
//! amplifiers: the source data is written into the destination without
//! ever crossing the memory bus.
//!
//! The paper uses this copy to initialize rows before Frac and to move
//! operands into the reserved compute rows; its cost (18 cycles on the
//! authors' platform, [`COPY_CYCLES`] here — the small difference comes
//! from this model's internal latencies) is what makes F-MAJ's overhead
//! "only 29 % more memory cycles than the original MAJ3".

use fracdram_model::RowAddr;
use fracdram_softmc::{MemoryController, Program};

use crate::error::{FracDramError, Result};

/// Memory cycles one in-DRAM row copy occupies with this model's
/// internal timing (ACT · 13 idle · PRE · ACT · PRE · 5 idle).
pub const COPY_CYCLES: u64 = 22;

/// Builds the copy program `src → dst`.
///
/// Timeline (relative cycles): `ACT(src)@0` restores the source by cycle
/// 14; `PRE@14` begins closing; `ACT(dst)@15` lands before the word-lines
/// drop, so the destination connects to the still-driven bit-lines;
/// `PRE@16` closes everything, and five idle cycles let it finish.
pub fn copy_program(src: RowAddr, dst: RowAddr) -> Program {
    Program::builder()
        .act(src)
        .delay(13) // restore completes (internal restore_done = 14)
        .pre(src.bank)
        .act(dst)
        .pre(src.bank)
        .delay(5)
        .build()
}

/// Copies `src` to `dst` entirely inside the DRAM array.
///
/// Both rows must be in the same bank and the same sub-array (bit-lines
/// are per-sub-array).
///
/// # Errors
///
/// Returns [`FracDramError::BadRowSet`] when the rows do not share a
/// sub-array, and propagates controller errors.
pub fn copy_row(mc: &mut MemoryController, src: RowAddr, dst: RowAddr) -> Result<()> {
    if src.bank != dst.bank {
        return Err(FracDramError::BadRowSet {
            reason: format!("copy crosses banks ({} -> {})", src.bank, dst.bank),
        });
    }
    let g = *mc.module().geometry();
    let (ssub, _) = g.split_row(src.row);
    let (dsub, _) = g.split_row(dst.row);
    if ssub != dsub {
        return Err(FracDramError::BadRowSet {
            reason: format!(
                "copy crosses sub-arrays ({ssub} -> {dsub}); bit-lines are per-sub-array"
            ),
        });
    }
    mc.run(&copy_program(src, dst))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, GroupId, Module, ModuleConfig};

    fn controller() -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            GroupId::B,
            11,
            Geometry::tiny(),
        )))
    }

    #[test]
    fn program_cycle_count_is_documented_constant() {
        let p = copy_program(RowAddr::new(0, 1), RowAddr::new(0, 2));
        assert_eq!(p.total_cycles().value(), COPY_CYCLES);
    }

    #[test]
    fn copy_duplicates_data() {
        let mut mc = controller();
        let src = RowAddr::new(0, 5);
        let dst = RowAddr::new(0, 11);
        let pattern: Vec<bool> = (0..64).map(|i| i % 7 < 3).collect();
        mc.write_row(src, &pattern).unwrap();
        copy_row(&mut mc, src, dst).unwrap();
        assert_eq!(mc.read_row(dst).unwrap(), pattern, "destination");
        assert_eq!(mc.read_row(src).unwrap(), pattern, "source preserved");
    }

    #[test]
    fn copy_overwrites_previous_destination_content() {
        let mut mc = controller();
        let src = RowAddr::new(1, 3);
        let dst = RowAddr::new(1, 9);
        mc.write_row(dst, &[true; 64]).unwrap();
        mc.write_row(src, &[false; 64]).unwrap();
        copy_row(&mut mc, src, dst).unwrap();
        assert!(mc.read_row(dst).unwrap().iter().all(|&b| !b));
    }

    #[test]
    fn cross_subarray_copy_is_rejected() {
        let mut mc = controller();
        // Rows 5 and 40 are in different sub-arrays (32 rows each).
        let err = copy_row(&mut mc, RowAddr::new(0, 5), RowAddr::new(0, 40)).unwrap_err();
        assert!(matches!(err, FracDramError::BadRowSet { .. }));
    }

    #[test]
    fn cross_bank_copy_is_rejected() {
        let mut mc = controller();
        let err = copy_row(&mut mc, RowAddr::new(0, 5), RowAddr::new(1, 5)).unwrap_err();
        assert!(matches!(err, FracDramError::BadRowSet { .. }));
    }

    #[test]
    fn copy_is_out_of_spec() {
        let mc = controller();
        let p = copy_program(RowAddr::new(0, 1), RowAddr::new(0, 2));
        assert!(!mc.check(&p).is_empty());
    }
}
