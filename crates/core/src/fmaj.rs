//! F-MAJ (§VI-A): majority-of-three through a **four**-row activation.
//!
//! Groups C and D can only open power-of-two row sets, so the original
//! three-row MAJ3 is impossible there. F-MAJ stores a fractional value
//! (≈ `Vdd/2`) in one of the four rows: during charge sharing that row
//! contributes (almost) nothing, so the bit-line resolves to the
//! majority of the *other three* rows. On group B, placing the
//! fractional value in the decoder's "primary" (heaviest) row also
//! neutralizes the asymmetry that causes the baseline MAJ3 errors —
//! which is how the paper cuts the in-memory majority error rate from
//! 9.1 % to 2.2 %.

use fracdram_model::{Cycles, Geometry, GroupId, RowAddr};
use fracdram_softmc::{MemoryController, Program};

use crate::error::{FracDramError, Result};
use crate::frac::{frac_program, FRAC_CYCLES};
use crate::maj3::{expected_majority, TEST_COMBINATIONS};
use crate::multirow::glitch_program;
use crate::rowcopy::COPY_CYCLES;
use crate::rowsets::Quad;

/// Idle cycles after the second ACTIVATE for the sense amplifier to
/// resolve the four-row charge share.
const SENSE_WAIT: u64 = 6;

/// Placement and level of the fractional operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FmajConfig {
    /// Which activation role (0 = R1 … 3 = R4) holds the fractional
    /// value.
    pub frac_role: usize,
    /// Initial row value before the Frac operations: `true` leaves the
    /// fractional level above `Vdd/2`, `false` below.
    pub init_ones: bool,
    /// Number of Frac operations (more ⇒ closer to `Vdd/2`).
    pub frac_ops: usize,
}

impl FmajConfig {
    /// The experimentally best configuration per group (§VI-A2): group B
    /// stores the fractional value in its primary row R2 with initial
    /// ones and two Frac operations; group C favors R1 with a level
    /// above `Vdd/2`; group D favors R4 with a level below.
    pub fn best_for(group: GroupId) -> Self {
        match group {
            GroupId::D => FmajConfig {
                frac_role: 3,
                init_ones: false,
                frac_ops: 2,
            },
            GroupId::C => FmajConfig {
                frac_role: 0,
                init_ones: true,
                frac_ops: 2,
            },
            // Group B and any other four-row-capable silicon: primary
            // slot, initial ones.
            _ => FmajConfig {
                frac_role: group.profile().primary_slot().min(3),
                init_ones: true,
                frac_ops: 2,
            },
        }
    }

    /// The three non-fractional roles, in role order.
    pub fn operand_roles(&self) -> [usize; 3] {
        let mut roles = [0usize; 3];
        let mut i = 0;
        for role in 0..4 {
            if role != self.frac_role {
                roles[i] = role;
                i += 1;
            }
        }
        roles
    }
}

impl Default for FmajConfig {
    fn default() -> Self {
        FmajConfig {
            frac_role: 1,
            init_ones: true,
            frac_ops: 2,
        }
    }
}

/// Builds the F-MAJ trigger program (step 4): the four-row glitch
/// sequence, sense wait, READ of the resolved majority, PRECHARGE.
pub fn fmaj_program(quad: &Quad, geometry: &Geometry) -> Program {
    let r1 = quad.r1(geometry);
    let r2 = quad.r2(geometry);
    let mut p = glitch_program(r1, r2);
    p.extend_from(
        &Program::builder()
            .nop()
            .delay(SENSE_WAIT)
            .read(r1.bank)
            .pre(r1.bank)
            .delay(5)
            .build(),
    );
    p
}

/// Checks four-row capability.
fn require_four_row(mc: &MemoryController) -> Result<()> {
    let profile = mc.module().profile();
    if profile.supports_four_row() {
        Ok(())
    } else {
        Err(FracDramError::Unsupported {
            group: profile.group,
            operation: "four-row activation (F-MAJ)",
        })
    }
}

/// Prepares the fractional row of an F-MAJ (steps 1–2): initializes the
/// chosen role's row to all ones/zeros and issues the Frac operations.
///
/// # Errors
///
/// Propagates capability and controller errors.
pub fn prepare_fractional_row(
    mc: &mut MemoryController,
    quad: &Quad,
    config: &FmajConfig,
) -> Result<()> {
    require_four_row(mc)?;
    let geometry = *mc.module().geometry();
    let row = quad.rows(&geometry)[config.frac_role.min(3)];
    let bits = vec![config.init_ones; mc.module().row_bits()];
    mc.write_row(row, &bits)?;
    mc.run(&frac_program(row, config.frac_ops))?;
    Ok(())
}

/// A prebuilt F-MAJ execution plan for repeated-trial hot loops.
///
/// [`fmaj`] rebuilds the fractional-row pattern, the Frac program, and
/// the trigger program on every call; a plan builds each of them once
/// for a fixed `(quad, config)` and replays them per trial, so the only
/// per-trial work is the operand writes and the program runs. Results
/// are bit-identical to [`fmaj`] by construction — the plan stores the
/// very values the per-call path recomputes.
#[derive(Debug, Clone)]
pub struct FmajPlan {
    frac_row: RowAddr,
    operand_rows: [RowAddr; 3],
    init_bits: Vec<bool>,
    frac: Program,
    trigger: Program,
}

impl FmajPlan {
    /// Prebuilds the plan for `(quad, config)` on `mc`'s module.
    ///
    /// # Errors
    ///
    /// Returns [`FracDramError::Unsupported`] when the module cannot
    /// open four rows.
    pub fn new(mc: &MemoryController, quad: &Quad, config: &FmajConfig) -> Result<FmajPlan> {
        require_four_row(mc)?;
        let geometry = *mc.module().geometry();
        let rows = quad.rows(&geometry);
        let frac_row = rows[config.frac_role.min(3)];
        let roles = config.operand_roles();
        Ok(FmajPlan {
            frac_row,
            operand_rows: [rows[roles[0]], rows[roles[1]], rows[roles[2]]],
            init_bits: vec![config.init_ones; mc.module().row_bits()],
            frac: frac_program(frac_row, config.frac_ops),
            trigger: fmaj_program(quad, &geometry),
        })
    }

    /// Executes one complete F-MAJ: fractional-row preparation, operand
    /// stores (in role order), trigger, and read-back.
    ///
    /// # Errors
    ///
    /// Returns [`FracDramError::OperandWidth`] on width mismatches and
    /// propagates controller errors.
    pub fn run(&self, mc: &mut MemoryController, operands: [&[bool]; 3]) -> Result<Vec<bool>> {
        let width = self.init_bits.len();
        for bits in operands {
            if bits.len() != width {
                return Err(FracDramError::OperandWidth {
                    got: bits.len(),
                    expected: width,
                });
            }
        }
        mc.write_row(self.frac_row, &self.init_bits)?;
        mc.run(&self.frac)?;
        for (row, bits) in self.operand_rows.iter().zip(operands) {
            mc.write_row(*row, bits)?;
        }
        let outcome = mc.run(&self.trigger)?;
        Ok(outcome.single_read()?)
    }
}

/// Executes a complete F-MAJ: fractional-row preparation, operand
/// stores (into the non-fractional roles, in role order), trigger, and
/// read-back of the majority result.
///
/// The result is restored into all four rows, exactly as on hardware.
/// Repeated-trial loops should prebuild an [`FmajPlan`] instead — this
/// convenience wrapper rebuilds the plan on every call.
///
/// # Errors
///
/// Returns [`FracDramError::Unsupported`] when the module cannot open
/// four rows, [`FracDramError::OperandWidth`] on width mismatches, and
/// propagates controller errors.
pub fn fmaj(
    mc: &mut MemoryController,
    quad: &Quad,
    config: &FmajConfig,
    operands: [&[bool]; 3],
) -> Result<Vec<bool>> {
    FmajPlan::new(mc, quad, config)?.run(mc, operands)
}

/// Per-column coverage of F-MAJ under `config`: the fraction of columns
/// producing the correct majority for all six test combinations.
///
/// # Errors
///
/// Same conditions as [`fmaj`].
pub fn fmaj_coverage(mc: &mut MemoryController, quad: &Quad, config: &FmajConfig) -> Result<f64> {
    Ok(combo_breakdown(mc, quad, config)?.overall)
}

/// Per-input-combination correctness of F-MAJ (Fig. 10a).
#[derive(Debug, Clone, PartialEq)]
pub struct ComboBreakdown {
    /// Correct fraction for each of [`TEST_COMBINATIONS`], in order.
    pub per_combo: [f64; 6],
    /// Fraction of columns correct on **all** six combinations.
    pub overall: f64,
}

/// Evaluates all six operand combinations and reports the per-combo and
/// overall coverage.
///
/// # Errors
///
/// Same conditions as [`fmaj`].
pub fn combo_breakdown(
    mc: &mut MemoryController,
    quad: &Quad,
    config: &FmajConfig,
) -> Result<ComboBreakdown> {
    let width = mc.module().row_bits();
    let mut ok = vec![true; width];
    let mut per_combo = [0.0; 6];
    for (i, combo) in TEST_COMBINATIONS.into_iter().enumerate() {
        let rows: Vec<Vec<bool>> = combo.iter().map(|&b| vec![b; width]).collect();
        let result = fmaj(mc, quad, config, [&rows[0], &rows[1], &rows[2]])?;
        let expect = expected_majority(combo);
        let mut correct = 0usize;
        for (col, &bit) in result.iter().enumerate() {
            if bit == expect {
                correct += 1;
            } else {
                ok[col] = false;
            }
        }
        per_combo[i] = correct as f64 / width as f64;
    }
    Ok(ComboBreakdown {
        per_combo,
        overall: ok.iter().filter(|&&b| b).count() as f64 / width as f64,
    })
}

/// Cycle cost of one F-MAJ *beyond* operand staging: the fractional-row
/// initialization copy, the Frac operations, and the trigger program.
/// With operand staging included (three copies in, one out — the
/// ComputeDRAM reserved-row strategy), F-MAJ costs ~29 % more cycles
/// than the baseline MAJ3 (§VI-A1).
pub fn fmaj_extra_cycles(config: &FmajConfig) -> Cycles {
    Cycles(COPY_CYCLES + FRAC_CYCLES * config.frac_ops as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, Module, ModuleConfig, SubarrayAddr};

    fn controller(group: GroupId) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            group,
            53,
            Geometry::tiny(),
        )))
    }

    fn quad(mc: &MemoryController) -> Quad {
        Quad::canonical(
            mc.module().geometry(),
            SubarrayAddr::new(0, 0),
            mc.module().profile().group,
        )
        .unwrap()
    }

    #[test]
    fn best_configs_match_paper() {
        let b = FmajConfig::best_for(GroupId::B);
        assert_eq!((b.frac_role, b.init_ones), (1, true), "B: frac in R2");
        let c = FmajConfig::best_for(GroupId::C);
        assert_eq!((c.frac_role, c.init_ones), (0, true), "C: frac in R1, ones");
        let d = FmajConfig::best_for(GroupId::D);
        assert_eq!(
            (d.frac_role, d.init_ones),
            (3, false),
            "D: frac in R4, zeros"
        );
    }

    #[test]
    fn operand_roles_skip_the_fractional_slot() {
        let cfg = FmajConfig {
            frac_role: 1,
            init_ones: true,
            frac_ops: 2,
        };
        assert_eq!(cfg.operand_roles(), [0, 2, 3]);
        let cfg = FmajConfig {
            frac_role: 0,
            ..cfg
        };
        assert_eq!(cfg.operand_roles(), [1, 2, 3]);
    }

    #[test]
    fn fmaj_computes_majority_on_group_c() {
        // The headline capability: group C cannot do MAJ3 at all, but
        // F-MAJ gives it an in-memory majority.
        let mut mc = controller(GroupId::C);
        let q = quad(&mc);
        let cfg = FmajConfig::best_for(GroupId::C);
        let width = mc.module().row_bits();
        for combo in TEST_COMBINATIONS {
            let rows: Vec<Vec<bool>> = combo.iter().map(|&b| vec![b; width]).collect();
            let result = fmaj(&mut mc, &q, &cfg, [&rows[0], &rows[1], &rows[2]]).unwrap();
            let expect = expected_majority(combo);
            let correct = result.iter().filter(|&&b| b == expect).count();
            assert!(
                correct * 10 >= width * 6,
                "combo {combo:?}: {correct}/{width} correct"
            );
        }
    }

    #[test]
    fn fmaj_beats_baseline_coverage_on_group_b() {
        let mut mc = controller(GroupId::B);
        let q = quad(&mc);
        let cfg = FmajConfig::best_for(GroupId::B);
        let fmaj_cov = fmaj_coverage(&mut mc, &q, &cfg).unwrap();
        let t = crate::rowsets::Triplet::first(mc.module().geometry(), SubarrayAddr::new(0, 0));
        let maj3_cov = crate::maj3::maj3_coverage(&mut mc, &t).unwrap();
        assert!(
            fmaj_cov >= maj3_cov,
            "F-MAJ ({fmaj_cov}) must not trail MAJ3 ({maj3_cov})"
        );
        assert!(fmaj_cov > 0.9, "group B coverage = {fmaj_cov}");
    }

    #[test]
    fn without_fractional_row_results_are_biased() {
        // Store full ones (no Frac) in the critical row: charge from that
        // row dominates and all-zero majorities break — Fig. 10a's "no
        // Frac" point. With Frac ops the bias disappears.
        let mut mc = controller(GroupId::C);
        let q = quad(&mc);
        let biased = FmajConfig {
            frac_role: 0,
            init_ones: true,
            frac_ops: 0,
        };
        let breakdown = combo_breakdown(&mut mc, &q, &biased).unwrap();
        // Majority-one combos benefit from the extra charge...
        let green: f64 = breakdown.per_combo[3..].iter().sum::<f64>() / 3.0;
        // ...majority-zero combos suffer.
        let blue: f64 = breakdown.per_combo[..3].iter().sum::<f64>() / 3.0;
        assert!(
            green > blue + 0.2,
            "expected one-bias without Frac: green {green}, blue {blue}"
        );
    }

    #[test]
    fn incapable_group_is_rejected() {
        let mut mc = controller(GroupId::F);
        let q = Quad::from_pair(mc.module().geometry(), SubarrayAddr::new(0, 0), 1, 2).unwrap();
        let width = mc.module().row_bits();
        let ones = vec![true; width];
        let err = fmaj(&mut mc, &q, &FmajConfig::default(), [&ones, &ones, &ones]).unwrap_err();
        assert!(matches!(err, FracDramError::Unsupported { .. }));
    }

    #[test]
    fn operand_width_is_validated() {
        let mut mc = controller(GroupId::B);
        let q = quad(&mc);
        let ones = vec![true; mc.module().row_bits()];
        let err = fmaj(
            &mut mc,
            &q,
            &FmajConfig::default(),
            [&[true, false], &ones, &ones],
        )
        .unwrap_err();
        assert!(matches!(err, FracDramError::OperandWidth { .. }));
    }

    #[test]
    fn extra_cycles_account_for_copy_and_fracs() {
        let cfg = FmajConfig {
            frac_role: 1,
            init_ones: true,
            frac_ops: 2,
        };
        assert_eq!(fmaj_extra_cycles(&cfg).value(), COPY_CYCLES + 14);
    }
}
