//! The *Half-m* primitive (§III-B): storing Half values on masked bits.
//!
//! Half-m interrupts a **four-row** activation with a trailing,
//! back-to-back PRECHARGE. Per column, the four cells charge-share with
//! the bit-line and are then disconnected before the sense amplifier
//! fires:
//!
//! * four equal initial values leave "weak" ones or zeros — displaced
//!   from the rails but on the right side of `Vdd/2`;
//! * two ones and two zeros leave all four cells near the column's
//!   equilibrium — the *Half value* — so a single Half-m produces a
//!   mixture of zeros, ones, and Half values in the same rows, selected
//!   per column by the data mask.
//!
//! The canonical operand layout stores ones in `{R1, R3}` and zeros in
//! `{R2, R4}` on masked (Half) columns.

use fracdram_model::Geometry;
use fracdram_softmc::{MemoryController, Program};

use crate::error::{FracDramError, Result};
use crate::multirow::glitch_program;
use crate::rowsets::Quad;

/// Builds the Half-m program: a leading PRECHARGE (bit-line reset), the
/// four-row glitch sequence, and the trailing PRECHARGE that interrupts
/// the activation before the sense amplifiers enable (Fig. 4 steps ①–⑤).
pub fn halfm_program(quad: &Quad, geometry: &Geometry) -> Program {
    let r1 = quad.r1(geometry);
    let r2 = quad.r2(geometry);
    let mut p = Program::builder().pre(r1.bank).build();
    p.extend_from(&glitch_program(r1, r2));
    p.extend_from(&Program::builder().pre(r1.bank).delay(5).build());
    p
}

/// Executes Half-m on values already stored in the quad rows.
///
/// # Errors
///
/// Returns [`FracDramError::Unsupported`] on modules that cannot open
/// four rows, and propagates controller errors.
pub fn halfm_in_place(mc: &mut MemoryController, quad: &Quad) -> Result<()> {
    let profile = mc.module().profile();
    if !profile.supports_four_row() {
        return Err(FracDramError::Unsupported {
            group: profile.group,
            operation: "four-row activation (Half-m)",
        });
    }
    let geometry = *mc.module().geometry();
    mc.run(&halfm_program(quad, &geometry))?;
    Ok(())
}

/// Stores `data` with Half values on the columns selected by `mask`,
/// then executes Half-m.
///
/// Unmasked columns receive `data[col]` in all four rows (becoming weak
/// ones/zeros that read back as `data[col]`); masked columns receive the
/// balanced two-ones/two-zeros pattern and end up holding the Half
/// value. This is the ternary-storage write primitive of §VI-C.
///
/// # Errors
///
/// Returns [`FracDramError::OperandWidth`] on width mismatches, plus the
/// conditions of [`halfm_in_place`].
pub fn halfm_masked(
    mc: &mut MemoryController,
    quad: &Quad,
    data: &[bool],
    mask: &[bool],
) -> Result<()> {
    let width = mc.module().row_bits();
    if data.len() != width || mask.len() != width {
        return Err(FracDramError::OperandWidth {
            got: data.len().max(mask.len()),
            expected: width,
        });
    }
    let geometry = *mc.module().geometry();
    let rows = quad.rows(&geometry);
    // Role pattern on masked columns: ones in R1/R3, zeros in R2/R4.
    let role_one = [true, false, true, false];
    for (slot, row) in rows.iter().enumerate() {
        let bits: Vec<bool> = (0..width)
            .map(|col| if mask[col] { role_one[slot] } else { data[col] })
            .collect();
        mc.write_row(*row, &bits)?;
    }
    halfm_in_place(mc, quad)
}

/// Convenience: Half value on **every** column (all-masked Half-m).
///
/// # Errors
///
/// Same conditions as [`halfm_masked`].
pub fn halfm_all(mc: &mut MemoryController, quad: &Quad) -> Result<()> {
    let width = mc.module().row_bits();
    halfm_masked(mc, quad, &vec![false; width], &vec![true; width])
}

/// Reads back the row written by a masked Half-m (row `R3`, the lowest
/// of the quad in the paper's layout) — weak ones/zeros re-sense as
/// their logical value; Half columns resolve by sense-amplifier offset.
///
/// # Errors
///
/// Propagates controller errors.
pub fn read_back(mc: &mut MemoryController, quad: &Quad, role: usize) -> Result<Vec<bool>> {
    let geometry = *mc.module().geometry();
    let rows = quad.rows(&geometry);
    Ok(mc.read_row(rows[role.min(3)])?)
}

/// Per-cycle cost of one Half-m operation.
pub fn halfm_cycles(quad: &Quad, geometry: &Geometry) -> fracdram_model::Cycles {
    halfm_program(quad, geometry).total_cycles()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, SubarrayAddr};

    fn controller(group: GroupId) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            group,
            47,
            Geometry::tiny(),
        )))
    }

    fn quad(mc: &MemoryController) -> Quad {
        Quad::canonical(
            mc.module().geometry(),
            SubarrayAddr::new(0, 0),
            mc.module().profile().group,
        )
        .unwrap()
    }

    #[test]
    fn program_shape_matches_figure_4() {
        let mc = controller(GroupId::B);
        let q = quad(&mc);
        let p = halfm_program(&q, mc.module().geometry());
        // PRE, ACT, PRE, ACT, PRE + idle tail.
        assert_eq!(p.len(), 5);
        assert_eq!(p.total_cycles().value(), 10);
        assert!(!mc.check(&p).is_empty(), "Half-m is out-of-spec by design");
    }

    #[test]
    fn weak_values_keep_their_logical_side() {
        let mut mc = controller(GroupId::B);
        let q = quad(&mc);
        let geometry = *mc.module().geometry();
        let width = mc.module().row_bits();
        // Unmasked data: alternating bits, no Half columns.
        let data: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
        halfm_masked(&mut mc, &q, &data, &vec![false; width]).unwrap();
        // Cells are weak but must re-sense as the written value for the
        // overwhelming majority of columns.
        let rows = q.rows(&geometry);
        let read = mc.read_row(rows[2]).unwrap();
        let correct = read.iter().zip(&data).filter(|(a, b)| a == b).count();
        assert!(
            correct * 20 >= width * 19,
            "weak values flipped: {correct}/{width}"
        );
    }

    #[test]
    fn interruption_prevents_sensing() {
        let mut mc = controller(GroupId::B);
        let q = quad(&mc);
        let geometry = *mc.module().geometry();
        halfm_all(&mut mc, &q).unwrap();
        // Probing advances the device past the scheduled close event; the
        // interrupted activation must have left no row open.
        let t = mc.clock();
        let r1 = q.rows(&geometry)[0];
        mc.module_mut().probe_cell_voltage(r1, 0, t);
        assert!(mc.module().chips()[0].open_rows(0).is_empty());
    }

    #[test]
    fn half_columns_are_fractional_on_a_minority_of_columns() {
        // The Half value is not consistent across the row (§V-C): the
        // metastable columns amplify the closure asymmetry, so most
        // columns collapse toward a rail and only a minority holds a
        // clean mid-level value — the paper finds ~16 % distinguishable.
        let mut mc = controller(GroupId::B);
        let q = quad(&mc);
        let geometry = *mc.module().geometry();
        halfm_all(&mut mc, &q).unwrap();
        let t = mc.clock();
        let r1 = q.rows(&geometry)[0];
        let width = mc.module().row_bits();
        let fractional = (0..width)
            .filter(|&col| {
                let v = mc.module_mut().probe_cell_voltage(r1, col, t).value();
                (0.3..=1.2).contains(&v)
            })
            .count();
        assert!(
            fractional * 100 >= width * 3,
            "no mid-level cells at all: {fractional}/{width}"
        );
        assert!(
            fractional * 100 <= width * 70,
            "too many mid-level cells: {fractional}/{width}"
        );
    }

    #[test]
    fn masked_and_unmasked_columns_coexist() {
        let mut mc = controller(GroupId::B);
        let q = quad(&mc);
        let geometry = *mc.module().geometry();
        let width = mc.module().row_bits();
        let data: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
        let mask: Vec<bool> = (0..width).map(|i| i < width / 2).collect();
        halfm_masked(&mut mc, &q, &data, &mask).unwrap();
        // Unmasked columns (upper half): the weak values re-sense as the
        // written data. Masked columns (lower half): the readout is
        // column-dependent — neither all ones nor all zeros.
        let read = mc.read_row(q.rows(&geometry)[2]).unwrap();
        let weak_ok = (width / 2..width).filter(|&c| read[c] == data[c]).count();
        assert!(
            weak_ok * 20 >= width / 2 * 19,
            "weak columns flipped: {weak_ok}/{}",
            width / 2
        );
        let half_ones = (0..width / 2).filter(|&c| read[c]).count();
        assert!(
            half_ones > 0 && half_ones < width / 2,
            "half columns resolved uniformly: {half_ones}/{}",
            width / 2
        );
    }

    #[test]
    fn group_c_performs_halfm_too() {
        let mut mc = controller(GroupId::C);
        let q = quad(&mc);
        assert_eq!(q.local_roles(), [1, 2, 0, 3]);
        halfm_all(&mut mc, &q).unwrap();
    }

    #[test]
    fn incapable_group_is_rejected() {
        let mut mc = controller(GroupId::E);
        let q = Quad::from_pair(mc.module().geometry(), SubarrayAddr::new(0, 0), 1, 2).unwrap();
        let err = halfm_in_place(&mut mc, &q).unwrap_err();
        assert!(matches!(err, FracDramError::Unsupported { .. }));
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let mut mc = controller(GroupId::B);
        let q = quad(&mc);
        let err = halfm_masked(&mut mc, &q, &[true; 3], &[false; 3]).unwrap_err();
        assert!(matches!(err, FracDramError::OperandWidth { .. }));
    }
}
